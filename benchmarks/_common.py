"""Shared helpers for the benchmark harness.

Benchmarks regenerate the paper's tables and figures at laptop scale.
Surrogate training is the expensive step, so trained checkpoints are
cached under ``benchmarks/.cache`` keyed by the setup parameters; delete
the directory to force retraining.

Environment knobs:

* ``NEURFILL_BENCH_SCALE`` (float, default 1.0) scales the benchmark grid
  sizes; e.g. 2.0 doubles every design's rows/cols for higher fidelity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.cmp import CmpSimulator
from repro.core import FillProblem, ScoreCoefficients
from repro.layout import Layout, make_design
from repro.surrogate import (
    CmpNeuralNetwork,
    TrainConfig,
    load_surrogate,
    pretrain_surrogate,
    save_surrogate,
)

CACHE_DIR = Path(__file__).resolve().parent / ".cache"
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Benchmark grid sizes per design (scaled from the paper's full chips).
BENCH_GRIDS = {"A": (20, 20), "B": (20, 20), "C": (24, 24)}

#: Surrogate training budget for benches (paper: 20k samples, 20 epochs).
TRAIN_SAMPLES = 40
TRAIN_EPOCHS = 25
BASE_CHANNELS = 8
DEPTH = 2

#: Runtime beta for scaled problems (paper: 20 min on full-size chips).
BETA_RUNTIME_S = 60.0


def bench_scale() -> float:
    return float(os.environ.get("NEURFILL_BENCH_SCALE", "1.0"))


def bench_grid(design_key: str) -> tuple[int, int]:
    rows, cols = BENCH_GRIDS[design_key.upper()]
    s = bench_scale()
    return max(8, int(round(rows * s))), max(8, int(round(cols * s)))


@dataclass
class DesignSetup:
    """Everything a benchmark needs for one design."""

    key: str
    layout: Layout
    simulator: CmpSimulator
    coefficients: ScoreCoefficients
    problem: FillProblem
    network: CmpNeuralNetwork
    surrogate_rel_error: float


def design_setup(design_key: str, seed: int = 0) -> DesignSetup:
    """Build (or load from cache) the full setup for one design."""
    rows, cols = bench_grid(design_key)
    layout = make_design(design_key, scale=1.0, seed=None)
    # Rebuild at bench grid size.
    from repro.layout.designs import DESIGN_BUILDERS
    layout = DESIGN_BUILDERS[design_key.upper()](rows=rows, cols=cols)
    simulator = CmpSimulator()
    coefficients = ScoreCoefficients.calibrated(
        layout, simulator, beta_runtime=BETA_RUNTIME_S
    )
    problem = FillProblem(layout, coefficients)

    tag = (f"{design_key.upper()}_{rows}x{cols}_s{TRAIN_SAMPLES}"
           f"_e{TRAIN_EPOCHS}_b{BASE_CHANNELS}_d{DEPTH}_seed{seed}")
    ckpt = CACHE_DIR / tag
    rel_err_file = ckpt / "rel_error.txt"
    if (ckpt / "surrogate.json").exists():
        network = load_surrogate(ckpt, layout)
        rel_error = float(rel_err_file.read_text()) if rel_err_file.exists() else float("nan")
    else:
        network, _, report = pretrain_surrogate(
            [layout], layout, sample_count=TRAIN_SAMPLES,
            tile_rows=rows, tile_cols=cols,
            base_channels=BASE_CHANNELS, depth=DEPTH,
            config=TrainConfig(epochs=TRAIN_EPOCHS, batch_size=8),
            simulator=simulator, seed=seed,
        )
        save_surrogate(ckpt, network.unet, network.normalizer,
                       base_channels=BASE_CHANNELS, depth=DEPTH)
        rel_err_file.write_text(str(report.mean_relative_error))
        rel_error = report.mean_relative_error
    return DesignSetup(
        key=design_key.upper(), layout=layout, simulator=simulator,
        coefficients=coefficients, problem=problem, network=network,
        surrogate_rel_error=rel_error,
    )


def write_output(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
