"""Ablations of the design choices DESIGN.md calls out.

1. **Starting points** (the paper's central MSP claim, SS IV-C/D): SQP
   refinement from the PKB start vs random starts vs NMMSO-located
   starts, all judged by the real simulator.
2. **Outlier smoothing gain eta** (Eq. 10c): the sigmoid-smoothed outlier
   objective must approximate the hard hinge as eta grows.
3. **Overlay gradient**: our exact subgradient vs the paper's simplified
   Eq. 16 three-case gradient.
"""

import numpy as np

from _common import write_output
from repro.core import (
    QualityModel,
    evaluate_solution,
    msp_sqp,
    overlay_gradient,
    overlay_gradient_paper,
    pkb_starting_point,
)
from repro.layout import compute_slack_regions
from repro.nn import Tensor
from repro.optimize import SqpOptimizer, random_starting_points
from repro.surrogate.objectives import outliers, outliers_hard


def test_ablation_starting_points(benchmark, setup_a):
    s = setup_a
    model = QualityModel(s.problem, s.network)
    optimizer = SqpOptimizer(max_iter=60, tol=1e-9)

    def run_all():
        results = {}
        pkb = pkb_starting_point(s.layout, model.quality, 9)
        results["pkb"] = msp_sqp(model, [pkb.fill], optimizer).best_fill
        randoms = random_starting_points(s.problem.lower, s.problem.upper,
                                         3, seed=1)
        results["random-x3"] = msp_sqp(model, randoms, optimizer).best_fill
        from repro.optimize import Nmmso
        found = Nmmso(model.quality, s.problem.lower, s.problem.upper,
                      max_evaluations=400, seed=0).run()
        starts = [o.x for o in found.optima[:3]]
        results["nmmso-x3"] = msp_sqp(model, starts, optimizer).best_fill
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    scores = {
        name: evaluate_solution(s.problem, fill, name, s.simulator)
        for name, fill in results.items()
    }
    zero = evaluate_solution(s.problem, np.zeros(s.layout.shape), "no-fill",
                             s.simulator)
    lines = [f"Starting-point ablation — design A, simulator-judged quality"]
    lines.append(f"{'start':<12} {'quality':>8} {'dH (A)':>8}")
    lines.append(f"{'no-fill':<12} {zero.quality:>8.3f} {zero.delta_h:>8.1f}")
    for name, sc in scores.items():
        lines.append(f"{name:<12} {sc.quality:>8.3f} {sc.delta_h:>8.1f}")
    write_output("ablation_starting_points", "\n".join(lines))

    assert scores["pkb"].quality > zero.quality
    assert scores["nmmso-x3"].quality > zero.quality
    # Informed starts (PKB / NMMSO) are no worse than pure random ones.
    best_informed = max(scores["pkb"].quality, scores["nmmso-x3"].quality)
    assert best_informed >= scores["random-x3"].quality - 0.02


def test_ablation_outlier_eta(benchmark):
    rng = np.random.default_rng(0)
    h = rng.normal(size=(2, 16, 16))
    h[0, 3, 3] = 7.0
    h[1, 9, 2] = 6.0
    hard = outliers_hard(h)

    def sweep():
        return {eta: float(outliers(Tensor(h), eta=eta).data)
                for eta in (0.25, 0.5, 1.0, 2.0, 5.0, 10.0)}

    values = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"Outlier smoothing (Eq. 10c) — hard hinge = {hard:.3f}"]
    for eta, v in values.items():
        lines.append(f"eta={eta:<5} smooth={v:8.3f}  |err|={abs(v - hard):7.3f}")
    write_output("ablation_outlier_eta", "\n".join(lines))

    errors = [abs(v - hard) for v in values.values()]
    # Larger eta -> closer to the hard objective (monotone in the sweep).
    assert errors[-1] < errors[0]
    assert errors[-1] < 0.2


def test_ablation_overlay_gradient(benchmark, setup_a):
    s = setup_a
    regions = compute_slack_regions(s.layout)
    rng = np.random.default_rng(1)
    fill = 0.6 * rng.random(s.layout.shape) * s.layout.slack_stack()

    exact = benchmark(lambda: overlay_gradient(fill, regions))
    paper = overlay_gradient_paper(fill, regions)
    agree = float(np.mean(np.isclose(exact, paper)))
    write_output(
        "ablation_overlay_gradient",
        "Overlay gradient: exact subgradient vs paper Eq. 16\n"
        f"agreement on {agree * 100:.1f}% of windows; "
        f"exact mean={exact.mean():.3f}, paper mean={paper.mean():.3f}",
    )
    # Eq. 16 is a coarse simplification but must agree on the bulk of
    # windows (both are 0/1/2-valued on most of the domain).
    assert agree > 0.5


def test_ablation_gradient_source(benchmark):
    """DESIGN.md ablation: does the surrogate gradient steer SQP to the
    same place as the (ground-truth) numerical gradient?

    Both optimizers start from the same PKB point on a small design; the
    finite-difference run is budgeted (each iteration costs n+1
    simulations).  The surrogate-driven result must reach a comparable
    simulator-judged quality at a far lower simulation count.
    """
    from repro.baselines import SimulatorQuality, cai_fill
    from repro.cmp import CmpSimulator
    from repro.core import FillProblem, NeurFill, ScoreCoefficients
    from repro.layout import make_design_a
    from repro.surrogate import TrainConfig, pretrain_surrogate

    layout = make_design_a(rows=10, cols=10)
    simulator = CmpSimulator()
    problem = FillProblem(
        layout, ScoreCoefficients.calibrated(layout, simulator,
                                             beta_runtime=60.0))
    network, _, _ = pretrain_surrogate(
        [layout], layout, sample_count=24, tile_rows=10, tile_cols=10,
        base_channels=8, depth=2, config=TrainConfig(epochs=20, batch_size=8),
        simulator=simulator, seed=0,
    )

    def run_both():
        neurfill = NeurFill(problem, network,
                            optimizer=SqpOptimizer(max_iter=60, tol=1e-9),
                            simulator=simulator)
        surr = neurfill.run_pkb(num_candidates=7)
        fd = cai_fill(problem, simulator=simulator, max_sqp_iterations=3,
                      pkb_candidates=7)
        return surr, fd

    surr, fd = benchmark.pedantic(run_both, rounds=1, iterations=1)
    q_surr = evaluate_solution(problem, surr.fill, "surrogate-grad",
                               simulator).quality
    q_fd = evaluate_solution(problem, fd.fill, "fd-grad", simulator).quality
    write_output(
        "ablation_gradient_source",
        "Gradient-source ablation (10x10 design A, same PKB start)\n"
        f"surrogate backprop: quality={q_surr:.3f} "
        f"({surr.evaluations} network evals, {surr.runtime_s:.1f}s)\n"
        f"numerical FD:       quality={q_fd:.3f} "
        f"({fd.evaluations} simulator calls, {fd.runtime_s:.1f}s)",
    )
    # The surrogate gradient must not mislead the optimizer: within a few
    # 1e-2 of the ground-truth-gradient result at ~100x fewer simulator
    # calls.
    assert q_surr > q_fd - 0.05
    assert surr.runtime_s < fd.runtime_s
