"""Batched CMP simulation: one vectorised polish vs a Python loop.

The polish pipeline operates over arbitrary leading axes (DESIGN.md
"Batched CMP simulator"), so ``simulate_batch`` advances a whole
``(B, L, N, M)`` stack of layouts per time step instead of paying the
interpreter per layout.  The contract is **bitwise** identity to the
loop, so the speedup is pure overhead amortisation — it needs no extra
cores (unlike the datagen process pool) and composes with it.

Three measurements:

* raw simulator — batched vs looped at several batch sizes, in both the
  default and the multilevel (``stack_topography``) mode;
* teacher datagen end-to-end — ``build_dataset`` with ``sim_batch`` vs
  without (byte-identical datasets);
* numerical-gradient end-to-end — the Cai baseline's full
  finite-difference pass through ``quality_batch`` vs one simulator
  call per probe (bitwise-identical gradients).

Results go to ``benchmarks/output/batched_cmp.txt`` and, machine
readable, to ``BENCH_batched_cmp.json`` at the repo root.

Environment knobs:

* ``NEURFILL_BENCH_SMOKE=1`` shrinks batch sizes and grids so the whole
  file runs in seconds (CI smoke mode); speedup assertions only apply
  in full mode.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from _common import write_output
from repro.baselines import SimulatorQuality
from repro.cmp import CmpSimulator, ProcessParams
from repro.core import FillProblem, ScoreCoefficients
from repro.layout import (
    apply_fill,
    make_design_a,
    make_design_b,
    make_design_c,
    stack_features,
)
from repro.surrogate import build_dataset

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_batched_cmp.json"

SMOKE = os.environ.get("NEURFILL_BENCH_SMOKE", "0") not in ("0", "")

if SMOKE:
    BATCH_SIZES = (1, 4, 16)
    SIM_GRID = 10
    SIM_PARAMS = ProcessParams(polish_time_s=15.0)
    DATAGEN_COUNT, DATAGEN_GRID, DATAGEN_SIM_BATCH = 6, 8, 6
    NUMGRAD_GRID, NUMGRAD_SIM_BATCH = 5, 25
else:
    BATCH_SIZES = (1, 4, 16, 64)
    SIM_GRID = 12
    SIM_PARAMS = ProcessParams()
    DATAGEN_COUNT, DATAGEN_GRID, DATAGEN_SIM_BATCH = 16, 10, 8
    NUMGRAD_GRID, NUMGRAD_SIM_BATCH = 6, 36

RESULT_FIELDS = ("height", "dishing", "erosion", "pressure", "step_height")
MAKERS = (make_design_a, make_design_b, make_design_c)


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _feature_stacks(count, rows, cols, seed=0):
    rng = np.random.default_rng(seed)
    stacks = []
    for k in range(count):
        layout = MAKERS[k % len(MAKERS)](rows=rows, cols=cols)
        stacks.append(apply_fill(
            layout, rng.uniform(0.0, 0.9) * layout.slack_stack()))
    return stacks


def _max_abs_diff(batched, solos):
    worst = 0.0
    for name in RESULT_FIELDS:
        arr = getattr(batched, name)
        for k, solo in enumerate(solos):
            worst = max(worst, float(np.max(np.abs(
                arr[k] - getattr(solo, name)))))
    return worst


def _bench_simulator(stacked_mode):
    params = (SIM_PARAMS.scaled(stack_topography=True)
              if stacked_mode else SIM_PARAMS)
    sim = CmpSimulator(params)
    rows = []
    for batch in BATCH_SIZES:
        stacks = _feature_stacks(batch, SIM_GRID, SIM_GRID, seed=batch)
        prestacked = stack_features(stacks)
        sim.simulate(stacks[0])  # warm the smoother cache
        solos, looped_s = _timed(
            lambda: [sim.simulate(s) for s in stacks])
        batched, batched_s = _timed(
            lambda: sim.simulate_batch(prestacked))
        rows.append({
            "batch": batch,
            "looped_s": round(looped_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(looped_s / batched_s, 2),
            "max_abs_diff": _max_abs_diff(batched, solos),
        })
    return rows


def _bench_datagen():
    sources = [make_design_a(rows=DATAGEN_GRID, cols=DATAGEN_GRID),
               make_design_b(rows=DATAGEN_GRID, cols=DATAGEN_GRID)]
    build = lambda sim_batch: build_dataset(
        sources, count=DATAGEN_COUNT, rows=DATAGEN_GRID, cols=DATAGEN_GRID,
        seed=0, sim_batch=sim_batch)
    unbatched, unbatched_s = _timed(lambda: build(1))
    batched, batched_s = _timed(lambda: build(DATAGEN_SIM_BATCH))
    return {
        "count": DATAGEN_COUNT,
        "sim_batch": DATAGEN_SIM_BATCH,
        "unbatched_s": round(unbatched_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(unbatched_s / batched_s, 2),
        "byte_identical": (
            unbatched.inputs.tobytes() == batched.inputs.tobytes()
            and unbatched.targets.tobytes() == batched.targets.tobytes()),
    }


def _bench_numgrad():
    layout = make_design_a(rows=NUMGRAD_GRID, cols=NUMGRAD_GRID)
    simulator = CmpSimulator()
    problem = FillProblem(
        layout, ScoreCoefficients.calibrated(layout, simulator))
    fill = 0.4 * problem.upper

    model = SimulatorQuality(problem, simulator)
    (v_seq, g_seq), seq_s = _timed(
        lambda: model.value_and_numerical_grad(fill, eps=500.0))
    seq_sims = model.simulations

    model = SimulatorQuality(problem, simulator)
    (v_bat, g_bat), bat_s = _timed(
        lambda: model.value_and_numerical_grad(
            fill, eps=500.0, sim_batch=NUMGRAD_SIM_BATCH))
    return {
        "variables": int(np.prod(layout.shape)),
        "sim_batch": NUMGRAD_SIM_BATCH,
        "sequential_s": round(seq_s, 4),
        "batched_s": round(bat_s, 4),
        "speedup": round(seq_s / bat_s, 2),
        "sequential_simulations": seq_sims,
        "batched_simulations": model.simulations,
        "grad_max_abs_diff": float(np.max(np.abs(g_bat - g_seq))),
        "value_equal": bool(v_bat == v_seq),
    }


def test_batched_cmp(benchmark):
    default_rows = _bench_simulator(stacked_mode=False)
    stacked_rows, _ = benchmark.pedantic(
        lambda: _timed(lambda: _bench_simulator(stacked_mode=True)),
        rounds=1, iterations=1)
    datagen = _bench_datagen()
    numgrad = _bench_numgrad()

    report = {
        "smoke": SMOKE,
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "grid": [3, SIM_GRID, SIM_GRID],
        "simulator_default": default_rows,
        "simulator_stacked": stacked_rows,
        "datagen": datagen,
        "numgrad": numgrad,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [f"Batched CMP simulator (3x{SIM_GRID}x{SIM_GRID} layouts, "
             f"{SIM_PARAMS.num_steps} steps)"]
    for label, rows in (("default", default_rows),
                        ("stacked", stacked_rows)):
        for row in rows:
            lines.append(
                f"  {label:8s} B={row['batch']:3d}: looped "
                f"{row['looped_s']:7.3f}s, batched {row['batched_s']:7.3f}s "
                f"({row['speedup']:.2f}x, max |diff| "
                f"{row['max_abs_diff']:.1e})"
            )
    lines.append(
        f"Datagen e2e ({datagen['count']} samples, sim_batch "
        f"{datagen['sim_batch']}): {datagen['unbatched_s']:.2f}s -> "
        f"{datagen['batched_s']:.2f}s ({datagen['speedup']:.2f}x, "
        f"byte-identical: {datagen['byte_identical']})"
    )
    lines.append(
        f"Numgrad e2e ({numgrad['variables']} variables, sim_batch "
        f"{numgrad['sim_batch']}): {numgrad['sequential_s']:.2f}s -> "
        f"{numgrad['batched_s']:.2f}s ({numgrad['speedup']:.2f}x, grad "
        f"max |diff| {numgrad['grad_max_abs_diff']:.1e})"
    )
    write_output("batched_cmp", "\n".join(lines))

    # The fidelity contract is bitwise — always asserted, even in smoke.
    for row in default_rows + stacked_rows:
        assert row["max_abs_diff"] == 0.0, row
    assert datagen["byte_identical"]
    assert numgrad["grad_max_abs_diff"] == 0.0
    assert numgrad["value_equal"]
    # Same honest simulation count, sequential pays one extra base eval.
    assert numgrad["batched_simulations"] == numgrad["variables"] + 1

    # Speedups are host-dependent; gate only in full mode.
    if not SMOKE:
        at_16 = next(r for r in default_rows if r["batch"] == 16)
        assert at_16["speedup"] >= 2.0, at_16
        assert numgrad["speedup"] > 1.0, numgrad
