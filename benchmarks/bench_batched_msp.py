"""Batched multi-start refinement and parallel datagen speedups.

Two perf levers, both guaranteed result-identical to their serial
counterparts (see DESIGN.md "Batching and parallelism"):

* MSP-SQP with K starts — sequential start-by-start loop vs the lockstep
  broker that services every round with one stacked network pass.
* Teacher-data generation — serial simulation loop vs a process pool.

Results go to ``benchmarks/output/batched_msp.txt`` and, machine-readable,
to ``BENCH_batched_msp.json`` at the repo root.  Speedups depend on grid
size and core count (the datagen lever needs >1 core; the batching lever
amortises per-layer Python overhead and pays off even on one core), so
the JSON records the measured environment alongside the timings.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from _common import write_output
from repro.core import FillProblem, QualityModel, ScoreCoefficients, msp_sqp
from repro.cmp import CmpSimulator
from repro.layout import make_design_a, make_design_b
from repro.nn import UNet
from repro.optimize import SqpOptimizer, random_starting_points_stacked
from repro.surrogate import (
    NUM_FEATURE_CHANNELS,
    CmpNeuralNetwork,
    HeightNormalizer,
    build_dataset,
)

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_batched_msp.json"

MSP_GRID = 16
NUM_STARTS = 8
SQP_ITERS = 6
DATAGEN_COUNT = 8
DATAGEN_WORKERS = 4


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_batched_msp_and_parallel_datagen(benchmark):
    # Untrained weights time identically to trained ones, so skip the
    # expensive pretraining and build the setup directly.
    layout = make_design_a(rows=MSP_GRID, cols=MSP_GRID)
    simulator = CmpSimulator()
    coeffs = ScoreCoefficients.calibrated(layout, simulator)
    problem = FillProblem(layout, coeffs)
    unet = UNet(in_channels=NUM_FEATURE_CHANNELS, out_channels=1,
                base_channels=8, depth=2, rng=0)
    network = CmpNeuralNetwork(layout, unet, HeightNormalizer(6000.0, 40.0))
    starts = random_starting_points_stacked(
        problem.lower, problem.upper, NUM_STARTS, seed=0
    )
    opt = SqpOptimizer(max_iter=SQP_ITERS, tol=1e-12)

    def run(batched):
        model = QualityModel(problem, network)
        return msp_sqp(model, starts, opt, batched=batched)

    seq, seq_s = _timed(lambda: run(batched=False))
    bat, bat_s = benchmark.pedantic(lambda: _timed(lambda: run(batched=True)),
                                    rounds=1, iterations=1)
    fill_diff = float(np.max(np.abs(seq.best_fill - bat.best_fill)))
    msp_speedup = seq_s / bat_s

    # The datagen lever is a process pool: on a single-core host the
    # workers only add fork/pickle overhead and the "speedup" is pure
    # noise (<1x), so the comparison is skipped and annotated instead of
    # recorded as a misleading regression.
    cores = os.cpu_count() or 1
    sources = [make_design_a(rows=10, cols=10), make_design_b(rows=10, cols=10)]
    serial, serial_s = _timed(lambda: build_dataset(
        sources, count=DATAGEN_COUNT, rows=10, cols=10, seed=0))
    if cores > 1:
        par, par_s = _timed(lambda: build_dataset(
            sources, count=DATAGEN_COUNT, rows=10, cols=10, seed=0,
            n_workers=DATAGEN_WORKERS))
        identical = (serial.inputs.tobytes() == par.inputs.tobytes()
                     and serial.targets.tobytes() == par.targets.tobytes())
        datagen_speedup = serial_s / par_s
        datagen_note = None
    else:
        par_s = None
        identical = None
        datagen_speedup = None
        datagen_note = ("single-core host: parallel comparison skipped "
                        "(a process pool cannot win on 1 core)")

    report = {
        "cpu_count": os.cpu_count(),
        "msp_sqp": {
            "grid": [MSP_GRID, MSP_GRID],
            "starts": NUM_STARTS,
            "sqp_max_iter": SQP_ITERS,
            "sequential_s": round(seq_s, 4),
            "batched_s": round(bat_s, 4),
            "speedup": round(msp_speedup, 2),
            "best_fill_max_abs_diff": fill_diff,
            "sequential_evaluations": seq.evaluations,
            "batched_evaluations": bat.evaluations,
        },
        "datagen": {
            "count": DATAGEN_COUNT,
            "n_workers": DATAGEN_WORKERS,
            "serial_s": round(serial_s, 4),
            "parallel_s": round(par_s, 4) if par_s is not None else None,
            "speedup": round(datagen_speedup, 2) if datagen_speedup is not None else None,
            "byte_identical": identical,
            "note": datagen_note,
        },
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    text = (
        f"Batched MSP-SQP ({NUM_STARTS} starts, {MSP_GRID}x{MSP_GRID}, "
        f"{SQP_ITERS} SQP iters): sequential {seq_s:.2f}s, batched "
        f"{bat_s:.2f}s — {msp_speedup:.1f}x, "
        f"best-fill max |diff| {fill_diff:.2e}\n"
    )
    if datagen_note is None:
        text += (
            f"Parallel datagen ({DATAGEN_COUNT} samples, "
            f"{DATAGEN_WORKERS} workers, {cores} cores): serial "
            f"{serial_s:.2f}s, parallel {par_s:.2f}s — {datagen_speedup:.1f}x, "
            f"byte-identical: {identical}"
        )
    else:
        text += (
            f"Parallel datagen: serial {serial_s:.2f}s; {datagen_note}"
        )
    write_output("batched_msp", text)

    # Correctness is asserted; speedups are recorded, not asserted, since
    # they depend on the host (core count, BLAS threading).
    if datagen_note is None:
        assert identical
    assert fill_diff < 1e-8
    assert seq.evaluations == bat.evaluations
    # Batching amortises per-call overhead even on one core.
    assert msp_speedup > 1.0
