"""Benchmark: captured-graph replay vs. eager surrogate execution.

Reproduces the headline claim of the captured-graph replay PR: after one
eager trace, repeated ``CmpNeuralNetwork.evaluate`` calls replay a
preallocated plan — zero Python graph construction, zero intermediate
allocation — and are therefore substantially faster than rebuilding the
autodiff graph per call, while staying *bitwise identical* to eager.

Protocol (design A at the bench grid, fixed seeds, random weights —
wall-clock cost of a forward/backward pass does not depend on the
weights, and the bitwise-parity guarantee is weight-independent):

1. Build two networks over the same layout and identical weights, one
   with ``capture=True`` and one with ``capture=False``.
2. For each entry point (``evaluate``, ``evaluate_batch``,
   ``evaluate_region``): warm both up, then time repeated calls over a
   rotating set of fills, asserting every captured result is bitwise
   equal to its eager counterpart.
3. In a separate pass (tracemalloc skews timings), measure the
   per-iteration allocation high-water delta for both modes.

Acceptance gates (full mode only; ``NEURFILL_BENCH_SMOKE=1`` shrinks the
grid and iteration counts and records but does not enforce):

* steady-state ``evaluate`` replay is **≥1.5× faster** than eager;
* per-iteration array allocations drop by **≥90 %** after warmup.

Writes ``BENCH_capture.json`` at the repo root.
"""

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np

from _common import write_output
from repro.layout.designs import DESIGN_BUILDERS
from repro.nn import UNet
from repro.surrogate import (
    NUM_FEATURE_CHANNELS,
    CmpNeuralNetwork,
    HeightNormalizer,
    PlanarityWeights,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_capture.json"

SMOKE = os.environ.get("NEURFILL_BENCH_SMOKE", "0") not in ("0", "")

GRID = 12 if SMOKE else 20  # full mode matches the A bench grid
SEED = 5
BASE_CHANNELS = 8
DEPTH = 2
BATCH = 4
WARMUP = 2
TIMED_ITERS = 5 if SMOKE else 30
ALLOC_ITERS = 3 if SMOKE else 8
MIN_SPEEDUP = 1.5
MIN_ALLOC_REDUCTION = 0.90
WEIGHTS = PlanarityWeights(1.0, 20000.0, 1.0, 20000.0, 1.0, 20000.0)


def bind_network(layout, capture: bool) -> CmpNeuralNetwork:
    unet = UNet(NUM_FEATURE_CHANNELS, 1, base_channels=BASE_CHANNELS,
                depth=DEPTH, rng=0)
    return CmpNeuralNetwork(layout, unet, HeightNormalizer(6000.0, 40.0),
                            capture=capture)


def make_fills(layout, count, seed, batch=None):
    rng = np.random.default_rng(seed)
    slack = layout.slack_stack()
    shape = slack.shape if batch is None else (batch, *slack.shape)
    return [rng.random(shape) * slack for _ in range(count)]


def assert_bitwise(a, b, mode):
    ok = (np.array_equal(np.asarray(a.s_plan), np.asarray(b.s_plan))
          and np.array_equal(a.heights, b.heights)
          and np.array_equal(a.gradient, b.gradient))
    if not ok:
        raise AssertionError(
            f"{mode}: captured result differs bitwise from eager — the "
            "replay fidelity guarantee is broken")


def make_calls(layout, captured, eager):
    """Per-mode callables ``call(net, i) -> result`` plus rotation sets."""
    fills = make_fills(layout, 4, seed=SEED)
    batches = make_fills(layout, 4, seed=SEED + 1, batch=BATCH)

    base_fill = fills[0]
    base = eager.predict_heights(base_fill)
    active = np.zeros((GRID, GRID), bool)
    r0 = GRID // 3
    active[r0:r0 + 3, r0:r0 + 3] = True
    region = captured.plan_region(active)
    trials = []
    for k, src in enumerate(make_fills(layout, 4, seed=SEED + 2)):
        trial = base_fill.copy()
        trial[:, r0:r0 + 3, r0:r0 + 3] = src[:, r0:r0 + 3, r0:r0 + 3]
        trials.append(trial)

    return {
        "fill": lambda net, i: net.evaluate(fills[i % len(fills)], WEIGHTS),
        "batch": lambda net, i: net.evaluate_batch(
            batches[i % len(batches)], WEIGHTS),
        "region": lambda net, i: net.evaluate_region(
            trials[i % len(trials)], region, base, WEIGHTS),
    }


def timed_loop(call, net, iters):
    start = time.perf_counter()
    for i in range(iters):
        call(net, i)
    return (time.perf_counter() - start) / iters


def alloc_per_iter(call, net, iters):
    """Mean per-call allocation high-water delta, in bytes.

    Eager execution allocates the whole intermediate graph every call, so
    its peak delta is the graph footprint; a warm replay only allocates
    the result copies handed back to the caller.
    """
    call(net, 0)  # ensure warm under tracemalloc too
    deltas = []
    for i in range(iters):
        tracemalloc.reset_peak()
        current, _ = tracemalloc.get_traced_memory()
        call(net, i)
        _, peak = tracemalloc.get_traced_memory()
        deltas.append(max(0, peak - current))
    return float(np.mean(deltas))


def main() -> None:
    layout = DESIGN_BUILDERS["A"](rows=GRID, cols=GRID, seed=SEED)
    captured = bind_network(layout, capture=True)
    eager = bind_network(layout, capture=False)

    print(f"bench_capture: design A {GRID}x{GRID} (smoke={SMOKE}), "
          f"base_channels={BASE_CHANNELS} depth={DEPTH}")

    calls = make_calls(layout, captured, eager)
    rows = []
    for mode, call in calls.items():
        # Parity + warmup: every captured result checked against eager.
        for i in range(WARMUP + 2):
            assert_bitwise(call(captured, i), call(eager, i), mode)

        t_eager = timed_loop(call, eager, TIMED_ITERS)
        t_captured = timed_loop(call, captured, TIMED_ITERS)

        tracemalloc.start()
        try:
            alloc_eager = alloc_per_iter(call, eager, ALLOC_ITERS)
            alloc_captured = alloc_per_iter(call, captured, ALLOC_ITERS)
        finally:
            tracemalloc.stop()

        speedup = (t_eager / t_captured) if t_captured > 0 else float("inf")
        reduction = (1.0 - alloc_captured / alloc_eager
                     if alloc_eager > 0 else 0.0)
        rows.append({
            "mode": mode,
            "gated": mode == "fill",
            "t_eager_ms": 1e3 * t_eager,
            "t_captured_ms": 1e3 * t_captured,
            "speedup": speedup,
            "alloc_eager_bytes": alloc_eager,
            "alloc_captured_bytes": alloc_captured,
            "alloc_reduction": reduction,
            "bitwise": True,
        })
        print(f"  {mode:>7}: eager {1e3 * t_eager:7.2f}ms / "
              f"replay {1e3 * t_captured:7.2f}ms  speedup {speedup:5.2f}x  "
              f"alloc -{100 * reduction:5.1f}%  bitwise ok")

    stats = captured.capture_stats()
    gated = [r for r in rows if r["gated"]]
    gate_passed = None
    if not SMOKE:
        gate_passed = all(
            r["speedup"] >= MIN_SPEEDUP
            and r["alloc_reduction"] >= MIN_ALLOC_REDUCTION
            for r in gated)

    report = {
        "bench": "capture",
        "smoke": SMOKE,
        "design": "A",
        "grid": [GRID, GRID],
        "seed": SEED,
        "surrogate": {"base_channels": BASE_CHANNELS, "depth": DEPTH},
        "batch": BATCH,
        "timed_iters": TIMED_ITERS,
        "alloc_iters": ALLOC_ITERS,
        "rows": rows,
        "capture_stats": {
            "trace": stats["trace"], "replay": stats["replay"],
            "miss": stats["miss"], "bypass": stats["bypass"],
            "arena_bytes": stats["arena_bytes"],
        },
        "gate": {"min_speedup": MIN_SPEEDUP,
                 "min_alloc_reduction": MIN_ALLOC_REDUCTION,
                 "enforced": not SMOKE, "passed": gate_passed},
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [f"Capture bench (design A {GRID}x{GRID}, smoke={SMOKE})",
             f"{'mode':>8} {'t_eager':>9} {'t_replay':>9} {'speedup':>8} "
             f"{'alloc-':>8} {'bitwise':>8}"]
    for r in rows:
        lines.append(
            f"{r['mode']:>8} {r['t_eager_ms']:>7.2f}ms "
            f"{r['t_captured_ms']:>7.2f}ms {r['speedup']:>7.2f}x "
            f"{100 * r['alloc_reduction']:>7.1f}% "
            f"{'ok' if r['bitwise'] else 'FAIL':>8}")
    write_output("capture", "\n".join(lines))
    print(f"wrote {JSON_PATH}")

    if not SMOKE and not gate_passed:
        raise AssertionError(
            "gate failed: " + "; ".join(
                f"{r['mode']}: speedup {r['speedup']:.2f}x "
                f"(need {MIN_SPEEDUP}x), alloc reduction "
                f"{100 * r['alloc_reduction']:.1f}% "
                f"(need {100 * MIN_ALLOC_REDUCTION:.0f}%)"
                for r in gated))


def test_capture_replay():
    """Pytest entry point (CI runs the benches through pytest)."""
    main()


if __name__ == "__main__":
    main()
