"""Fig. 2 flow sanity + simulator scaling.

Not a paper table per se, but the substrate every experiment stands on:
checks the four-step CMP flow produces physically sensible trends and
benchmarks a full-chip simulation at several grid sizes.
"""

import numpy as np
import pytest

from _common import write_output
from repro.cmp import CmpSimulator, ProcessParams
from repro.layout import make_design_a


@pytest.mark.parametrize("size", [16, 32, 64])
def test_simulator_scaling(benchmark, size):
    layout = make_design_a(rows=size, cols=size)
    simulator = CmpSimulator()
    result = benchmark(lambda: simulator.simulate_layout(layout))
    assert result.height.shape == (3, size, size)


def test_flow_sanity(benchmark):
    layout = make_design_a(rows=24, cols=24)

    def polish_sweep():
        rows = []
        for t in (10.0, 30.0, 60.0, 90.0):
            sim = CmpSimulator(ProcessParams(polish_time_s=t))
            res = sim.simulate_layout(layout)
            rows.append((t, float(res.height.mean()),
                         float(res.step_height.max()),
                         float(np.mean([res.height[l].std() for l in range(3)]))))
        return rows

    rows = benchmark.pedantic(polish_sweep, rounds=1, iterations=1)
    text = "\n".join(
        [f"{'t(s)':>6} {'mean H (A)':>12} {'max step':>10} {'layer std':>10}"]
        + [f"{t:>6.0f} {h:>12.1f} {s:>10.1f} {d:>10.1f}" for t, h, s, d in rows]
    )
    write_output("cmp_flow_sanity", "CMP polish-time sweep (design A 24x24)\n" + text)

    heights = [h for _, h, _, _ in rows]
    steps = [s for _, _, s, _ in rows]
    # More polishing removes more material and clears topography.
    assert all(h1 > h2 for h1, h2 in zip(heights, heights[1:]))
    assert steps[-1] < steps[0]
