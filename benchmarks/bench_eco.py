"""Benchmark: incremental ECO refill vs. full refill, by edit size.

Reproduces the headline claim of the incremental-refill PR: after an
engineering change order (ECO) edits a small part of an already-solved
layout, ``eco_refill`` re-synthesises only the dirty window halo and is
therefore much faster than re-running the full MSP-SQP flow — while
staying *bitwise identical* to the parent solution outside the halo.

Protocol (design A, fixed seeds, so runs are reproducible):

1. Solve the parent layout once with the full ``neurfill-pkb`` flow.
2. For each scripted edit (one window, ~1 % area, ~5 % area, plus a
   slack-opening "hard" edit and the empty edit):

   * run a **full refill** of the edited layout from scratch — the
     honest baseline, including PKB candidate search;
   * run ``eco_refill`` against the parent solution;
   * assert the ECO fill is bitwise equal to the parent outside the
     dirty halo (recomputed independently here via ``diff_layouts`` +
     ``dilate_mask``).

Surrogate weights are random (``bench_serve`` idiom): wall-clock cost
of a forward/backward pass does not depend on the weights, and the
exactness guarantee is weight-independent, so nothing is trained.

Acceptance gate (full mode only): the ≤5 %-area standard edit must be
**≥5× faster** than its full refill.  Smoke mode (set
``NEURFILL_BENCH_SMOKE=1``) shrinks the grid so the whole file runs in
seconds; the gate is recorded but not enforced there, because on a tiny
grid the receptive-field halo covers most of the chip and locality
cannot pay off.

Writes ``BENCH_eco.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from _common import write_output
from repro.core import FillProblem, NeurFill, ScoreCoefficients, eco_refill
from repro.cmp import CmpSimulator
from repro.layout import diff_layouts, dilate_mask, edit_layout
from repro.layout.designs import DESIGN_BUILDERS
from repro.nn import UNet
from repro.optimize import SqpOptimizer
from repro.surrogate import NUM_FEATURE_CHANNELS, HeightNormalizer
from repro.surrogate.network import CmpNeuralNetwork

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_eco.json"

SMOKE = os.environ.get("NEURFILL_BENCH_SMOKE", "0") not in ("0", "")

GRID = 32 if SMOKE else 160
SEED = 3
BASE_CHANNELS = 4
DEPTH = 1  # receptive halo 10 windows; locality pays off at bench grids
COUPLING_RADIUS = 0
MIN_SPEEDUP_5PCT = 5.0
OPTIMIZER = dict(max_iter=80, tol=1e-9)  # same budget as serve/CLI


def bind_network(layout) -> CmpNeuralNetwork:
    unet = UNet(NUM_FEATURE_CHANNELS, 1, base_channels=BASE_CHANNELS,
                depth=DEPTH, rng=0)
    return CmpNeuralNetwork(layout, unet, HeightNormalizer(6000.0, 40.0))


def full_refill(layout, simulator):
    """Full from-scratch flow on ``layout`` (calibrate + PKB + SQP)."""
    coefficients = ScoreCoefficients.calibrated(
        layout, simulator, beta_runtime=60.0)
    problem = FillProblem(layout, coefficients)
    network = bind_network(layout)
    start = time.perf_counter()
    result = NeurFill(problem, network,
                      optimizer=SqpOptimizer(**OPTIMIZER)).run("neurfill-pkb")
    return result, time.perf_counter() - start, problem, network


def edit_cases(grid: int) -> list[dict]:
    """Scripted edits, smallest first.  Block side ~ sqrt(area fraction)."""
    side_1pct = max(2, int(round(grid * 0.01 ** 0.5)))
    side_5pct = max(3, int(round(grid * 0.05 ** 0.5)))
    r0 = grid // 3
    cases = [
        dict(name="empty", layer=1, rows=None, cols=None),
        dict(name="1-window", layer=1,
             rows=(grid // 2, grid // 2 + 1), cols=(grid // 2, grid // 2 + 1)),
        dict(name="1pct", layer=1,
             rows=(r0, r0 + side_1pct), cols=(r0, r0 + side_1pct)),
        dict(name="5pct", layer=1,
             rows=(r0, r0 + side_5pct), cols=(r0, r0 + side_5pct),
             gated=True),
    ]
    if not SMOKE:
        # Hard case: the edit *lowers* density with slack untouched, so
        # the warm start is far from the new optimum and the SQP has to
        # genuinely re-optimise the halo.  Recorded, not gated.
        cases.append(dict(name="5pct-hard", layer=1,
                          rows=(r0, r0 + side_5pct),
                          cols=(r0, r0 + side_5pct),
                          density_delta=-0.08, slack_scale=1.0))
    return cases


def main() -> None:
    simulator = CmpSimulator()
    layout = DESIGN_BUILDERS["A"](rows=GRID, cols=GRID, seed=SEED)

    print(f"bench_eco: design A {GRID}x{GRID} "
          f"(smoke={SMOKE}), depth={DEPTH} surrogate")
    parent, t_parent, _, parent_net = full_refill(layout, simulator)
    rf_halo = parent_net.receptive_halo()
    print(f"parent solve: {t_parent:.2f}s, {parent.evaluations} evals, "
          f"quality {parent.quality:.6f}")

    rows = []
    for case in edit_cases(GRID):
        if case["rows"] is None:
            edited = layout
        else:
            edited = edit_layout(
                layout, case["layer"],
                slice(*case["rows"]), slice(*case["cols"]),
                density_delta=case.get("density_delta", 0.05),
                slack_scale=case.get("slack_scale", 0.5),
                name_suffix=f"-eco-{case['name']}")

        diff = diff_layouts(layout, edited)
        free2d = dilate_mask(diff.dirty, rf_halo + COUPLING_RADIUS)

        # Honest baseline: full refill of the *edited* layout.
        full, t_full, problem, network = full_refill(edited, simulator)

        start = time.perf_counter()
        eco = eco_refill(problem, network, layout, parent,
                         optimizer=SqpOptimizer(**OPTIMIZER),
                         coupling_radius=COUPLING_RADIUS)
        t_eco = time.perf_counter() - start
        extras = eco.extras["eco"]

        frozen = ~free2d
        bitwise = bool(np.array_equal(eco.fill[:, frozen],
                                      parent.fill[:, frozen]))
        if not bitwise:
            raise AssertionError(
                f"{case['name']}: ECO fill differs from the parent outside "
                "the dirty halo — the exactness guarantee is broken")

        speedup = (t_full / t_eco) if t_eco > 0 else float("inf")
        rows.append({
            "name": case["name"],
            "gated": bool(case.get("gated", False)),
            "edit_windows": int(diff.num_dirty),
            "edit_fraction": float(diff.dirty_fraction),
            "free_windows": int(extras.get("free_windows", 0)),
            "cache_hit": bool(extras["cache_hit"]),
            "t_full_s": t_full,
            "t_eco_s": t_eco,
            "speedup": speedup,
            "evals_full": int(full.evaluations),
            "evals_eco": int(eco.evaluations),
            "sqp_iterations": int(extras.get("sqp_iterations", 0)),
            "quality_full": float(full.quality),
            "quality_eco": float(eco.quality),
            "crop": extras.get("crop"),
            "bitwise_outside_halo": bitwise,
        })
        print(f"  {case['name']:>9}: edit {diff.num_dirty:5d} win "
              f"({100 * diff.dirty_fraction:5.2f}%)  "
              f"full {t_full:6.2f}s / eco {t_eco:6.2f}s  "
              f"speedup {speedup:6.1f}x  bitwise-outside ok")

    gated = [r for r in rows if r["gated"]]
    gate_passed = None
    if not SMOKE:
        gate_passed = all(r["speedup"] >= MIN_SPEEDUP_5PCT for r in gated)

    report = {
        "bench": "eco",
        "smoke": SMOKE,
        "design": "A",
        "grid": [GRID, GRID],
        "seed": SEED,
        "surrogate": {"base_channels": BASE_CHANNELS, "depth": DEPTH,
                      "rf_halo": int(rf_halo),
                      "coupling_radius": COUPLING_RADIUS},
        "optimizer": OPTIMIZER,
        "parent": {"t_s": t_parent, "evaluations": int(parent.evaluations),
                   "quality": float(parent.quality)},
        "rows": rows,
        "gate": {"min_speedup_5pct": MIN_SPEEDUP_5PCT,
                 "enforced": not SMOKE, "passed": gate_passed},
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [f"ECO bench (design A {GRID}x{GRID}, smoke={SMOKE})",
             f"{'edit':>10} {'windows':>8} {'area%':>7} {'t_full':>8} "
             f"{'t_eco':>8} {'speedup':>8} {'bitwise':>8}"]
    for r in rows:
        lines.append(
            f"{r['name']:>10} {r['edit_windows']:>8} "
            f"{100 * r['edit_fraction']:>6.2f}% {r['t_full_s']:>7.2f}s "
            f"{r['t_eco_s']:>7.2f}s {r['speedup']:>7.1f}x "
            f"{'ok' if r['bitwise_outside_halo'] else 'FAIL':>8}")
    write_output("eco", "\n".join(lines))
    print(f"wrote {JSON_PATH}")

    if not SMOKE and not gate_passed:
        worst = min((r["speedup"] for r in gated), default=float("nan"))
        raise AssertionError(
            f"gate failed: ≤5% edit speedup {worst:.1f}x < "
            f"{MIN_SPEEDUP_5PCT}x")


def test_eco_incremental():
    """Pytest entry point (CI runs the benches through pytest)."""
    main()


if __name__ == "__main__":
    main()
