"""Fig. 6: the multi-modal quality topography of a two-window layout.

The paper plots the quality score over the two fill variables of a
layout with exactly two fillable windows and marks several peak regions —
the motivation for multi-modal starting points.  We sweep the same
surface through the real simulator, locate its local maxima on the grid,
and check NMMSO finds the global one.
"""

import numpy as np

from _common import write_output
from repro.baselines import SimulatorQuality
from repro.cmp import CmpSimulator
from repro.core import FillProblem, ScoreCoefficients
from repro.layout import make_two_fillable_window_layout
from repro.optimize import Nmmso

GRID = 17


def _grid_local_maxima(surface: np.ndarray) -> list[tuple[int, int]]:
    """Interior + border local maxima of a 2-D grid (8-neighbourhood)."""
    peaks = []
    n, m = surface.shape
    for i in range(n):
        for j in range(m):
            val = surface[i, j]
            neigh = surface[max(0, i - 1): i + 2, max(0, j - 1): j + 2]
            if val >= neigh.max() - 1e-12:
                peaks.append((i, j))
    return peaks


def test_fig6_topography(benchmark):
    layout = make_two_fillable_window_layout()
    simulator = CmpSimulator()
    problem = FillProblem(layout,
                          ScoreCoefficients.calibrated(layout, simulator))
    model = SimulatorQuality(problem, simulator)
    (i1, j1), (i2, j2) = layout.metadata["fillable"]
    slack = layout.slack_stack()
    s1, s2 = slack[0, i1, j1], slack[0, i2, j2]

    def sweep():
        surface = np.zeros((GRID, GRID))
        for a in range(GRID):
            for b in range(GRID):
                fill = np.zeros(layout.shape)
                fill[0, i1, j1] = s1 * a / (GRID - 1)
                fill[0, i2, j2] = s2 * b / (GRID - 1)
                surface[a, b] = model.quality(fill)
        return surface

    surface = benchmark.pedantic(sweep, rounds=1, iterations=1)
    peaks = _grid_local_maxima(surface)
    best_idx = np.unravel_index(np.argmax(surface), surface.shape)

    def q2(x):
        fill = np.zeros(layout.shape)
        fill[0, i1, j1] = x[0]
        fill[0, i2, j2] = x[1]
        return model.quality(fill)

    found = Nmmso(q2, np.zeros(2), np.array([s1, s2]),
                  max_evaluations=700, merge_distance=0.12, seed=0).run()

    lines = [
        f"Fig. 6 — quality topography over (x1, x2), {GRID}x{GRID} sweep",
        f"grid local maxima: {len(peaks)} at "
        + ", ".join(f"({a / (GRID - 1):.2f}, {b / (GRID - 1):.2f})"
                    for a, b in peaks[:6]),
        f"grid optimum: ({best_idx[0] / (GRID - 1):.2f}, "
        f"{best_idx[1] / (GRID - 1):.2f}) quality={surface.max():.4f}",
        f"NMMSO located {len(found.optima)} peak region(s); "
        f"best quality={found.best.value:.4f} "
        f"after {found.evaluations} evaluations",
    ]
    write_output("fig6_topography", "\n".join(lines))

    # Shape: the surface is multi-modal (at least 2 local maxima) and
    # NMMSO's best is within tolerance of the dense-grid optimum.
    assert len(peaks) >= 2
    assert found.best.value >= surface.max() - 0.01
