"""Fig. 9: distribution of the per-window average relative height error.

The paper's histogram peaks near its mean error with a short right tail
(max 1.77 %, 90 % of windows under 1.3 %).  We regenerate the same plot
data for the cached bench surrogate and assert the same unimodal,
short-tailed structure relative to our (larger) mean error.
"""

import numpy as np

from _common import write_output
from repro.cmp import CmpSimulator
from repro.evaluation import format_histogram
from repro.surrogate import build_dataset, evaluate_accuracy


def test_fig9_error_distribution(benchmark, setup_a):
    s = setup_a
    rows, cols = s.layout.grid.shape
    test_set = build_dataset(
        [s.layout], count=16, rows=rows, cols=cols,
        simulator=CmpSimulator(), seed=99,
        normalizer=s.network.normalizer,
    )

    report = benchmark.pedantic(
        lambda: evaluate_accuracy(s.network.unet, test_set),
        rounds=1, iterations=1,
    )
    counts, edges = report.error_histogram(bins=14)
    text = (
        f"Fig. 9 — per-window average relative error over "
        f"{rows * cols} windows x {len(test_set)} test layouts\n"
        f"mean = {report.mean_relative_error * 100:.2f}%, "
        f"max window = {report.max_window_relative_error * 100:.2f}%\n"
        + format_histogram(counts, edges)
    )
    write_output("fig9_error_distribution", text)

    # Shape: unimodal-ish with a short right tail — the top bin holds few
    # windows and the bulk sits below 2x the mean.
    assert counts[-1] <= max(3, 0.05 * counts.sum())
    assert report.fraction_below(2 * report.mean_relative_error) > 0.6
    # Errors span a real distribution, not a spike.
    assert np.count_nonzero(counts) >= 5
