"""Shape-aware conv dispatch, cached-smoother pressure solve, tiled inference.

Three perf levers from the same "plan once, reuse" family (see DESIGN.md
"Shape-aware kernel dispatch"):

* conv shape classes — the im2col baseline vs the plan-cached dispatcher
  (FFT / shifted-matmul backends where they win, with parity deltas);
* repeated ``solve_pressure`` — the cached separable smoother (+ the
  no-lift-off closed form) vs a scipy ``gaussian_filter`` replica of the
  seed implementation;
* full-chip tiled surrogate inference — ``predict_heights_tiled`` on a
  >=512x512 window grid with bounded peak memory, and tiled-vs-monolithic
  parity at a size both paths can run.

Results go to ``benchmarks/output/kernel_dispatch.txt`` and, machine
readable, to ``BENCH_kernel_dispatch.json`` at the repo root.

Environment knobs:

* ``NEURFILL_BENCH_SMOKE=1`` shrinks every shape so the whole file runs
  in seconds (CI smoke mode); speedup assertions only apply in full mode.
"""

import json
import os
import resource
import time
import tracemalloc
from pathlib import Path

import numpy as np

from _common import write_output
from repro.cmp import DEFAULT_PROCESS, solve_pressure
from repro.cmp.pad import clear_smoother_cache
from repro.layout import make_design_a
from repro.nn import Tensor, UNet, conv2d, dispatch
from repro.surrogate import NUM_FEATURE_CHANNELS, CmpNeuralNetwork, HeightNormalizer

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel_dispatch.json"

SMOKE = os.environ.get("NEURFILL_BENCH_SMOKE", "0") not in ("0", "")

# (name, input (B,C,H,W), kernel (O,C,kh,kw)); H/W are pre-padded sizes.
if SMOKE:
    CONV_CLASSES = [
        ("large_map_3x3", (1, 4, 144, 144), (4, 4, 3, 3)),
        ("large_kernel_9x9", (1, 1, 160, 160), (1, 1, 9, 9)),
        ("pointwise_1x1", (1, 8, 144, 144), (4, 8, 1, 1)),
        ("unet_batch_3x3", (4, 4, 32, 32), (4, 4, 3, 3)),
    ]
    PRESSURE_CALLS, PRESSURE_GRID = 30, (3, 16, 16)
    TILED_GRID, TILED_TILE = 96, 32
    PARITY_GRID = 48
else:
    CONV_CLASSES = [
        ("large_map_3x3", (1, 8, 384, 384), (8, 8, 3, 3)),
        ("large_kernel_9x9", (1, 1, 512, 512), (1, 1, 9, 9)),
        ("pointwise_1x1", (1, 16, 256, 256), (8, 16, 1, 1)),
        ("unet_batch_3x3", (8, 8, 64, 64), (8, 8, 3, 3)),
    ]
    PRESSURE_CALLS, PRESSURE_GRID = 200, (3, 16, 16)
    TILED_GRID, TILED_TILE = 512, 128
    PARITY_GRID = 96


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
def _bench_conv_classes():
    rng = np.random.default_rng(0)
    rows = []
    for name, xshape, wshape in CONV_CLASSES:
        xp = rng.normal(size=xshape)
        w = rng.normal(size=wshape)
        ref = dispatch._corr_im2col(xp, w, 1)
        dispatch.corr2d(xp, w)  # warm-up: calibrate / plan / cache kernel FFT
        auto = dispatch.corr2d(xp, w)
        parity = float(np.max(np.abs(auto - ref)) / np.max(np.abs(ref)))
        t_ref = _best_of(lambda: dispatch._corr_im2col(xp, w, 1))
        t_auto = _best_of(lambda: dispatch.corr2d(xp, w))
        plan = dispatch.plan_table().get(
            dispatch._plan_key("corr", *xshape, wshape[0], *wshape[2:], 1,
                               xp.dtype),
            {},
        )
        rows.append({
            "class": name,
            "input": list(xshape),
            "kernel": list(wshape),
            "backend": plan.get("backend", "im2col"),
            "plan_source": plan.get("source"),
            "im2col_ms": round(t_ref * 1e3, 3),
            "auto_ms": round(t_auto * 1e3, 3),
            "speedup": round(t_ref / t_auto, 2),
            "max_rel_dev": parity,
        })
    return rows


def _bench_backward_memory():
    """Peak allocation of a conv2d forward+backward (satellite: the
    backward no longer retains the padded input copy from the forward)."""
    B, C, H, O = (1, 4, 96, 4) if SMOKE else (2, 8, 192, 8)
    rng = np.random.default_rng(1)
    x = Tensor(rng.normal(size=(B, C, H, H)), requires_grad=True)
    w = Tensor(rng.normal(size=(O, C, 3, 3)), requires_grad=True)
    tracemalloc.start()
    out = conv2d(x, w, padding=1)
    out.backward(np.ones(out.shape))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    activation_bytes = out.data.nbytes
    return {
        "input": [B, C, H, H],
        "peak_traced_mib": round(peak / 2**20, 2),
        "peak_over_activation": round(peak / activation_bytes, 1),
        "max_rss_mib": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1),
        "note": ("backward recomputes the padded input from x.data instead "
                 "of retaining the forward's padded copy in the closure"),
    }


# ----------------------------------------------------------------------
def _legacy_solve_pressure(envelope, window_um, params,
                           max_iter=25, tol=1e-10):
    """Seed implementation replica: per-call scipy smoothing + fixed point."""
    from scipy.ndimage import gaussian_filter

    sigma = max(params.planarization_length_um / window_um, 1e-6)
    envelope = np.asarray(envelope, dtype=float)
    if envelope.ndim == 2:
        reference = gaussian_filter(envelope, sigma, mode="nearest")
    else:
        reference = np.stack(
            [gaussian_filter(layer, sigma, mode="nearest")
             for layer in envelope]
        )
    base = 1.0 + params.pad_stiffness * (envelope - reference)
    p0 = params.pressure_psi
    scale = np.array(1.0) if envelope.ndim == 2 else np.ones(
        (envelope.shape[0], 1, 1))
    for _ in range(max_iter):
        pressure = np.maximum(base * scale, 0.0) * p0
        mean = pressure.mean(axis=(-2, -1), keepdims=True)
        degenerate = mean <= 0
        if np.any(degenerate):
            pressure = np.where(degenerate, p0, pressure)
            mean = np.where(degenerate, p0, mean)
        if float(np.max(np.abs(mean - p0))) <= tol * p0:
            break
        scale = scale * (p0 / mean)
    return pressure


def _bench_solve_pressure():
    rng = np.random.default_rng(2)
    envelopes = rng.normal(0, 300, size=(PRESSURE_CALLS, *PRESSURE_GRID))

    try:
        import scipy.ndimage  # noqa: F401
        have_scipy = True
    except ImportError:
        have_scipy = False

    clear_smoother_cache()
    t0 = time.perf_counter()
    cached = [solve_pressure(env, 100.0, DEFAULT_PROCESS) for env in envelopes]
    cached_s = time.perf_counter() - t0

    result = {
        "calls": PRESSURE_CALLS,
        "grid": list(PRESSURE_GRID),
        "cached_s": round(cached_s, 4),
        "per_call_us": round(cached_s / PRESSURE_CALLS * 1e6, 1),
    }
    if have_scipy:
        t0 = time.perf_counter()
        legacy = [_legacy_solve_pressure(env, 100.0, DEFAULT_PROCESS)
                  for env in envelopes]
        legacy_s = time.perf_counter() - t0
        parity = float(max(
            np.max(np.abs(c - l)) for c, l in zip(cached, legacy)))
        result.update({
            "scipy_baseline_s": round(legacy_s, 4),
            "speedup": round(legacy_s / cached_s, 2),
            "max_abs_dev_psi": parity,
        })
    else:
        result["note"] = "scipy unavailable: baseline replica skipped"
    return result


# ----------------------------------------------------------------------
def _surrogate(rows, cols):
    layout = make_design_a(rows=rows, cols=cols)
    unet = UNet(in_channels=NUM_FEATURE_CHANNELS, out_channels=1,
                base_channels=4, depth=2, rng=0)
    net = CmpNeuralNetwork(layout, unet, HeightNormalizer(6000.0, 40.0))
    rng = np.random.default_rng(5)
    slack = layout.slack_stack()
    return net, rng.random(slack.shape) * slack


def _bench_tiled_inference():
    # Parity at a size both paths can run.
    net, fill = _surrogate(PARITY_GRID, PARITY_GRID)
    mono = net.predict_heights(fill)
    tiled = net.predict_heights_tiled(fill, tile=TILED_TILE // 2)
    parity = float(np.max(np.abs(tiled - mono)) / np.max(np.abs(mono)))
    assert parity <= 1e-6, f"tiled/monolithic mismatch: {parity:.2e}"

    # Full-chip streamed forward with bounded peak memory.
    net, fill = _surrogate(TILED_GRID, TILED_GRID)
    tracemalloc.start()
    t0 = time.perf_counter()
    heights = net.predict_heights_tiled(fill, tile=TILED_TILE)
    tiled_s = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    chip_bytes = heights.nbytes
    return {
        "parity_grid": PARITY_GRID,
        "tiled_vs_monolithic_max_rel_dev": parity,
        "fullchip_grid": TILED_GRID,
        "tile": TILED_TILE,
        "halo": int(-(-net.unet.receptive_field_radius()
                      // net.unet.alignment) * net.unet.alignment),
        "fullchip_s": round(tiled_s, 2),
        "peak_traced_mib": round(peak / 2**20, 1),
        "peak_over_output": round(peak / chip_bytes, 1),
    }


# ----------------------------------------------------------------------
def test_kernel_dispatch(benchmark):
    # Plans must be calibrated fresh on this host, not read from a stale
    # file; keep the run hermetic.
    os.environ["REPRO_CONV_PLAN_CACHE"] = "off"
    os.environ.pop("REPRO_CONV_BACKEND", None)
    dispatch.clear_caches(reload_persisted=False)

    conv_rows = benchmark.pedantic(_bench_conv_classes, rounds=1, iterations=1)
    backward_mem = _bench_backward_memory()
    pressure = _bench_solve_pressure()
    tiled = _bench_tiled_inference()

    report = {
        "smoke": SMOKE,
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "conv_classes": conv_rows,
        "conv_backward_memory": backward_mem,
        "solve_pressure": pressure,
        "tiled_inference": tiled,
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [f"Conv dispatch ({'smoke' if SMOKE else 'full'} mode, "
             f"{os.cpu_count()} cores):"]
    for row in conv_rows:
        lines.append(
            f"  {row['class']:>16}: {row['backend']:>6} "
            f"{row['im2col_ms']:8.2f}ms -> {row['auto_ms']:8.2f}ms "
            f"({row['speedup']:.2f}x, rel dev {row['max_rel_dev']:.1e})"
        )
    lines.append(
        f"Conv backward peak: {backward_mem['peak_traced_mib']}MiB traced "
        f"({backward_mem['peak_over_activation']}x the output activation; "
        f"RSS {backward_mem['max_rss_mib']}MiB)"
    )
    if "speedup" in pressure:
        lines.append(
            f"solve_pressure x{PRESSURE_CALLS} on {PRESSURE_GRID}: "
            f"{pressure['scipy_baseline_s']:.3f}s -> {pressure['cached_s']:.3f}s "
            f"({pressure['speedup']:.2f}x, dev {pressure['max_abs_dev_psi']:.1e} psi)"
        )
    else:
        lines.append(
            f"solve_pressure x{PRESSURE_CALLS}: {pressure['cached_s']:.3f}s "
            f"(no scipy baseline)"
        )
    lines.append(
        f"Tiled inference {TILED_GRID}x{TILED_GRID} (tile {TILED_TILE}, "
        f"halo {tiled['halo']}): {tiled['fullchip_s']}s, peak "
        f"{tiled['peak_traced_mib']}MiB ({tiled['peak_over_output']}x output); "
        f"parity at {PARITY_GRID}x{PARITY_GRID}: "
        f"{tiled['tiled_vs_monolithic_max_rel_dev']:.1e} rel"
    )
    write_output("kernel_dispatch", "\n".join(lines))

    # Correctness always; speedups only in full mode (smoke shapes are
    # deliberately too small for the fast backends to win).
    for row in conv_rows:
        assert row["max_rel_dev"] < 1e-9
    if not SMOKE:
        assert any(
            r["speedup"] >= 1.5 for r in conv_rows
            if r["class"] in ("large_map_3x3", "large_kernel_9x9")
        ), "no large-map conv class reached 1.5x"
        if "speedup" in pressure:
            assert pressure["speedup"] >= 2.0, "cached smoother below 2x"
            assert pressure["max_abs_dev_psi"] < 1e-9
