"""Section V-A: accuracy of the pre-trained surrogate.

Paper numbers (20 000 training layouts, 20 epochs, 32 GPU-hours):

* mean relative height error on the test set: 0.6 %
* max per-window average relative error: 1.77 %
* 90 % of windows below 1.3 % error
* extension set (train on two designs, test on the third): 2.7 %

At our scaled training budget the absolute errors are a few x larger, but
the structure must hold: single-digit-percent mean error, max window
error within a small factor of the mean, and an extension error larger
than the in-distribution error yet still single-digit.
"""

from _common import TRAIN_EPOCHS, TRAIN_SAMPLES, bench_grid, write_output
from repro.cmp import CmpSimulator
from repro.layout import make_design_a, make_design_b, make_design_c
from repro.nn import UNet
from repro.surrogate import (
    NUM_FEATURE_CHANNELS,
    TrainConfig,
    build_dataset,
    evaluate_accuracy,
    train_unet,
)


def test_pretrain_accuracy(benchmark):
    rows, cols = bench_grid("A")
    simulator = CmpSimulator()
    a = make_design_a(rows=rows, cols=cols)
    b = make_design_b(rows=rows, cols=cols)
    c = make_design_c(rows=rows, cols=cols)

    dataset = build_dataset([a, b], count=TRAIN_SAMPLES, rows=rows, cols=cols,
                            simulator=simulator, seed=0)
    train_set, test_set = dataset.split(test_fraction=0.2, seed=0)
    unet = UNet(in_channels=NUM_FEATURE_CHANNELS, out_channels=1,
                base_channels=8, depth=2, rng=0)

    def train():
        return train_unet(unet, train_set,
                          TrainConfig(epochs=TRAIN_EPOCHS, batch_size=8))

    history = benchmark.pedantic(train, rounds=1, iterations=1)
    report = evaluate_accuracy(unet, test_set)

    ext_set = build_dataset([c], count=8, rows=rows, cols=cols,
                            simulator=simulator, seed=5,
                            normalizer=dataset.normalizer)
    ext_report = evaluate_accuracy(unet, ext_set)

    text = "\n".join([
        f"Section V-A accuracy — {rows}x{cols} windows, "
        f"{len(train_set)} training layouts, {TRAIN_EPOCHS} epochs",
        f"final training loss:               {history.final_loss:.4f}",
        f"test mean relative error:          {report.mean_relative_error * 100:.2f}%"
        f"   (paper: 0.60%)",
        f"max per-window relative error:     {report.max_window_relative_error * 100:.2f}%"
        f"   (paper: 1.77%)",
        f"windows below 2x the mean error:   "
        f"{report.fraction_below(2 * report.mean_relative_error) * 100:.0f}%",
        f"extension-set mean relative error: {ext_report.mean_relative_error * 100:.2f}%"
        f"   (paper: 2.70%)",
    ])
    write_output("pretrain_accuracy", text)

    assert report.mean_relative_error < 0.05
    assert report.max_window_relative_error < 4 * report.mean_relative_error
    assert ext_report.mean_relative_error < 0.10
