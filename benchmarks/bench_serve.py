"""Resident serve throughput vs cold one-shot CLI invocations.

Measures the ``repro.serve`` subsystem end to end over its TCP
transport:

* served neurfill-pkb fills at 1 / 4 / 16 concurrent clients, with
  micro-batch coalescing on (``max_batch=16``) and off (``max_batch=1``),
  reporting throughput and client-observed p50/p95/p99 latency plus the
  server's micro-batch size histogram;
* the same fill workload across the three worker topologies — thread
  pool, forked process pool (``worker_mode=process``) and the
  fingerprint-sharded fleet (``shards=N``) — so the GIL-escape win is
  measured on the same jobs;
* the same job as sequential *cold* CLI invocations (one fresh
  ``python -m repro fill --model ...`` process per job — each pays
  interpreter start, model load and score calibration).

The surrogate checkpoint is random-weight (saved via ``save_surrogate``,
no training): throughput depends on the compute shape, not on how good
the weights are, and every served/CLI run uses the same checkpoint.

Results go to ``benchmarks/output/serve.txt`` and, machine readable, to
``BENCH_serve.json`` at the repo root.

Environment knobs:

* ``NEURFILL_BENCH_SMOKE=1`` shrinks the grid and the client matrix so
  the whole file runs in CI; the >=2x served-vs-cold-CLI throughput
  assertion only applies in full mode.
* Fill jobs are compute-bound, so this bench is meaningless on a
  single-core box: it asserts ``os.cpu_count() > 1`` up front.  Set
  ``NEURFILL_BENCH_ALLOW_SINGLE_CORE=1`` to record numbers anyway (the
  JSON is annotated and the scaling assertions are skipped).
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

from _common import write_output
from repro.layout import save_layout
from repro.layout.designs import DESIGN_BUILDERS
from repro.nn import UNet
from repro.serve import (
    FillServer,
    ModelRegistry,
    ServeClient,
    ServeConfig,
    ShardRouter,
    rendezvous_shard,
    routing_key,
)
from repro.serve.server import serve_tcp
from repro.surrogate import (
    NUM_FEATURE_CHANNELS,
    HeightNormalizer,
    save_surrogate,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serve.json"
SRC_DIR = REPO_ROOT / "src"

SMOKE = os.environ.get("NEURFILL_BENCH_SMOKE", "0") not in ("0", "")
ALLOW_SINGLE_CORE = os.environ.get(
    "NEURFILL_BENCH_ALLOW_SINGLE_CORE", "0") not in ("0", "")
CPU_COUNT = os.cpu_count() or 1

if SMOKE:
    GRID = 8
    CONCURRENCY = (1, 4)
    JOBS_PER_CLIENT = 1
    CLI_INVOCATIONS = 2
    SHARDS = 2
else:
    GRID = 12
    CONCURRENCY = (1, 4, 16)
    JOBS_PER_CLIENT = 2
    CLI_INVOCATIONS = 16
    SHARDS = max(2, min(4, CPU_COUNT))

WORKERS = 16
MODEL_NAME = "pkb"
BASE_CHANNELS = 4
DEPTH = 2


# ----------------------------------------------------------------------
def _workspace(tmp_root: Path) -> tuple[str, str]:
    """Write the bench layout and a random-weight checkpoint."""
    layout = DESIGN_BUILDERS["A"](rows=GRID, cols=GRID, seed=3)
    layout_path = tmp_root / "serve_bench_layout.json"
    save_layout(layout, str(layout_path))
    unet = UNet(in_channels=NUM_FEATURE_CHANNELS, out_channels=1,
                base_channels=BASE_CHANNELS, depth=DEPTH, rng=0)
    ckpt = save_surrogate(tmp_root / "serve_bench_ckpt", unet,
                          HeightNormalizer(6000.0, 40.0),
                          base_channels=BASE_CHANNELS, depth=DEPTH)
    return str(layout_path), str(ckpt)


def _mode_layouts(tmp_root: Path, count: int) -> list[str]:
    """Distinct layouts (distinct fingerprints) for the sharded bench.

    Keeps generating past ``count`` if rendezvous happens to pin every
    path to one shard — the scaling comparison needs >= 2 shards busy.
    """
    paths: list[str] = []
    covered: set[int] = set()
    for k in range(count + 16):
        if len(paths) >= count and len(covered) >= min(2, SHARDS):
            break
        layout = DESIGN_BUILDERS["A"](rows=GRID, cols=GRID, seed=100 + k)
        path = tmp_root / f"serve_bench_mode_{k}.json"
        save_layout(layout, str(path))
        paths.append(str(path))
        covered.add(rendezvous_shard(
            routing_key({"layout_path": str(path)}), SHARDS))
    return paths


class _TcpServer:
    """An in-process ``serve_tcp`` on an ephemeral port.

    ``worker_mode``/``shards`` pick the topology: a thread-pool
    ``FillServer``, a forked-process pool, or (``shards > 1``) the
    fingerprint-sharded ``ShardRouter`` fleet.
    """

    def __init__(self, ckpt: str, max_batch: int,
                 worker_mode: str = "thread", shards: int = 1,
                 workers: int = WORKERS):
        config = ServeConfig(workers=workers, queue_capacity=64,
                             max_batch=max_batch, flush_ms=2.0,
                             allow_train=False, worker_mode=worker_mode,
                             shards=shards)
        if shards > 1:
            self.server = ShardRouter(serve_config=config,
                                      model_specs=[(MODEL_NAME, ckpt)])
        else:
            registry = ModelRegistry()
            registry.register(MODEL_NAME, ckpt)
            self.server = FillServer(registry=registry, serve_config=config,
                                     model_specs=[(MODEL_NAME, ckpt)])
        self._address = None
        self._ready = threading.Event()

        def on_ready(address):
            self._address = address
            self._ready.set()

        self._thread = threading.Thread(
            target=serve_tcp, args=(self.server,),
            kwargs={"port": 0, "ready": on_ready}, daemon=True)
        self._thread.start()
        assert self._ready.wait(timeout=30), "serve_tcp never became ready"

    @property
    def port(self) -> int:
        return self._address[1]

    def stats(self) -> dict:
        return self.server.stats_snapshot()

    def stop(self) -> None:
        self.server.shutdown(timeout=60.0)
        self._thread.join(timeout=30.0)


def _percentiles(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    out = {}
    for q in (50, 95, 99):
        idx = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
        out[f"p{q}_s"] = round(ordered[idx], 3)
    return out


def _run_load(port: int, layout_path: str | list[str], clients: int,
              jobs_per_client: int, op: str = "fill") -> dict:
    """``clients`` connections, each submitting jobs back to back.

    ``layout_path`` may be a list; client ``i`` then works on layout
    ``i % len(layouts)`` so the sharded fleet sees distinct fingerprints
    (a single layout would pin every job to one shard by design).
    """
    layouts = [layout_path] if isinstance(layout_path, str) else layout_path
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_loop(index: int):
        my_layout = layouts[index % len(layouts)]
        connection = ServeClient.connect("127.0.0.1", port, timeout=30.0)
        try:
            barrier.wait(timeout=60)
            for _ in range(jobs_per_client):
                t0 = time.perf_counter()
                if op == "simulate":
                    connection.simulate(layout_path=my_layout,
                                        timeout=600.0)
                else:
                    connection.fill(layout_path=my_layout,
                                    method="neurfill-pkb", model=MODEL_NAME,
                                    score=False, timeout=600.0)
                with lock:
                    latencies.append(time.perf_counter() - t0)
        except BaseException as exc:
            with lock:
                errors.append(exc)
        finally:
            connection.close(wait_proc=False)

    threads = [threading.Thread(target=client_loop, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    barrier.wait(timeout=60)
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t0
    if errors:
        raise errors[0]
    jobs = clients * jobs_per_client
    return {
        "clients": clients,
        "jobs": jobs,
        "wall_s": round(wall_s, 3),
        "throughput_jobs_per_s": round(jobs / wall_s, 3),
        **_percentiles(latencies),
    }


def _bench_served(ckpt: str, layout_path: str, max_batch: int) -> dict:
    tcp = _TcpServer(ckpt, max_batch=max_batch)
    try:
        # one warm-up job pays binding + conv planning outside the clock
        warm = ServeClient.connect("127.0.0.1", tcp.port, timeout=30.0)
        warm.fill(layout_path=layout_path, method="neurfill-pkb",
                  model=MODEL_NAME, score=False, timeout=600.0)
        warm.close(wait_proc=False)
        runs = [_run_load(tcp.port, layout_path, c, JOBS_PER_CLIENT)
                for c in CONCURRENCY]
        stats = tcp.stats()
    finally:
        tcp.stop()
    return {
        "max_batch": max_batch,
        "runs": runs,
        "batch_histogram": stats["batch_histogram"],
        "stage_latency_ms": stats["latency"],
    }


def _bench_mode(ckpt: str, layout_paths: list[str],
                worker_mode: str, shards: int) -> dict:
    """One topology over the same layouts/client matrix (``max_batch=1``
    everywhere so coalescing never confounds the comparison)."""
    workers = WORKERS if shards == 1 else max(1, WORKERS // shards)
    tcp = _TcpServer(ckpt, max_batch=1, worker_mode=worker_mode,
                     shards=shards, workers=workers)
    try:
        # warm every layout once: binding + conv planning off the clock
        warm = ServeClient.connect("127.0.0.1", tcp.port, timeout=30.0)
        for path in layout_paths:
            warm.fill(layout_path=path, method="neurfill-pkb",
                      model=MODEL_NAME, score=False, timeout=600.0)
        warm.close(wait_proc=False)
        runs = [_run_load(tcp.port, layout_paths, c, JOBS_PER_CLIENT)
                for c in CONCURRENCY]
        stats = tcp.stats()
    finally:
        tcp.stop()
    out = {
        "worker_mode": worker_mode,
        "shards": shards,
        "workers_per_shard": workers,
        "runs": runs,
    }
    if shards > 1:
        out["per_shard_completed"] = [
            (s.get("counters") or {}).get("completed", 0)
            for s in stats.get("per_shard", [])
        ]
    return out


def _bench_simulate(ckpt: str, layout_path: str) -> dict:
    """The amortisation-only comparison: resident simulate jobs vs cold
    ``repro simulate`` processes (no surrogate compute on either side)."""
    tcp = _TcpServer(ckpt, max_batch=1)
    try:
        warm = ServeClient.connect("127.0.0.1", tcp.port, timeout=30.0)
        warm.simulate(layout_path=layout_path, timeout=600.0)
        warm.close(wait_proc=False)
        served = _run_load(tcp.port, layout_path, CONCURRENCY[-1],
                           JOBS_PER_CLIENT, op="simulate")
    finally:
        tcp.stop()
    cold = _bench_cold_cli(None, layout_path, op="simulate")
    return {
        "served": served,
        "cold_cli": cold,
        "speedup": round(served["throughput_jobs_per_s"]
                         / cold["throughput_jobs_per_s"], 2),
    }


def _bench_cold_cli(ckpt: str | None, layout_path: str,
                    op: str = "fill") -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    if op == "simulate":
        cmd = [sys.executable, "-m", "repro", "simulate", layout_path]
    else:
        cmd = [sys.executable, "-m", "repro", "fill", layout_path,
               "--method", "neurfill-pkb", "--model", ckpt]
    durations = []
    t0 = time.perf_counter()
    for _ in range(CLI_INVOCATIONS):
        t1 = time.perf_counter()
        subprocess.run(cmd, env=env, check=True,
                       stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        durations.append(time.perf_counter() - t1)
    wall_s = time.perf_counter() - t0
    return {
        "invocations": CLI_INVOCATIONS,
        "wall_s": round(wall_s, 3),
        "throughput_jobs_per_s": round(CLI_INVOCATIONS / wall_s, 3),
        "per_invocation_s": round(wall_s / CLI_INVOCATIONS, 3),
        **_percentiles(durations),
    }


# ----------------------------------------------------------------------
def test_serve_throughput(benchmark, tmp_path):
    # Fill jobs are compute-bound: on one core every topology serialises
    # and the scaling numbers below would be noise presented as data.
    assert CPU_COUNT > 1 or ALLOW_SINGLE_CORE, (
        "serve bench needs a multi-core host (set "
        "NEURFILL_BENCH_ALLOW_SINGLE_CORE=1 to record annotated "
        "single-core numbers anyway)"
    )
    import multiprocessing
    has_fork = "fork" in multiprocessing.get_all_start_methods()

    layout_path, ckpt = _workspace(tmp_path)

    batched = benchmark.pedantic(
        lambda: _bench_served(ckpt, layout_path, max_batch=16),
        rounds=1, iterations=1)
    unbatched = _bench_served(ckpt, layout_path, max_batch=1)
    cold = _bench_cold_cli(ckpt, layout_path)
    simulate = _bench_simulate(ckpt, layout_path)

    modes = None
    if has_fork:
        layouts = _mode_layouts(tmp_path, max(4, 2 * SHARDS))
        modes = {
            "thread": _bench_mode(ckpt, layouts, "thread", shards=1),
            "process": _bench_mode(ckpt, layouts, "process", shards=1),
            "sharded": _bench_mode(ckpt, layouts, "thread", shards=SHARDS),
        }

    report = {
        "smoke": SMOKE,
        "cpu_count": CPU_COUNT,
        "numpy": np.__version__,
        "grid": GRID,
        "workers": WORKERS,
        "shards": SHARDS,
        "jobs_per_client": JOBS_PER_CLIENT,
        "served_batched": batched,
        "served_unbatched": unbatched,
        "worker_modes": modes,
        "cold_cli": cold,
        "simulate_jobs": simulate,
    }
    top = batched["runs"][-1]
    report["peak_served_vs_cold_cli_speedup"] = round(
        top["throughput_jobs_per_s"] / cold["throughput_jobs_per_s"], 2)
    if modes is not None:
        peak_thread = modes["thread"]["runs"][-1]["throughput_jobs_per_s"]
        report["peak_process_vs_thread_speedup"] = round(
            modes["process"]["runs"][-1]["throughput_jobs_per_s"]
            / peak_thread, 2)
        report["peak_sharded_vs_thread_speedup"] = round(
            modes["sharded"]["runs"][-1]["throughput_jobs_per_s"]
            / peak_thread, 2)
    if CPU_COUNT == 1:
        report["note"] = (
            "single-core host: fill jobs are compute-bound so no serving "
            "topology (threads, forked processes, or shards) can "
            "parallelise them here; mode speedups reflect IPC overhead "
            "only, not the multi-core scaling the process/sharded paths "
            "exist for.  The amortisation win is measured by "
            "simulate_jobs (resident vs per-process cold start)."
        )
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [f"Serve bench ({'smoke' if SMOKE else 'full'} mode, "
             f"{GRID}x{GRID} grid, {WORKERS} workers, "
             f"{os.cpu_count()} cores):"]
    for label, block in (("batched", batched), ("unbatched", unbatched)):
        for run in block["runs"]:
            lines.append(
                f"  served/{label:>9} x{run['clients']:>2} clients: "
                f"{run['throughput_jobs_per_s']:6.2f} jobs/s  "
                f"p50 {run['p50_s']:.2f}s p95 {run['p95_s']:.2f}s "
                f"p99 {run['p99_s']:.2f}s"
            )
        lines.append(f"  served/{label:>9} batch histogram: "
                     f"{block['batch_histogram']}")
    if modes is not None:
        for label, block in modes.items():
            tag = (f"{label} ({block['shards']}x"
                   f"{block['workers_per_shard']}w)")
            for run in block["runs"]:
                lines.append(
                    f"  mode/{tag:>14} x{run['clients']:>2} clients: "
                    f"{run['throughput_jobs_per_s']:6.2f} jobs/s  "
                    f"p50 {run['p50_s']:.2f}s p95 {run['p95_s']:.2f}s"
                )
        lines.append(
            f"  peak sharded vs thread: "
            f"{report['peak_sharded_vs_thread_speedup']:.2f}x, "
            f"process vs thread: "
            f"{report['peak_process_vs_thread_speedup']:.2f}x"
        )
    lines.append(
        f"  cold CLI x{cold['invocations']} sequential: "
        f"{cold['throughput_jobs_per_s']:6.2f} jobs/s "
        f"({cold['per_invocation_s']:.2f}s per invocation)"
    )
    lines.append(
        f"  peak served vs cold CLI (fill): "
        f"{report['peak_served_vs_cold_cli_speedup']:.2f}x"
    )
    lines.append(
        f"  simulate jobs x{CONCURRENCY[-1]} clients: "
        f"{simulate['served']['throughput_jobs_per_s']:6.2f} jobs/s served "
        f"vs {simulate['cold_cli']['throughput_jobs_per_s']:6.2f} jobs/s "
        f"cold CLI ({simulate['speedup']:.1f}x)"
    )
    if "note" in report:
        lines.append(f"  note: {report['note']}")
    write_output("serve", "\n".join(lines))

    # Sanity always; throughput claims only in full mode (smoke shapes
    # are too small for amortisation to dominate).
    for block in (batched, unbatched):
        for run in block["runs"]:
            assert run["throughput_jobs_per_s"] > 0
    assert batched["batch_histogram"], "no micro-batches were flushed"
    if modes is not None:
        for block in modes.values():
            for run in block["runs"]:
                assert run["throughput_jobs_per_s"] > 0
        spread = [n for n in modes["sharded"]["per_shard_completed"] if n]
        assert len(spread) >= 2, (
            "distinct-fingerprint jobs did not spread across shards"
        )
    if not SMOKE:
        assert simulate["speedup"] >= 2.0, (
            "resident simulate jobs did not reach 2x over cold CLI"
        )
        if CPU_COUNT >= 2:
            # fill jobs are compute-bound: concurrent serving can only
            # beat sequential cold processes when cores exist to share
            assert report["peak_served_vs_cold_cli_speedup"] >= 2.0, (
                "resident serve did not reach 2x over cold CLI invocations"
            )
        if modes is not None and CPU_COUNT >= 4:
            # The headline scaling claims need real cores to mean
            # anything; on fewer cores they are recorded but not policed.
            assert report["peak_sharded_vs_thread_speedup"] >= 3.0, (
                "sharded fleet did not reach 3x over the thread pool at "
                f"{CONCURRENCY[-1]} clients on {CPU_COUNT} cores"
            )
            thread_p95 = modes["thread"]["runs"][0]["p95_s"]
            for label in ("process", "sharded"):
                mode_p95 = modes[label]["runs"][0]["p95_s"]
                assert mode_p95 <= thread_p95 * 1.25 + 0.05, (
                    f"{label} p95 regressed at 1 client: "
                    f"{mode_p95}s vs thread {thread_p95}s"
                )
