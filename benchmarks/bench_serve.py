"""Resident serve throughput vs cold one-shot CLI invocations.

Measures the ``repro.serve`` subsystem end to end over its TCP
transport:

* served neurfill-pkb fills at 1 / 4 / 16 concurrent clients, with
  micro-batch coalescing on (``max_batch=16``) and off (``max_batch=1``),
  reporting throughput and client-observed p50/p95/p99 latency plus the
  server's micro-batch size histogram;
* the same job as sequential *cold* CLI invocations (one fresh
  ``python -m repro fill --model ...`` process per job — each pays
  interpreter start, model load and score calibration).

The surrogate checkpoint is random-weight (saved via ``save_surrogate``,
no training): throughput depends on the compute shape, not on how good
the weights are, and every served/CLI run uses the same checkpoint.

Results go to ``benchmarks/output/serve.txt`` and, machine readable, to
``BENCH_serve.json`` at the repo root.

Environment knobs:

* ``NEURFILL_BENCH_SMOKE=1`` shrinks the grid and the client matrix so
  the whole file runs in CI; the >=2x served-vs-cold-CLI throughput
  assertion only applies in full mode.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

from _common import write_output
from repro.layout import save_layout
from repro.layout.designs import DESIGN_BUILDERS
from repro.nn import UNet
from repro.serve import FillServer, ModelRegistry, ServeConfig, ServeClient
from repro.serve.server import serve_tcp
from repro.surrogate import (
    NUM_FEATURE_CHANNELS,
    HeightNormalizer,
    save_surrogate,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serve.json"
SRC_DIR = REPO_ROOT / "src"

SMOKE = os.environ.get("NEURFILL_BENCH_SMOKE", "0") not in ("0", "")

if SMOKE:
    GRID = 8
    CONCURRENCY = (1, 4)
    JOBS_PER_CLIENT = 1
    CLI_INVOCATIONS = 2
else:
    GRID = 12
    CONCURRENCY = (1, 4, 16)
    JOBS_PER_CLIENT = 2
    CLI_INVOCATIONS = 16

WORKERS = 16
MODEL_NAME = "pkb"
BASE_CHANNELS = 4
DEPTH = 2


# ----------------------------------------------------------------------
def _workspace(tmp_root: Path) -> tuple[str, str]:
    """Write the bench layout and a random-weight checkpoint."""
    layout = DESIGN_BUILDERS["A"](rows=GRID, cols=GRID, seed=3)
    layout_path = tmp_root / "serve_bench_layout.json"
    save_layout(layout, str(layout_path))
    unet = UNet(in_channels=NUM_FEATURE_CHANNELS, out_channels=1,
                base_channels=BASE_CHANNELS, depth=DEPTH, rng=0)
    ckpt = save_surrogate(tmp_root / "serve_bench_ckpt", unet,
                          HeightNormalizer(6000.0, 40.0),
                          base_channels=BASE_CHANNELS, depth=DEPTH)
    return str(layout_path), str(ckpt)


class _TcpServer:
    """An in-process ``serve_tcp`` on an ephemeral port."""

    def __init__(self, ckpt: str, max_batch: int):
        registry = ModelRegistry()
        registry.register(MODEL_NAME, ckpt)
        self.server = FillServer(
            registry=registry,
            serve_config=ServeConfig(workers=WORKERS, queue_capacity=64,
                                     max_batch=max_batch, flush_ms=2.0,
                                     allow_train=False),
        )
        self._address = None
        self._ready = threading.Event()

        def on_ready(address):
            self._address = address
            self._ready.set()

        self._thread = threading.Thread(
            target=serve_tcp, args=(self.server,),
            kwargs={"port": 0, "ready": on_ready}, daemon=True)
        self._thread.start()
        assert self._ready.wait(timeout=30), "serve_tcp never became ready"

    @property
    def port(self) -> int:
        return self._address[1]

    def stats(self) -> dict:
        return self.server.stats_snapshot()

    def stop(self) -> None:
        self.server.shutdown(timeout=60.0)
        self._thread.join(timeout=30.0)


def _percentiles(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    out = {}
    for q in (50, 95, 99):
        idx = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
        out[f"p{q}_s"] = round(ordered[idx], 3)
    return out


def _run_load(port: int, layout_path: str, clients: int,
              jobs_per_client: int, op: str = "fill") -> dict:
    """``clients`` connections, each submitting jobs back to back."""
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_loop():
        connection = ServeClient.connect("127.0.0.1", port, timeout=30.0)
        try:
            barrier.wait(timeout=60)
            for _ in range(jobs_per_client):
                t0 = time.perf_counter()
                if op == "simulate":
                    connection.simulate(layout_path=layout_path,
                                        timeout=600.0)
                else:
                    connection.fill(layout_path=layout_path,
                                    method="neurfill-pkb", model=MODEL_NAME,
                                    score=False, timeout=600.0)
                with lock:
                    latencies.append(time.perf_counter() - t0)
        except BaseException as exc:
            with lock:
                errors.append(exc)
        finally:
            connection.close(wait_proc=False)

    threads = [threading.Thread(target=client_loop) for _ in range(clients)]
    for t in threads:
        t.start()
    barrier.wait(timeout=60)
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t0
    if errors:
        raise errors[0]
    jobs = clients * jobs_per_client
    return {
        "clients": clients,
        "jobs": jobs,
        "wall_s": round(wall_s, 3),
        "throughput_jobs_per_s": round(jobs / wall_s, 3),
        **_percentiles(latencies),
    }


def _bench_served(ckpt: str, layout_path: str, max_batch: int) -> dict:
    tcp = _TcpServer(ckpt, max_batch=max_batch)
    try:
        # one warm-up job pays binding + conv planning outside the clock
        warm = ServeClient.connect("127.0.0.1", tcp.port, timeout=30.0)
        warm.fill(layout_path=layout_path, method="neurfill-pkb",
                  model=MODEL_NAME, score=False, timeout=600.0)
        warm.close(wait_proc=False)
        runs = [_run_load(tcp.port, layout_path, c, JOBS_PER_CLIENT)
                for c in CONCURRENCY]
        stats = tcp.stats()
    finally:
        tcp.stop()
    return {
        "max_batch": max_batch,
        "runs": runs,
        "batch_histogram": stats["batch_histogram"],
        "stage_latency_ms": stats["latency"],
    }


def _bench_simulate(ckpt: str, layout_path: str) -> dict:
    """The amortisation-only comparison: resident simulate jobs vs cold
    ``repro simulate`` processes (no surrogate compute on either side)."""
    tcp = _TcpServer(ckpt, max_batch=1)
    try:
        warm = ServeClient.connect("127.0.0.1", tcp.port, timeout=30.0)
        warm.simulate(layout_path=layout_path, timeout=600.0)
        warm.close(wait_proc=False)
        served = _run_load(tcp.port, layout_path, CONCURRENCY[-1],
                           JOBS_PER_CLIENT, op="simulate")
    finally:
        tcp.stop()
    cold = _bench_cold_cli(None, layout_path, op="simulate")
    return {
        "served": served,
        "cold_cli": cold,
        "speedup": round(served["throughput_jobs_per_s"]
                         / cold["throughput_jobs_per_s"], 2),
    }


def _bench_cold_cli(ckpt: str | None, layout_path: str,
                    op: str = "fill") -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    if op == "simulate":
        cmd = [sys.executable, "-m", "repro", "simulate", layout_path]
    else:
        cmd = [sys.executable, "-m", "repro", "fill", layout_path,
               "--method", "neurfill-pkb", "--model", ckpt]
    durations = []
    t0 = time.perf_counter()
    for _ in range(CLI_INVOCATIONS):
        t1 = time.perf_counter()
        subprocess.run(cmd, env=env, check=True,
                       stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        durations.append(time.perf_counter() - t1)
    wall_s = time.perf_counter() - t0
    return {
        "invocations": CLI_INVOCATIONS,
        "wall_s": round(wall_s, 3),
        "throughput_jobs_per_s": round(CLI_INVOCATIONS / wall_s, 3),
        "per_invocation_s": round(wall_s / CLI_INVOCATIONS, 3),
        **_percentiles(durations),
    }


# ----------------------------------------------------------------------
def test_serve_throughput(benchmark, tmp_path):
    layout_path, ckpt = _workspace(tmp_path)

    batched = benchmark.pedantic(
        lambda: _bench_served(ckpt, layout_path, max_batch=16),
        rounds=1, iterations=1)
    unbatched = _bench_served(ckpt, layout_path, max_batch=1)
    cold = _bench_cold_cli(ckpt, layout_path)
    simulate = _bench_simulate(ckpt, layout_path)

    report = {
        "smoke": SMOKE,
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "grid": GRID,
        "workers": WORKERS,
        "jobs_per_client": JOBS_PER_CLIENT,
        "served_batched": batched,
        "served_unbatched": unbatched,
        "cold_cli": cold,
        "simulate_jobs": simulate,
    }
    top = batched["runs"][-1]
    report["peak_served_vs_cold_cli_speedup"] = round(
        top["throughput_jobs_per_s"] / cold["throughput_jobs_per_s"], 2)
    if os.cpu_count() == 1:
        report["note"] = (
            "single-core host: fill jobs are compute-bound so concurrent "
            "serving cannot parallelise them; the amortisation win is "
            "measured by simulate_jobs (resident vs per-process cold start)"
        )
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [f"Serve bench ({'smoke' if SMOKE else 'full'} mode, "
             f"{GRID}x{GRID} grid, {WORKERS} workers, "
             f"{os.cpu_count()} cores):"]
    for label, block in (("batched", batched), ("unbatched", unbatched)):
        for run in block["runs"]:
            lines.append(
                f"  served/{label:>9} x{run['clients']:>2} clients: "
                f"{run['throughput_jobs_per_s']:6.2f} jobs/s  "
                f"p50 {run['p50_s']:.2f}s p95 {run['p95_s']:.2f}s "
                f"p99 {run['p99_s']:.2f}s"
            )
        lines.append(f"  served/{label:>9} batch histogram: "
                     f"{block['batch_histogram']}")
    lines.append(
        f"  cold CLI x{cold['invocations']} sequential: "
        f"{cold['throughput_jobs_per_s']:6.2f} jobs/s "
        f"({cold['per_invocation_s']:.2f}s per invocation)"
    )
    lines.append(
        f"  peak served vs cold CLI (fill): "
        f"{report['peak_served_vs_cold_cli_speedup']:.2f}x"
    )
    lines.append(
        f"  simulate jobs x{CONCURRENCY[-1]} clients: "
        f"{simulate['served']['throughput_jobs_per_s']:6.2f} jobs/s served "
        f"vs {simulate['cold_cli']['throughput_jobs_per_s']:6.2f} jobs/s "
        f"cold CLI ({simulate['speedup']:.1f}x)"
    )
    if "note" in report:
        lines.append(f"  note: {report['note']}")
    write_output("serve", "\n".join(lines))

    # Sanity always; throughput claims only in full mode (smoke shapes
    # are too small for amortisation to dominate).
    for block in (batched, unbatched):
        for run in block["runs"]:
            assert run["throughput_jobs_per_s"] > 0
    assert batched["batch_histogram"], "no micro-batches were flushed"
    if not SMOKE:
        assert simulate["speedup"] >= 2.0, (
            "resident simulate jobs did not reach 2x over cold CLI"
        )
        if os.cpu_count() and os.cpu_count() >= 2:
            # fill jobs are compute-bound: concurrent serving can only
            # beat sequential cold processes when cores exist to share
            assert report["peak_served_vs_cold_cli_speedup"] >= 2.0, (
                "resident serve did not reach 2x over cold CLI invocations"
            )
