"""Table I: objective-evaluation and gradient-calculation runtimes.

Paper numbers (100x100 windows, K80 GPU vs 64-core Xeon):

=====================  ==========  =======  ========  ========
Operation              Sim (1c)    Sim 64c  CMP NN    Speedup
=====================  ==========  =======  ========  ========
Objective Evaluation   4.7 s       4.7 s    0.025 s   188x
Gradient Calculation   34 100 s    545 s    0.067 s   8 134x
=====================  ==========  =======  ========  ========

Reproduction notes (see EXPERIMENTS.md):

* Both sides run in numpy on ONE CPU core, so the headline speedup here
  is the like-for-like 1-core ratio; the ideal-scaling 64-core projection
  of the simulator is reported alongside (the paper measured a real
  64-core box against a GPU of equal FLOPS).
* The paper's 188x *objective* speedup reflects a heavyweight C++
  multiphysics simulator vs light GPU inference; our simulator is itself
  a lean numpy kernel of roughly UNet-forward cost, so the objective
  ratio lands near 1.  The *gradient* ratio — the paper's actual
  bottleneck claim — reproduces strongly: finite differences cost
  ``n + 1`` simulations, backprop costs about one forward pass, so the
  speedup grows linearly with the window count.
* The FD gradient cost is measured on a variable subset and scaled.
"""

import time

import numpy as np

from _common import write_output
from repro.baselines import SimulatorQuality
from repro.cmp import count_simulator_calls, forward_difference_gradient
from repro.core import FillProblem, ScoreCoefficients
from repro.evaluation import format_table1
from repro.layout import make_design_a
from repro.surrogate import CmpNeuralNetwork

#: Table I grid (larger than the training grid; the UNet is fully
#: convolutional, so the cached weights re-bind to any layout size).
TABLE1_GRID = 40

#: Number of fill variables actually probed when measuring the FD pass.
FD_SAMPLE = 16


def _measure(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_table1_runtime(benchmark, setup_a):
    layout = make_design_a(rows=TABLE1_GRID, cols=TABLE1_GRID)
    simulator = setup_a.simulator
    coeffs = ScoreCoefficients.calibrated(layout, simulator)
    problem = FillProblem(layout, coeffs)
    network = CmpNeuralNetwork(layout, setup_a.network.unet,
                               setup_a.network.normalizer)
    n = problem.num_variables
    fill = 0.4 * problem.upper
    weights = coeffs.planarity_weights()
    sim_quality = SimulatorQuality(problem, simulator)

    # -- full-chip simulator -------------------------------------------------
    sim_eval_s = _measure(lambda: sim_quality.quality(fill))

    indices = np.linspace(0, n - 1, FD_SAMPLE).astype(int)
    t0 = time.perf_counter()
    forward_difference_gradient(
        sim_quality.quality, fill, eps=500.0,
        upper=problem.upper, indices=indices,
    )
    subset_s = time.perf_counter() - t0
    sim_grad_s = subset_s / (FD_SAMPLE + 1) * count_simulator_calls(n, "forward")

    # -- CMP neural network ----------------------------------------------------
    nn_eval_s = _measure(lambda: network.evaluate(fill, weights, want_grad=False))
    benchmark(lambda: network.evaluate(fill, weights, want_grad=True))
    nn_grad_s = _measure(lambda: network.evaluate(fill, weights, want_grad=True))

    obj_speedup_1c = sim_eval_s / nn_eval_s
    grad_speedup_1c = sim_grad_s / nn_grad_s
    grad_speedup_64c = sim_grad_s / 64.0 / nn_grad_s
    table = format_table1(sim_eval_s, sim_grad_s, nn_eval_s, nn_grad_s)
    header = (
        f"Table I reproduction — design A at {TABLE1_GRID}x{TABLE1_GRID} "
        f"windows, {n} fill variables\n"
        f"(FD cost scaled from {FD_SAMPLE} probed variables; both sides on "
        f"one CPU core)\n"
    )
    footer = (
        f"\nlike-for-like 1-core speedups: objective {obj_speedup_1c:.1f}x, "
        f"gradient {grad_speedup_1c:.0f}x (paper: 188x / 8134x vs a 64-core "
        f"simulator; our gradient speedup vs the 64c projection is "
        f"{grad_speedup_64c:.1f}x and grows linearly with window count)"
    )
    write_output("table1_runtime", header + table + footer)

    # Shape assertions: the gradient bottleneck and its cure.
    assert sim_grad_s > 100 * sim_eval_s      # FD pass ~ n simulations
    assert grad_speedup_1c > 50               # backprop >> finite differences
    assert grad_speedup_1c > 10 * obj_speedup_1c


def test_nn_backward_cost_vs_forward(benchmark, setup_a):
    """Backward propagation costs the same order as one forward pass —
    the observation that makes gradient-based filling cheap."""
    s = setup_a
    fill = 0.4 * s.problem.upper
    weights = s.coefficients.planarity_weights()
    benchmark(lambda: s.network.evaluate(fill, weights, want_grad=True))
    fwd = _measure(lambda: s.network.evaluate(fill, weights, want_grad=False))
    both = _measure(lambda: s.network.evaluate(fill, weights, want_grad=True))
    assert both < 10 * fwd
