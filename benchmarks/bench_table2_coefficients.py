"""Table II: score-function coefficients of the three benchmark designs.

Prints the paper's literal coefficients and the recalibrated coefficients
used for our scaled synthetic designs (see
:meth:`repro.core.ScoreCoefficients.calibrated` for the derivation).
"""

from _common import write_output
from repro.core import ScoreCoefficients, paper_table2
from repro.evaluation import format_table2


def test_table2_paper_and_calibrated(benchmark, setup_a, setup_b, setup_c):
    paper = {key: paper_table2(key) for key in "ABC"}
    paper_text = format_table2(paper)

    def calibrate_all():
        return {
            f"{s.key}*": ScoreCoefficients.calibrated(
                s.layout, s.simulator, beta_runtime=60.0
            )
            for s in (setup_a, setup_b, setup_c)
        }

    calibrated = benchmark(calibrate_all)
    calib_text = format_table2(calibrated)
    write_output(
        "table2_coefficients",
        "Table II (paper, literal):\n" + paper_text
        + "\n\nTable II (recalibrated for the scaled synthetic designs, "
        "beta_t scaled to 60 s):\n" + calib_text,
    )

    # Structural checks: alphas are the paper's; betas positive; the
    # relative ordering beta_line >> beta_outlier holds as in the paper.
    for c in calibrated.values():
        assert c.alpha_sigma == 0.2 and c.alpha_overlay == 0.15
        assert c.beta_line > c.beta_outlier
        assert abs(c.overall_alpha_total - 1.0) < 1e-12
