"""Table III: filling quality comparison on designs A, B and C.

Runs Lin [10], Tao [11], Cai [12], NeurFill (PKB) and NeurFill (MM) on
the scaled synthetic designs and scores every solution with the real
full-chip simulator.  Expected shape (paper Table III):

* model-based methods (Cai, NeurFill) beat rule-based (Lin, Tao) on
  filling quality and post-CMP dH;
* NeurFill (PKB) reaches Cai-level quality at a small fraction of the
  runtime (paper: 58x) and wins the overall score;
* NeurFill (MM) reaches the highest (or tied-highest) quality at the
  price of the longest NeurFill runtime.
"""

import pytest

from _common import write_output
from repro.baselines import cai_fill, lin_fill, tao_fill
from repro.core import NeurFill
from repro.evaluation import format_table3, run_comparison
from repro.optimize import SqpOptimizer


def _run_design(setup):
    neurfill = NeurFill(
        setup.problem, setup.network,
        optimizer=SqpOptimizer(max_iter=80, tol=1e-9),
        simulator=setup.simulator,
    )
    methods = {
        "lin": lambda p: lin_fill(p),
        "tao": lambda p: tao_fill(p),
        "cai": lambda p: cai_fill(p, simulator=setup.simulator,
                                  max_sqp_iterations=3),
        "neurfill-pkb": lambda p: neurfill.run_pkb(),
        "neurfill-mm": lambda p: neurfill.run_multimodal(
            max_evaluations=500, top_k=3),
    }
    return run_comparison(setup.problem, methods, setup.simulator)


@pytest.mark.parametrize("design", ["A", "B", "C"])
def test_table3_design(benchmark, design, setup_a, setup_b, setup_c):
    setup = {"A": setup_a, "B": setup_b, "C": setup_c}[design]
    rows = benchmark.pedantic(_run_design, args=(setup,), rounds=1, iterations=1)
    scores = {r.score.method: r.score for r in rows}
    grid = setup.layout.grid
    write_output(
        f"table3_design_{design}",
        format_table3(
            [r.score for r in rows],
            title=(f"Table III — design {design} "
                   f"({grid.rows}x{grid.cols} windows, surrogate rel. err "
                   f"{setup.surrogate_rel_error * 100:.2f}%)"),
        ),
    )

    # Shape assertions (paper Table III).
    assert scores["neurfill-pkb"].quality > scores["no-fill"].quality
    assert scores["neurfill-pkb"].quality > scores["lin"].quality
    # NeurFill (PKB) is dramatically faster than the numerical-gradient
    # model-based baseline.
    assert scores["neurfill-pkb"].runtime_s < scores["cai"].runtime_s / 5
    # Model-based methods reach lower post-CMP height range than Lin.
    assert min(scores["cai"].delta_h, scores["neurfill-pkb"].delta_h,
               scores["neurfill-mm"].delta_h) < scores["no-fill"].delta_h
