"""Benchmark fixtures: one cached design setup shared across files."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import design_setup  # noqa: E402


@pytest.fixture(scope="session")
def setup_a():
    return design_setup("A")


@pytest.fixture(scope="session")
def setup_b():
    return design_setup("B")


@pytest.fixture(scope="session")
def setup_c():
    return design_setup("C")
