"""Full-chip CMP simulator study: the four-step flow of the paper's Fig. 2.

Demonstrates the simulator substrate on its own:

* a density step pattern polishing over time (envelope -> pressure ->
  DSH rates -> Preston removal);
* the post-CMP height / dishing / erosion maps of a realistic design;
* how polish time and pad parameters shape the final topography.

Run:  python examples/cmp_polish_study.py
"""

import numpy as np

from repro.cmp import CmpSimulator, ProcessParams, solve_pressure
from repro.layout import LayerWindows, Layout, WindowGrid, make_design_c


def density_step_layout(rows: int = 16, cols: int = 16) -> Layout:
    """Half sparse (20%), half dense (60%) — the classic test pattern."""
    grid = WindowGrid(rows, cols)
    density = np.full((rows, cols), 0.2)
    density[:, cols // 2:] = 0.6
    width = np.full((rows, cols), 0.2)
    layer = LayerWindows(
        "M1", density, np.zeros_like(density),
        2.0 * density * grid.window_area / width, width, trench_depth=3000.0,
    )
    return Layout("step", grid, [layer])


def main() -> None:
    print("== Polish-time sweep on a density step pattern")
    layout = density_step_layout()
    print(f"{'time(s)':>8} {'mean H (A)':>12} {'step left':>10} {'step right':>11} "
          f"{'dH (A)':>8}")
    for polish_time in (5, 15, 30, 60, 90):
        params = ProcessParams(polish_time_s=float(polish_time))
        result = CmpSimulator(params).simulate_layout(layout)
        h = result.height[0]
        step = result.step_height[0]
        cols = h.shape[1]
        print(f"{polish_time:>8} {h.mean():>12.1f} "
              f"{step[:, : cols // 2].mean():>10.1f} "
              f"{step[:, cols // 2:].mean():>11.1f} "
              f"{h.max() - h.min():>8.1f}")

    print("\n== Pressure redistribution over a bump (contact mechanics)")
    envelope = np.zeros((9, 9))
    envelope[4, 4] = 2000.0
    pressure = solve_pressure(envelope, 100.0, ProcessParams())
    print(f"nominal pressure: {ProcessParams().pressure_psi:.2f} psi")
    print(f"on the bump:      {pressure[4, 4]:.2f} psi")
    print(f"far field:        {pressure[0, 0]:.2f} psi")
    print(f"load balance:     mean = {pressure.mean():.4f} psi")

    print("\n== Full design C (RISC-V-like) post-CMP maps")
    design = make_design_c(rows=32, cols=32)
    result = CmpSimulator().simulate_layout(design)
    for name, arr in [("height", result.height), ("dishing", result.dishing),
                      ("erosion", result.erosion)]:
        print(f"{name:>8}: mean={arr.mean():9.1f} A  std={arr.std():7.1f} A  "
              f"range={arr.max() - arr.min():8.1f} A")
    per_layer_dh = [result.height[l].max() - result.height[l].min()
                    for l in range(design.num_layers)]
    print(f"per-layer dH: {[f'{v:.0f} A' for v in per_layer_dh]}")
    print("(dense SRAM macros finish taller than the sparse periphery —")
    print(" the non-uniformity dummy filling exists to fix)")


if __name__ == "__main__":
    main()
