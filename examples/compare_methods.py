"""Table III style comparison: rule- and model-based fillers on one design.

Runs Lin [10] (rule LP), Tao [11] (rule SQP), Cai [12] (model-based with
numerical gradients through the real simulator) and NeurFill (PKB and MM)
on a scaled benchmark design, then scores every result with the full-chip
CMP simulator.

Run:  python examples/compare_methods.py [A|B|C] [scale]
e.g.  python examples/compare_methods.py A 0.3
"""

import sys

from repro.baselines import cai_fill, lin_fill, tao_fill
from repro.cmp import CmpSimulator
from repro.core import FillProblem, NeurFill, ScoreCoefficients
from repro.evaluation import format_table3, run_comparison
from repro.layout import make_design
from repro.optimize import SqpOptimizer
from repro.surrogate import TrainConfig, pretrain_surrogate


def main(design_key: str = "A", scale: float = 0.3) -> None:
    simulator = CmpSimulator()
    layout = make_design(design_key, scale=scale)
    rows, cols = layout.grid.shape
    print(f"design {design_key}: {rows}x{cols} windows x {layout.num_layers} layers")

    # Betas recalibrated for the scaled design; runtime beta scaled from
    # the paper's 20 min to keep the runtime criterion discriminative.
    coefficients = ScoreCoefficients.calibrated(layout, simulator,
                                                beta_runtime=60.0)
    problem = FillProblem(layout, coefficients)

    print("pre-training the CMP neural network ...")
    network, _, report = pretrain_surrogate(
        [layout], layout, sample_count=40, tile_rows=rows, tile_cols=cols,
        base_channels=8, depth=2, config=TrainConfig(epochs=25, batch_size=8),
        simulator=simulator, seed=0,
    )
    print(f"surrogate mean relative error: {report.mean_relative_error * 100:.2f}%")

    neurfill = NeurFill(problem, network,
                        optimizer=SqpOptimizer(max_iter=80, tol=1e-9),
                        simulator=simulator)
    methods = {
        "lin": lambda p: lin_fill(p),
        "tao": lambda p: tao_fill(p),
        "cai": lambda p: cai_fill(p, simulator=simulator, max_sqp_iterations=3),
        "neurfill-pkb": lambda p: neurfill.run_pkb(),
        "neurfill-mm": lambda p: neurfill.run_multimodal(max_evaluations=500,
                                                         top_k=3),
    }
    rows_out = run_comparison(problem, methods, simulator)
    print()
    print(format_table3([r.score for r in rows_out],
                        title=f"Design {design_key} (scaled x{scale})"))
    print("\nExpected shape (paper Table III): model-based methods beat "
          "rule-based on quality; NeurFill (PKB) matches Cai's quality at a "
          "fraction of the runtime and wins the overall score.")


if __name__ == "__main__":
    design = sys.argv[1] if len(sys.argv) > 1 else "A"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    main(design, scale)
