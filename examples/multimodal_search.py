"""Multi-modal quality landscape of a two-fillable-window layout (Fig. 6).

The paper motivates multi-modal starting points with the quality score of
a layout that has exactly two fillable windows: the score surface over
``(x_1, x_2)`` has several peak regions, so a single-start optimizer can
land on a suboptimal one.  This example

1. builds the two-window toy layout,
2. sweeps the quality score on a dense grid (through the real simulator),
3. renders the topography as ASCII art, and
4. runs NMMSO to locate the peaks — compare them against the grid.

Run:  python examples/multimodal_search.py
"""

import numpy as np

from repro.baselines import SimulatorQuality
from repro.cmp import CmpSimulator
from repro.core import FillProblem, ScoreCoefficients
from repro.layout import make_two_fillable_window_layout
from repro.optimize import Nmmso

GRID = 21
SHADES = " .:-=+*#%@"


def main() -> None:
    layout = make_two_fillable_window_layout()
    simulator = CmpSimulator()
    coefficients = ScoreCoefficients.calibrated(layout, simulator)
    problem = FillProblem(layout, coefficients)
    model = SimulatorQuality(problem, simulator)

    (i1, j1), (i2, j2) = layout.metadata["fillable"]
    slack = layout.slack_stack()
    s1 = slack[0, i1, j1]
    s2 = slack[0, i2, j2]
    print(f"two fillable windows, slack = {s1:.0f} and {s2:.0f} um^2")

    print("\n== Quality score topography (x1 right, x2 up)")
    surface = np.zeros((GRID, GRID))
    for a in range(GRID):
        for b in range(GRID):
            fill = np.zeros(layout.shape)
            fill[0, i1, j1] = s1 * a / (GRID - 1)
            fill[0, i2, j2] = s2 * b / (GRID - 1)
            surface[b, a] = model.quality(fill)
    lo, hi = surface.min(), surface.max()
    for b in reversed(range(GRID)):
        row = "".join(
            SHADES[int((surface[b, a] - lo) / (hi - lo + 1e-12) * (len(SHADES) - 1))]
            for a in range(GRID)
        )
        print(f"  {row}")
    besta, bestb = np.unravel_index(np.argmax(surface.T), (GRID, GRID))
    print(f"grid optimum: x1={besta / (GRID - 1):.2f}*s1, "
          f"x2={bestb / (GRID - 1):.2f}*s2, quality={hi:.4f}")

    print("\n== NMMSO multi-modal search over the same 2-D problem")

    def quality_2d(x):
        fill = np.zeros(layout.shape)
        fill[0, i1, j1] = x[0]
        fill[0, i2, j2] = x[1]
        return model.quality(fill)

    search = Nmmso(
        quality_2d, lower=np.zeros(2), upper=np.array([s1, s2]),
        max_evaluations=800, merge_distance=0.12, seed=0,
    )
    found = search.run()
    print(f"{found.evaluations} evaluations, "
          f"{len(found.optima)} peak regions located:")
    for k, opt in enumerate(found.optima[:6]):
        print(f"  peak {k}: x1={opt.x[0] / s1:.2f}*s1  x2={opt.x[1] / s2:.2f}*s2  "
              f"quality={opt.value:.4f}")
    gap = hi - found.best.value
    print(f"best located peak is within {gap:.4f} of the dense-grid optimum")


if __name__ == "__main__":
    main()
