"""Quickstart: synthesise dummy fill for a small design with NeurFill.

Pipeline (paper Fig. 1):

1. build a layout (a scaled-down CMP test chip);
2. pre-train the UNet surrogate against the full-chip CMP simulator;
3. run NeurFill (PKB): prior-knowledge starting point + SQP with
   backpropagated gradients;
4. judge the result with the *real* simulator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cmp import CmpSimulator
from repro.core import FillProblem, NeurFill, ScoreCoefficients, evaluate_solution
from repro.layout import make_design_a
from repro.surrogate import TrainConfig, pretrain_surrogate


def main() -> None:
    print("== 1. Layout and simulator")
    layout = make_design_a(rows=16, cols=16)
    simulator = CmpSimulator()
    print(f"layout: {layout.name}, {layout.num_layers} layers, "
          f"{layout.grid.rows}x{layout.grid.cols} windows of "
          f"{layout.grid.window_um:.0f} um")

    coefficients = ScoreCoefficients.calibrated(layout, simulator)
    problem = FillProblem(layout, coefficients)

    print("\n== 2. Pre-train the CMP neural network (scaled-down budget)")
    network, history, report = pretrain_surrogate(
        sources=[layout], target_layout=layout,
        sample_count=30, tile_rows=16, tile_cols=16,
        base_channels=8, depth=2,
        config=TrainConfig(epochs=20, batch_size=8),
        simulator=simulator, seed=0,
    )
    print(f"training loss: {history.losses[0]:.3f} -> {history.final_loss:.4f}")
    print(f"held-out mean relative height error: "
          f"{report.mean_relative_error * 100:.2f}% "
          f"(paper reports 0.6% at full training scale)")

    print("\n== 3. NeurFill (PKB): starting point + SQP via backprop")
    neurfill = NeurFill(problem, network, simulator=simulator)
    result = neurfill.run_pkb(num_candidates=9)
    print(result.summary())

    print("\n== 4. Verdict from the real full-chip CMP simulator")
    for label, fill in [("no fill", np.zeros(layout.shape)),
                        ("neurfill-pkb", result.fill)]:
        score = evaluate_solution(problem, fill, label, simulator,
                                  runtime_s=result.runtime_s)
        print(f"{label:>12}: dH={score.delta_h:7.1f} A   "
              f"quality={score.quality:.3f}   overall={score.overall:.3f}")


if __name__ == "__main__":
    main()
