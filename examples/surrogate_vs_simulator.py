"""Surrogate fidelity study: does the network rank fills like the simulator?

The whole NeurFill premise is that optimising against the surrogate
optimises the real objective.  This example quantifies that premise at a
given training budget:

* sigma / line-deviation tracking across a family of candidate fills;
* rank correlation of the full quality score;
* the backprop-vs-finite-difference gradient agreement on the surrogate.

Run:  python examples/surrogate_vs_simulator.py
"""

import numpy as np

from repro.baselines import SimulatorQuality
from repro.cmp import CmpSimulator
from repro.core import FillProblem, QualityModel, ScoreCoefficients
from repro.layout import make_design_a
from repro.surrogate import TrainConfig, pretrain_surrogate


def rank_correlation(a, b) -> float:
    ra = np.argsort(np.argsort(a))
    rb = np.argsort(np.argsort(b))
    return float(np.corrcoef(ra, rb)[0, 1])


def main() -> None:
    layout = make_design_a(rows=16, cols=16)
    simulator = CmpSimulator()
    coefficients = ScoreCoefficients.calibrated(layout, simulator)
    problem = FillProblem(layout, coefficients)

    network, _, report = pretrain_surrogate(
        [layout], layout, sample_count=40, tile_rows=16, tile_cols=16,
        base_channels=8, depth=2, config=TrainConfig(epochs=25, batch_size=8),
        simulator=simulator, seed=0,
    )
    print(f"surrogate mean relative height error: "
          f"{report.mean_relative_error * 100:.2f}%")

    model = QualityModel(problem, network)
    sim_model = SimulatorQuality(problem, simulator)

    rng = np.random.default_rng(1)
    slack = layout.slack_stack()
    rho = layout.density_stack()
    area = layout.grid.window_area
    candidates = {
        "zero": np.zeros(layout.shape),
        "30% slack": 0.3 * slack,
        "60% slack": 0.6 * slack,
        "90% slack": 0.9 * slack,
        "uniform 0.6": np.clip((0.6 - rho) * area, 0, slack),
        "uniform 0.75": np.clip((0.75 - rho) * area, 0, slack),
        "random": rng.random(layout.shape) * slack,
    }

    print(f"\n{'candidate':<14} {'surrogate q':>12} {'simulator q':>12}")
    surr, simq = [], []
    for name, fill in candidates.items():
        qs = model.quality(fill)
        qr = sim_model.quality(fill)
        surr.append(qs)
        simq.append(qr)
        print(f"{name:<14} {qs:>12.4f} {qr:>12.4f}")
    print(f"\nquality rank correlation: {rank_correlation(surr, simq):.3f} "
          f"(1.0 = the surrogate orders candidates exactly like the simulator)")

    print("\n== Gradient check: backprop vs finite differences (surrogate)")
    x0 = 0.4 * slack
    _, grad = model.value_and_grad(x0)
    worst = 0.0
    for k in rng.integers(0, x0.size, size=6):
        probe = x0.ravel().copy()
        probe[k] += 1.0
        hi = model.quality(probe.reshape(x0.shape))
        probe[k] -= 2.0
        lo = model.quality(probe.reshape(x0.shape))
        fd = (hi - lo) / 2.0
        err = abs(grad.ravel()[k] - fd)
        worst = max(worst, err)
        print(f"  var {int(k):5d}: backprop={grad.ravel()[k]:+.3e}  fd={fd:+.3e}")
    print(f"worst |backprop - fd| = {worst:.2e} "
          f"(exact up to FD truncation error)")


if __name__ == "__main__":
    main()
