"""Pre-train the CMP neural network and inspect its accuracy (paper SS V-A).

Reproduces the training protocol at laptop scale:

* two-step random data generation (window re-assembly + random legal
  fill, paper Fig. 8);
* UNet training on the Eq. 20 objective;
* test-set accuracy + the Fig. 9 per-window error distribution;
* the extension-ability check (train on designs A+B, test on C);
* checkpointing the result for reuse.

Run:  python examples/train_surrogate.py [out_dir]
"""

import sys

from repro.cmp import CmpSimulator
from repro.evaluation import format_histogram
from repro.layout import make_design_a, make_design_b, make_design_c
from repro.nn import UNet
from repro.surrogate import (
    NUM_FEATURE_CHANNELS,
    TrainConfig,
    build_dataset,
    evaluate_accuracy,
    save_surrogate,
    train_unet,
)

BASE_CHANNELS = 8
DEPTH = 2


def main(out_dir: str = "surrogate_checkpoint") -> None:
    simulator = CmpSimulator()
    design_a = make_design_a(rows=16, cols=16)
    design_b = make_design_b(rows=16, cols=16)
    design_c = make_design_c(rows=16, cols=16)

    print("== Two-step random training data (paper Fig. 8)")
    dataset = build_dataset([design_a, design_b], count=40, rows=16, cols=16,
                            simulator=simulator, seed=0)
    train_set, test_set = dataset.split(test_fraction=0.2, seed=0)
    print(f"{len(train_set)} training layouts, {len(test_set)} test layouts, "
          f"{dataset.inputs.shape[2]} feature channels")

    print("\n== Training (Eq. 20 + variance matching)")
    unet = UNet(in_channels=NUM_FEATURE_CHANNELS, out_channels=1,
                base_channels=BASE_CHANNELS, depth=DEPTH, rng=0)
    print(f"UNet parameters: {unet.num_parameters()}")
    history = train_unet(unet, train_set, TrainConfig(epochs=25, batch_size=8))
    print("epoch losses:", " ".join(f"{l:.3f}" for l in history.losses[::5]))

    print("\n== Test accuracy (paper: 0.6% mean, 1.77% max window)")
    report = evaluate_accuracy(unet, test_set)
    print(f"mean relative height error:      {report.mean_relative_error * 100:.2f}%")
    print(f"max per-window relative error:   {report.max_window_relative_error * 100:.2f}%")
    print(f"windows below 1.3% error:        {report.fraction_below(0.013) * 100:.0f}%")

    counts, edges = report.error_histogram(bins=12)
    print("\nFig. 9 — per-window average relative error distribution:")
    print(format_histogram(counts, edges))

    print("\n== Extension ability: trained on A+B, tested on C")
    ext_set = build_dataset([design_c], count=10, rows=16, cols=16,
                            simulator=simulator, seed=7,
                            normalizer=dataset.normalizer)
    ext_report = evaluate_accuracy(unet, ext_set)
    print(f"extension-set mean relative error: "
          f"{ext_report.mean_relative_error * 100:.2f}% "
          f"(paper reports 2.7%)")

    path = save_surrogate(out_dir, unet, dataset.normalizer,
                          base_channels=BASE_CHANNELS, depth=DEPTH)
    print(f"\ncheckpoint written to {path}/")


if __name__ == "__main__":
    main(*sys.argv[1:2])
