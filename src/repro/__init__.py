"""NeurFill reproduction: neural-network CMP surrogates for model-based
dummy filling synthesis (Cai et al., DAC 2021).

Subpackages
-----------
``repro.layout``
    Window-grid layouts, synthetic benchmark designs, fill regions.
``repro.cmp``
    Full-chip CMP simulator (contact mechanics, DSH, Preston).
``repro.nn``
    Numpy autodiff engine, conv layers, UNet, optimizers.
``repro.surrogate``
    The CMP neural network: extraction + UNet + objective layers.
``repro.optimize``
    Box-constrained SQP, box QP, NMMSO multi-modal search.
``repro.core``
    The NeurFill framework, PKB starts, MSP-SQP, scoring.
``repro.baselines``
    Lin (rule LP), Tao (rule SQP), Cai (model-based numerical-gradient).
``repro.evaluation``
    Comparison harness and table builders.
``repro.serve``
    Resident batching service: registry, job queue, workers, journal.
"""

from . import (
    baselines,
    cmp,
    core,
    evaluation,
    layout,
    nn,
    optimize,
    serve,
    surrogate,
)
from .cmp import CmpSimulator, ProcessParams
from .core import FillProblem, NeurFill, ScoreCoefficients, evaluate_solution
from .layout import Layout, make_design
from .surrogate import CmpNeuralNetwork, pretrain_surrogate

__version__ = "1.0.0"

__all__ = [
    "CmpNeuralNetwork",
    "CmpSimulator",
    "FillProblem",
    "Layout",
    "NeurFill",
    "ProcessParams",
    "ScoreCoefficients",
    "baselines",
    "cmp",
    "core",
    "evaluate_solution",
    "evaluation",
    "layout",
    "make_design",
    "nn",
    "optimize",
    "pretrain_surrogate",
    "serve",
    "surrogate",
]
