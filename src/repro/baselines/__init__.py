"""Baseline dummy-filling methods the paper compares against."""

from .cai import SimulatorQuality, cai_fill
from .lin import lin_fill
from .tao import tao_fill

__all__ = ["SimulatorQuality", "cai_fill", "lin_fill", "tao_fill"]
