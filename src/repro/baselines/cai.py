"""Cai [12]: model-based SQP filling with *numerical* gradients (TCAD'21).

The state-of-the-art the paper improves on: the same quality objective as
NeurFill (CMP-model planarity + analytic performance degradation) and the
same SQP optimizer, but the planarity score is evaluated by invoking the
full-chip CMP simulator and its gradient by finite differences — one
full-chip simulation per fill variable per iteration.  This is the
runtime bottleneck Table I quantifies (34 100 s per gradient on one core)
and why Table III shows Cai needing 1.5-17.2 h on 64 cores.

To keep the baseline runnable on one CPU the number of SQP major
iterations is budgeted (``max_sqp_iterations``); the gradient itself is
the honest full finite-difference pass.
"""

from __future__ import annotations

import time

import numpy as np

from ..cmp.numgrad import (
    forward_difference_gradient,
    forward_difference_gradient_batched,
)
from ..cmp.simulator import CmpSimulator
from ..layout.layout import apply_fill
from ..core.degradation import PerformanceDegradation
from ..core.pkb import pkb_starting_point
from ..core.problem import FillProblem
from ..core.result import FillResult
from ..core.scoring import planarity_metrics
from ..optimize.sqp import SqpOptimizer


class SimulatorQuality:
    """Quality score evaluated through the real CMP simulator."""

    def __init__(self, problem: FillProblem, simulator: CmpSimulator | None = None):
        self.problem = problem
        self.simulator = simulator or CmpSimulator()
        self.degradation = PerformanceDegradation(
            problem.layout, problem.coefficients
        )
        self.simulations = 0

    def _score(self, heights: np.ndarray, fill: np.ndarray) -> float:
        """Eq. 5a from simulated heights and an already-clipped fill."""
        c = self.problem.coefficients
        _, sigma, line, ol = planarity_metrics(heights)
        f_sigma = min(1.0, max(0.0, 1.0 - sigma / c.beta_sigma))
        f_line = min(1.0, max(0.0, 1.0 - line / c.beta_line))
        f_ol = min(1.0, max(0.0, 1.0 - ol / c.beta_outlier))
        s_plan = (
            c.alpha_sigma * f_sigma + c.alpha_line * f_line
            + c.alpha_outlier * f_ol
        )
        pd, _ = self.degradation.evaluate(fill, want_grad=False)
        return s_plan + pd.s_pd

    def quality(self, fill: np.ndarray) -> float:
        """``S_qual`` (Eq. 5a) with simulator-evaluated planarity."""
        self.simulations += 1
        fill = self.problem.clip(fill)
        heights = self.simulator.simulate_layout(self.problem.layout, fill).height
        return self._score(heights, fill)

    def quality_batch(self, fills: np.ndarray) -> np.ndarray:
        """``S_qual`` for a ``(P, L, N, M)`` stack of fill candidates.

        One :meth:`~repro.cmp.simulator.CmpSimulator.simulate_batch`
        call replaces ``P`` solo polishes.  The batched simulator is
        bitwise identical to looping :meth:`quality` over the stack, and
        the scoring arithmetic is shared, so the returned values are
        bitwise equal to the sequential ones.  Each entry still counts
        as one simulation — the honest cost accounting Table I relies on.
        """
        fills = np.asarray(fills)
        expected = self.problem.layout.shape
        if fills.ndim != 4 or fills.shape[1:] != expected:
            raise ValueError(
                f"fills must have shape (P, {', '.join(map(str, expected))})"
                f"; got {fills.shape}")
        self.simulations += fills.shape[0]
        clipped = [self.problem.clip(f) for f in fills]
        stacks = [apply_fill(self.problem.layout, f) for f in clipped]
        result = self.simulator.simulate_batch(stacks)
        return np.array([
            self._score(result.height[p], clipped[p])
            for p in range(len(clipped))
        ])

    def value_and_numerical_grad(
        self, fill: np.ndarray, eps: float, sim_batch: int | None = None
    ) -> tuple[float, np.ndarray]:
        """One objective value + a full forward-difference gradient.

        Costs ``n + 1`` simulator invocations — the bottleneck the paper
        replaces with backpropagation.  With ``sim_batch`` set, the
        probes are evaluated through :meth:`quality_batch` in chunks of
        that many layouts per batched simulation; the gradient is
        bitwise identical to the sequential pass, only faster.
        """
        value = self.quality(fill)
        if sim_batch is None:
            grad = forward_difference_gradient(
                self.quality, fill, eps=eps, upper=self.problem.upper
            )
            # forward_difference_gradient evaluated the base point again
            # plus one probe per variable; both went through self.quality,
            # so the simulation counter is already accurate.
        else:
            grad = forward_difference_gradient_batched(
                self.quality_batch, fill, eps=eps,
                upper=self.problem.upper, batch_size=sim_batch,
                base=value,
            )
        return value, grad


def cai_fill(
    problem: FillProblem,
    simulator: CmpSimulator | None = None,
    max_sqp_iterations: int = 4,
    fd_eps: float = 500.0,
    pkb_candidates: int = 7,
    sim_batch: int | None = 32,
) -> FillResult:
    """Run the Cai baseline: PKB start + SQP with numerical gradients.

    Args:
        problem: layout + coefficients.
        simulator: the full-chip CMP simulator (default calibration).
        max_sqp_iterations: budget of SQP major iterations (each costs a
            full finite-difference gradient = ``n + 1`` simulations).
        fd_eps: finite-difference probe in um^2 of fill (large enough to
            step over the polish loop's time-step quantisation).
        pkb_candidates: linear-search grid of the PKB starting point.
        sim_batch: finite-difference probes per batched simulation
            (``None`` falls back to one simulator call per probe).  The
            simulation *count* — the figure of merit Table I reports —
            is unchanged; only the Python overhead per probe amortises.
    """
    if max_sqp_iterations <= 0:
        raise ValueError("max_sqp_iterations must be positive")
    t0 = time.perf_counter()
    model = SimulatorQuality(problem, simulator)
    pkb = pkb_starting_point(problem.layout, model.quality, pkb_candidates)
    optimizer = SqpOptimizer(max_iter=max_sqp_iterations, tol=1e-9)
    result = optimizer.maximize(
        lambda x: model.value_and_numerical_grad(x, fd_eps,
                                                 sim_batch=sim_batch),
        pkb.fill, problem.lower, problem.upper,
        fun_value=model.quality,  # line-search trials cost 1 simulation
    )
    return FillResult(
        method="cai",
        fill=problem.clip(result.x),
        quality=result.value,
        runtime_s=time.perf_counter() - t0,
        evaluations=model.simulations,
        extras={
            "pkb_quality": pkb.quality,
            "sqp_iterations": result.iterations,
            "simulations": model.simulations,
        },
    )
