"""Lin [10]: rule-based LP dummy fill (coupling + uniformity constraints).

Lin et al. (TCAD'17) cast filling as a linear program: insert the minimum
fill such that every window reaches a per-layer target density (density
uniformity), which simultaneously limits coupling capacitance (fill is
never inserted beyond need).  Table III shows it as the fastest method
(1-9 s) with modest quality.

We reproduce that structure: per layer, the target density is a high
quantile of the reachable densities, and the LP

.. math:: \\min \\sum x \\quad \\text{s.t.} \\quad
          \\rho + x/A \\ge \\min(td_l, \\rho + s/A), \\; 0 \\le x \\le s

is solved with ``scipy.optimize.linprog`` (the per-window structure makes
the solution analytic, but we run the LP to stay method-faithful; a
closed-form fallback guards environments without HiGHS).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.problem import FillProblem
from ..core.result import FillResult


def _layer_targets(problem: FillProblem, quantile: float) -> np.ndarray:
    """Per-layer target density: a quantile of reachable densities."""
    layout = problem.layout
    rho = layout.density_stack()
    reach = rho + layout.slack_stack() / layout.grid.window_area
    return np.quantile(reach.reshape(layout.num_layers, -1), quantile, axis=1)


def _solve_layer_lp(rho: np.ndarray, slack: np.ndarray, area: float,
                    target: float) -> np.ndarray:
    """Min-fill LP for one layer (falls back to the analytic solution)."""
    need = np.clip((target - rho) * area, 0.0, slack)
    try:
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return need
    n = rho.size
    flat_need = need.ravel()
    result = linprog(
        c=np.ones(n),
        bounds=list(zip(flat_need, slack.ravel())),
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is trivially feasible
        return need
    return result.x.reshape(rho.shape)


def lin_fill(problem: FillProblem, quantile: float = 0.7) -> FillResult:
    """Run the Lin baseline on a fill problem.

    Args:
        problem: layout + coefficients.
        quantile: reachable-density quantile used as the per-layer target
            (higher = more uniform but more fill).
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    t0 = time.perf_counter()
    layout = problem.layout
    area = layout.grid.window_area
    targets = _layer_targets(problem, quantile)
    fill = np.stack([
        _solve_layer_lp(layer.density, layer.slack, area, float(targets[l]))
        for l, layer in enumerate(layout.layers)
    ])
    fill = problem.clip(fill)
    return FillResult(
        method="lin",
        fill=fill,
        quality=float("nan"),  # rule-based: no model-based quality estimate
        runtime_s=time.perf_counter() - t0,
        evaluations=0,
        extras={"targets": targets.tolist(), "quantile": quantile},
    )
