"""Tao [11]: rule-based SQP dummy fill (ICCAD'16 unified framework).

Tao et al. optimise *rule* metrics — density variance, density line
deviation — with an SQP solver, never invoking a CMP model.  The rules
are smooth analytic functions of the fill vector, so gradients are exact
and cheap; the weakness (which the paper's Section I calls the "intrinsic
incompleteness of empirical rules") is that density uniformity is only a
proxy for post-CMP height uniformity.

Objective (maximised):

.. math:: R(x) = \\alpha_\\sigma f(\\kappa_\\sigma \\, var_d)
               + \\alpha_{\\sigma^*} f(\\kappa_{\\sigma^*} \\, line_d)
               + \\alpha_{ol} + S_{PD}(x)

where ``var_d``/``line_d`` are the post-fill density variance and density
line deviation, and the ``kappa`` factors rescale density-rule units into
the benchmark's height-metric betas (calibrated so the unfilled layout
scores the same under the rule as under the model).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.degradation import PerformanceDegradation
from ..core.problem import FillProblem
from ..core.result import FillResult
from ..optimize.sqp import SqpOptimizer


class _RuleObjective:
    """Smooth rule-based score with analytic gradient."""

    def __init__(self, problem: FillProblem):
        layout = problem.layout
        c = problem.coefficients
        self.area = layout.grid.window_area
        self.rho = layout.density_stack()
        self.c = c
        self.degradation = PerformanceDegradation(layout, c)
        # Rescale density metrics onto the height-metric betas: the
        # unfilled layout consumes the same score fraction either way.
        var0 = float(sum(np.var(self.rho[l]) for l in range(self.rho.shape[0])))
        line0 = 0.0
        for l in range(self.rho.shape[0]):
            col = self.rho[l].mean(axis=0, keepdims=True)
            line0 += float(np.abs(self.rho[l] - col).sum())
        self.kappa_sigma = (c.beta_sigma / 2.0) / max(var0, 1e-12)
        self.kappa_line = (c.beta_line / 2.0) / max(line0, 1e-12)
        self.evaluations = 0

    def __call__(self, fill: np.ndarray) -> tuple[float, np.ndarray]:
        self.evaluations += 1
        c = self.c
        d = self.rho + fill / self.area
        L, N, M = d.shape

        var_d = 0.0
        grad_var = np.zeros_like(d)
        line_d = 0.0
        grad_line = np.zeros_like(d)
        for l in range(L):
            mean = d[l].mean()
            centred = d[l] - mean
            var_d += float(np.mean(centred**2))
            grad_var[l] = 2.0 * centred / (N * M)
            col = d[l].mean(axis=0, keepdims=True)
            dev = d[l] - col
            line_d += float(np.abs(dev).sum())
            sign = np.sign(dev)
            grad_line[l] = sign - sign.mean(axis=0, keepdims=True)

        t_sigma = self.kappa_sigma * var_d
        t_line = self.kappa_line * line_d
        f_sigma = max(0.0, 1.0 - t_sigma / c.beta_sigma)
        f_line = max(0.0, 1.0 - t_line / c.beta_line)
        value = c.alpha_sigma * f_sigma + c.alpha_line * f_line + c.alpha_outlier

        grad = np.zeros_like(fill)
        if f_sigma > 0.0:
            grad -= (c.alpha_sigma * self.kappa_sigma / c.beta_sigma) * grad_var / self.area
        if f_line > 0.0:
            grad -= (c.alpha_line * self.kappa_line / c.beta_line) * grad_line / self.area

        pd_breakdown, pd_grad = self.degradation.evaluate(fill, want_grad=True)
        return value + pd_breakdown.s_pd, grad + pd_grad


def tao_fill(problem: FillProblem, optimizer: SqpOptimizer | None = None) -> FillResult:
    """Run the Tao baseline: SQP on rule metrics from the zero fill."""
    t0 = time.perf_counter()
    objective = _RuleObjective(problem)
    optimizer = optimizer or SqpOptimizer(max_iter=80, tol=1e-9)
    result = optimizer.maximize(
        objective, np.zeros(problem.layout.shape), problem.lower, problem.upper
    )
    return FillResult(
        method="tao",
        fill=problem.clip(result.x),
        quality=result.value,
        runtime_s=time.perf_counter() - t0,
        evaluations=objective.evaluations,
        extras={"iterations": result.iterations, "converged": result.converged},
    )
