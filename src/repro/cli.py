"""Command-line interface for the NeurFill reproduction.

Subcommands cover the full flow a downstream user needs:

* ``gen-design`` — write one of the synthetic benchmark designs to JSON;
* ``simulate``   — run the full-chip CMP simulator on a layout and print
  the post-CMP planarity metrics;
* ``fill``       — synthesise dummy fill (lin / tao / neurfill-pkb /
  neurfill-mm), optionally emit dummy shapes, and print the
  simulator-judged score;
* ``compare``    — the Table III harness on one layout.

Examples::

    python -m repro gen-design A --rows 16 --cols 16 -o a.json
    python -m repro simulate a.json
    python -m repro fill a.json --method neurfill-pkb --shapes-out fill.json
    python -m repro compare a.json --skip-cai
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .baselines import cai_fill, lin_fill, tao_fill
from .cmp import CmpSimulator
from .core import (
    FillProblem,
    NeurFill,
    ScoreCoefficients,
    evaluate_solution,
    planarity_metrics,
)
from .evaluation import format_table3, run_comparison
from .insertion import insert_dummies, save_shapes
from .layout import load_layout, make_design, save_layout
from .optimize import SqpOptimizer
from .surrogate import TrainConfig, pretrain_surrogate


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NeurFill dummy filling toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen-design", help="generate a synthetic benchmark design")
    gen.add_argument("design", choices=["A", "B", "C"])
    gen.add_argument("--rows", type=int, default=None)
    gen.add_argument("--cols", type=int, default=None)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("-o", "--output", required=True)

    simc = sub.add_parser("simulate", help="run the CMP simulator on a layout")
    simc.add_argument("layout")
    simc.add_argument("--polish-time", type=float, default=None,
                      help="override polish time in seconds")

    fill = sub.add_parser("fill", help="synthesise dummy fill for a layout")
    fill.add_argument("layout")
    fill.add_argument("--method", default="neurfill-pkb",
                      choices=["lin", "tao", "cai", "neurfill-pkb",
                               "neurfill-mm"])
    fill.add_argument("--train-samples", type=int, default=30)
    fill.add_argument("--train-epochs", type=int, default=20)
    fill.add_argument("--seed", type=int, default=0)
    fill.add_argument("--fill-out", help="write per-window fill areas (.npz)")
    fill.add_argument("--shapes-out", help="insert dummies and write shapes JSON")

    comp = sub.add_parser("compare", help="run the Table III comparison harness")
    comp.add_argument("layout")
    comp.add_argument("--skip-cai", action="store_true",
                      help="skip the slow numerical-gradient baseline")
    comp.add_argument("--train-samples", type=int, default=30)
    comp.add_argument("--train-epochs", type=int, default=20)
    return parser


def _load_layout_arg(path: str):
    return load_layout(path)


def _cmd_gen_design(args) -> int:
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.rows and args.cols:
        from .layout.designs import DESIGN_BUILDERS
        layout = DESIGN_BUILDERS[args.design](rows=args.rows, cols=args.cols,
                                              **kwargs)
    else:
        layout = make_design(args.design, **({"seed": args.seed}
                                             if args.seed is not None else {}))
    save_layout(layout, args.output)
    print(f"wrote {layout.name} ({layout.grid.rows}x{layout.grid.cols} windows, "
          f"{layout.num_layers} layers) to {args.output}")
    return 0


def _cmd_simulate(args) -> int:
    layout = _load_layout_arg(args.layout)
    simulator = CmpSimulator()
    if args.polish_time:
        from .cmp import ProcessParams
        simulator = CmpSimulator(ProcessParams(polish_time_s=args.polish_time))
    result = simulator.simulate_layout(layout)
    delta_h, sigma, line, ol = planarity_metrics(result.height)
    print(f"layout: {layout.name}  {layout.grid.rows}x{layout.grid.cols} "
          f"windows x {layout.num_layers} layers")
    print(f"post-CMP dH:        {delta_h:10.1f} A")
    print(f"height variance:    {sigma:10.1f} A^2")
    print(f"line deviation:     {line:10.1f} A")
    print(f"outliers:           {ol:10.3f} A")
    print(f"mean dishing:       {result.dishing.mean():10.2f} A")
    print(f"mean erosion:       {result.erosion.mean():10.2f} A")
    return 0


def _make_neurfill(layout, problem, simulator, args) -> NeurFill:
    rows, cols = layout.grid.shape
    print("pre-training the CMP neural network ...", file=sys.stderr)
    network, _, report = pretrain_surrogate(
        [layout], layout, sample_count=args.train_samples,
        tile_rows=rows, tile_cols=cols, base_channels=8, depth=2,
        config=TrainConfig(epochs=args.train_epochs, batch_size=8),
        simulator=simulator, seed=args.seed if hasattr(args, "seed") else 0,
    )
    print(f"surrogate relative error: {report.mean_relative_error * 100:.2f}%",
          file=sys.stderr)
    return NeurFill(problem, network,
                    optimizer=SqpOptimizer(max_iter=80, tol=1e-9),
                    simulator=simulator)


def _cmd_fill(args) -> int:
    layout = _load_layout_arg(args.layout)
    simulator = CmpSimulator()
    problem = FillProblem(
        layout, ScoreCoefficients.calibrated(layout, simulator,
                                             beta_runtime=60.0)
    )
    if args.method == "lin":
        result = lin_fill(problem)
    elif args.method == "tao":
        result = tao_fill(problem)
    elif args.method == "cai":
        result = cai_fill(problem, simulator=simulator, max_sqp_iterations=3)
    else:
        neurfill = _make_neurfill(layout, problem, simulator, args)
        if args.method == "neurfill-pkb":
            result = neurfill.run_pkb()
        else:
            result = neurfill.run_multimodal(max_evaluations=500, top_k=3)

    score = evaluate_solution(problem, result.fill, args.method, simulator,
                              runtime_s=result.runtime_s)
    print(result.summary())
    print(f"simulator verdict: dH={score.delta_h:.1f} A  "
          f"quality={score.quality:.3f}  overall={score.overall:.3f}")
    if args.fill_out:
        np.savez(args.fill_out, fill=result.fill)
        print(f"fill areas written to {args.fill_out}")
    if args.shapes_out:
        inserted = insert_dummies(layout, result.fill)
        save_shapes(inserted.shapes, args.shapes_out)
        print(f"{inserted.count} dummies written to {args.shapes_out} "
              f"(quantisation error {inserted.quantisation_error:.1f} um^2)")
    return 0


def _cmd_compare(args) -> int:
    layout = _load_layout_arg(args.layout)
    simulator = CmpSimulator()
    problem = FillProblem(
        layout, ScoreCoefficients.calibrated(layout, simulator,
                                             beta_runtime=60.0)
    )
    args.seed = 0
    neurfill = _make_neurfill(layout, problem, simulator, args)
    methods = {
        "lin": lambda p: lin_fill(p),
        "tao": lambda p: tao_fill(p),
        "neurfill-pkb": lambda p: neurfill.run_pkb(),
        "neurfill-mm": lambda p: neurfill.run_multimodal(max_evaluations=500,
                                                         top_k=3),
    }
    if not args.skip_cai:
        methods["cai"] = lambda p: cai_fill(p, simulator=simulator,
                                            max_sqp_iterations=3)
    rows = run_comparison(problem, methods, simulator)
    print(format_table3([r.score for r in rows], title=f"{layout.name}"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "gen-design": _cmd_gen_design,
        "simulate": _cmd_simulate,
        "fill": _cmd_fill,
        "compare": _cmd_compare,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
