"""Command-line interface for the NeurFill reproduction.

Subcommands cover the full flow a downstream user needs:

* ``gen-design``      — write one of the synthetic benchmark designs to JSON;
* ``simulate``        — run the full-chip CMP simulator on a layout and print
  the post-CMP planarity metrics;
* ``fill``            — synthesise dummy fill (lin / tao / neurfill-pkb /
  neurfill-mm), optionally emit dummy shapes, and print the
  simulator-judged score;
* ``eco``             — incremental refill after a small edit: diff the
  edited layout against the solved parent, re-optimise only the dirty
  windows' receptive-field halo, keep the rest bit-identical;
* ``compare``         — the Table III harness on one layout;
* ``train-surrogate`` — pre-train a CMP surrogate and save a checkpoint;
* ``serve``           — run the resident batching service (line-JSON over
  a stdin/stdout pipe or TCP; see ``repro.serve``);
* ``trace``           — run any other subcommand with ``repro.obs``
  tracing enabled, write the span/event JSONL and print a human summary
  to stderr.  The lighter ``--profile`` global flag prints just the
  summary without writing a file.

Examples::

    python -m repro gen-design A --rows 16 --cols 16 -o a.json
    python -m repro simulate a.json
    python -m repro fill a.json --method neurfill-pkb --shapes-out fill.json
    python -m repro fill a.json --fill-out fill.npz --model ckpt/
    python -m repro eco a.json a_edited.json --parent-fill fill.npz \
        --model ckpt/ --fill-out fill_eco.npz
    python -m repro train-surrogate a.json -o ckpt/
    python -m repro fill a.json --model ckpt/        # skip re-training
    python -m repro serve --pipe --model pkb=ckpt/
    python -m repro compare a.json --skip-cai
    python -m repro trace -o fill_trace.jsonl fill a.json --method lin
    python -m repro --profile simulate a.json

Bad inputs (missing layout files, absent checkpoints, malformed JSON)
exit non-zero with a one-line ``repro: error: ...`` message instead of a
traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from . import __version__
from .baselines import cai_fill, lin_fill, tao_fill
from .cmp import CmpSimulator
from .core import (
    FillProblem,
    NeurFill,
    ScoreCoefficients,
    eco_refill,
    evaluate_solution,
    planarity_metrics,
)
from .evaluation import format_table3, run_comparison
from .insertion import insert_dummies, save_shapes
from .layout import load_layout, make_design, save_layout
from .optimize import SqpOptimizer
from .surrogate import (
    TrainConfig,
    load_surrogate,
    pretrain_surrogate,
    save_surrogate,
)


class CliError(Exception):
    """User-facing error: printed as one line, exits with code 2."""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NeurFill dummy filling toolkit"
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--profile", action="store_true",
                        help="enable repro.obs tracing for this command and "
                             "print a per-stage timing summary to stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen-design", help="generate a synthetic benchmark design")
    gen.add_argument("design", choices=["A", "B", "C"])
    gen.add_argument("--rows", type=int, default=None)
    gen.add_argument("--cols", type=int, default=None)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("-o", "--output", required=True)

    simc = sub.add_parser("simulate", help="run the CMP simulator on a layout")
    simc.add_argument("layout")
    simc.add_argument("--polish-time", type=float, default=None,
                      help="override polish time in seconds")

    fill = sub.add_parser("fill", help="synthesise dummy fill for a layout")
    fill.add_argument("layout")
    fill.add_argument("--method", default="neurfill-pkb",
                      choices=["lin", "tao", "cai", "neurfill-pkb",
                               "neurfill-mm"])
    fill.add_argument("--model", default=None, metavar="CKPT_DIR",
                      help="load a saved surrogate checkpoint instead of "
                           "training one (neurfill methods)")
    fill.add_argument("--train-samples", type=int, default=30)
    fill.add_argument("--train-epochs", type=int, default=20)
    fill.add_argument("--seed", type=int, default=0)
    fill.add_argument("--fill-out", help="write per-window fill areas (.npz)")
    fill.add_argument("--shapes-out", help="insert dummies and write shapes JSON")

    eco = sub.add_parser(
        "eco", help="incremental (ECO) refill of an edited layout")
    eco.add_argument("parent_layout",
                     help="the layout the parent solution was synthesised for")
    eco.add_argument("edited_layout", help="the layout after the ECO edit")
    eco.add_argument("--parent-fill", required=True, metavar="NPZ",
                     help="parent fill areas (.npz from 'repro fill --fill-out')")
    eco.add_argument("--model", default=None, metavar="CKPT_DIR",
                     help="load a saved surrogate checkpoint instead of "
                          "training one")
    eco.add_argument("--coupling-radius", type=int, default=None,
                     help="extra dilation beyond the receptive-field radius "
                          "(default: the radius itself)")
    eco.add_argument("--train-samples", type=int, default=30)
    eco.add_argument("--train-epochs", type=int, default=20)
    eco.add_argument("--seed", type=int, default=0)
    eco.add_argument("--fill-out", help="write per-window fill areas (.npz)")

    comp = sub.add_parser("compare", help="run the Table III comparison harness")
    comp.add_argument("layout")
    comp.add_argument("--skip-cai", action="store_true",
                      help="skip the slow numerical-gradient baseline")
    comp.add_argument("--model", default=None, metavar="CKPT_DIR",
                      help="load a saved surrogate instead of training")
    comp.add_argument("--train-samples", type=int, default=30)
    comp.add_argument("--train-epochs", type=int, default=20)

    train = sub.add_parser("train-surrogate",
                           help="pre-train a CMP surrogate and save it")
    train.add_argument("layout")
    train.add_argument("-o", "--output", required=True,
                       help="checkpoint directory to write")
    train.add_argument("--train-samples", type=int, default=30)
    train.add_argument("--train-epochs", type=int, default=20)
    train.add_argument("--base-channels", type=int, default=8)
    train.add_argument("--depth", type=int, default=2)
    train.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="run the resident batching fill service")
    mode = serve.add_mutually_exclusive_group()
    mode.add_argument("--pipe", action="store_true",
                      help="line-JSON over stdin/stdout (default)")
    mode.add_argument("--tcp", metavar="HOST:PORT",
                      help="listen on a TCP socket, e.g. 127.0.0.1:7421")
    serve.add_argument("--model", action="append", default=[],
                       metavar="NAME=CKPT_DIR",
                       help="register a surrogate checkpoint (repeatable)")
    serve.add_argument("--workers", type=int, default=None,
                       help="workers per server/shard "
                            "(default REPRO_SERVE_WORKERS)")
    serve.add_argument("--worker-mode", choices=("thread", "process"),
                       default=None,
                       help="execute jobs on worker threads (coalescing) "
                            "or in forked worker processes (GIL-free; "
                            "default REPRO_SERVE_WORKER_MODE)")
    serve.add_argument("--shards", type=int, default=None,
                       help="shard-fleet width; >1 routes jobs to shard "
                            "processes by layout fingerprint "
                            "(default REPRO_SERVE_SHARDS)")
    serve.add_argument("--queue-capacity", type=int, default=None,
                       help="bounded queue size before rejection")
    serve.add_argument("--max-batch", type=int, default=None,
                       help="largest coalesced micro-batch (1 disables)")
    serve.add_argument("--flush-ms", type=float, default=None,
                       help="max-latency flush window in milliseconds")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="shorthand for --max-batch 1 (strict one-shot "
                            "numerical parity)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="crash-safe job journal; resumes unfinished "
                            "jobs recorded by a previous run")
    serve.add_argument("--default-timeout", type=float, default=None,
                       help="per-job timeout in seconds when the request "
                            "does not set one")
    serve.add_argument("--drain-timeout", type=float, default=None,
                       help="seconds a graceful shutdown waits for "
                            "in-flight jobs")
    serve.add_argument("--no-train", action="store_true",
                       help="reject neurfill jobs without a registered "
                            "model instead of training inline")
    serve.add_argument("--shadow-rate", type=float, default=None,
                       metavar="FRAC",
                       help="fraction of served fills to shadow-check "
                            "against the real simulator (0 disables; "
                            "default REPRO_LIFECYCLE_SHADOW_RATE)")
    serve.add_argument("--drift-bound", type=float, default=None,
                       metavar="RMSE_A",
                       help="height-RMSE (Angstrom) a shadow residual "
                            "must exceed to count toward a drift trip "
                            "(default REPRO_LIFECYCLE_DRIFT_BOUND)")
    serve.add_argument("--auto-retrain", action="store_true",
                       help="on a drift trip, retrain in the background "
                            "and hot-swap the validated checkpoint")
    serve.add_argument("--lifecycle-dir", default=None, metavar="DIR",
                       help="directory for lifecycle state + retrained "
                            "checkpoint generations "
                            "(default: <journal>.lifecycle)")

    lifecycle = sub.add_parser(
        "lifecycle-status",
        help="inspect drift/retrain/generation state of a serve fleet")
    where = lifecycle.add_mutually_exclusive_group(required=True)
    where.add_argument("--dir", dest="lifecycle_dir", metavar="DIR",
                       help="read the persisted lifecycle state file "
                            "from a (possibly stopped) server's "
                            "lifecycle directory")
    where.add_argument("--tcp", metavar="HOST:PORT",
                       help="query a running TCP server's live status")

    tracecmd = sub.add_parser(
        "trace",
        help="run a subcommand with tracing on; write a JSONL trace")
    tracecmd.add_argument("-o", "--trace-out", default="repro_trace.jsonl",
                          metavar="PATH",
                          help="trace JSONL output path "
                               "(default repro_trace.jsonl)")
    tracecmd.add_argument("argv", nargs=argparse.REMAINDER, metavar="CMD...",
                          help="the subcommand to run under tracing, e.g. "
                               "'fill a.json --method lin'")
    return parser


def _load_layout_arg(path: str):
    file = Path(path)
    if not file.is_file():
        raise CliError(f"layout file not found: {path}")
    try:
        return load_layout(file)
    except json.JSONDecodeError as exc:
        raise CliError(f"{path} is not valid JSON: {exc}")
    except (KeyError, ValueError, TypeError) as exc:
        raise CliError(f"{path} is not a valid layout file: {exc}")


def _cmd_gen_design(args) -> int:
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.rows and args.cols:
        from .layout.designs import DESIGN_BUILDERS
        layout = DESIGN_BUILDERS[args.design](rows=args.rows, cols=args.cols,
                                              **kwargs)
    else:
        layout = make_design(args.design, **({"seed": args.seed}
                                             if args.seed is not None else {}))
    try:
        save_layout(layout, args.output)
    except OSError as exc:
        raise CliError(f"cannot write {args.output}: {exc}")
    print(f"wrote {layout.name} ({layout.grid.rows}x{layout.grid.cols} windows, "
          f"{layout.num_layers} layers) to {args.output}")
    return 0


def _cmd_simulate(args) -> int:
    layout = _load_layout_arg(args.layout)
    simulator = CmpSimulator()
    if args.polish_time:
        from .cmp import ProcessParams
        simulator = CmpSimulator(ProcessParams(polish_time_s=args.polish_time))
    result = simulator.simulate_layout(layout)
    delta_h, sigma, line, ol = planarity_metrics(result.height)
    print(f"layout: {layout.name}  {layout.grid.rows}x{layout.grid.cols} "
          f"windows x {layout.num_layers} layers")
    print(f"post-CMP dH:        {delta_h:10.1f} A")
    print(f"height variance:    {sigma:10.1f} A^2")
    print(f"line deviation:     {line:10.1f} A")
    print(f"outliers:           {ol:10.3f} A")
    print(f"mean dishing:       {result.dishing.mean():10.2f} A")
    print(f"mean erosion:       {result.erosion.mean():10.2f} A")
    return 0


def _load_or_train_network(layout, simulator, args):
    """A surrogate bound to ``layout``: checkpoint if given, else inline
    training with the same knobs the serve executor uses."""
    model_dir = getattr(args, "model", None)
    if model_dir:
        network = load_surrogate(model_dir, layout)
        print(f"loaded surrogate checkpoint {model_dir}", file=sys.stderr)
        return network
    rows, cols = layout.grid.shape
    print("pre-training the CMP neural network ...", file=sys.stderr)
    network, _, report = pretrain_surrogate(
        [layout], layout, sample_count=args.train_samples,
        tile_rows=rows, tile_cols=cols, base_channels=8, depth=2,
        config=TrainConfig(epochs=args.train_epochs, batch_size=8),
        simulator=simulator, seed=args.seed if hasattr(args, "seed") else 0,
    )
    print(f"surrogate relative error: {report.mean_relative_error * 100:.2f}%",
          file=sys.stderr)
    return network


def _make_neurfill(layout, problem, simulator, args) -> NeurFill:
    network = _load_or_train_network(layout, simulator, args)
    return NeurFill(problem, network,
                    optimizer=SqpOptimizer(max_iter=80, tol=1e-9),
                    simulator=simulator)


def _cmd_fill(args) -> int:
    layout = _load_layout_arg(args.layout)
    simulator = CmpSimulator()
    problem = FillProblem(
        layout, ScoreCoefficients.calibrated(layout, simulator,
                                             beta_runtime=60.0)
    )
    if args.method == "lin":
        result = lin_fill(problem)
    elif args.method == "tao":
        result = tao_fill(problem)
    elif args.method == "cai":
        result = cai_fill(problem, simulator=simulator, max_sqp_iterations=3)
    else:
        neurfill = _make_neurfill(layout, problem, simulator, args)
        result = neurfill.run(args.method, seed=args.seed,
                              max_evaluations=500, top_k=3)

    score = evaluate_solution(problem, result.fill, args.method, simulator,
                              runtime_s=result.runtime_s)
    print(result.summary())
    print(f"simulator verdict: dH={score.delta_h:.1f} A  "
          f"quality={score.quality:.3f}  overall={score.overall:.3f}")
    if args.fill_out:
        np.savez(args.fill_out, fill=result.fill)
        print(f"fill areas written to {args.fill_out}")
    if args.shapes_out:
        inserted = insert_dummies(layout, result.fill)
        save_shapes(inserted.shapes, args.shapes_out)
        print(f"{inserted.count} dummies written to {args.shapes_out} "
              f"(quantisation error {inserted.quantisation_error:.1f} um^2)")
    return 0


def _cmd_eco(args) -> int:
    parent_layout = _load_layout_arg(args.parent_layout)
    edited_layout = _load_layout_arg(args.edited_layout)
    fill_path = Path(args.parent_fill)
    if not fill_path.is_file():
        raise CliError(f"parent fill file not found: {args.parent_fill}")
    try:
        with np.load(fill_path) as data:
            parent_fill = np.asarray(data["fill"], dtype=float)
    except (KeyError, ValueError, OSError) as exc:
        raise CliError(
            f"{args.parent_fill} is not a fill archive "
            f"(expected an npz with a 'fill' array): {exc}")
    simulator = CmpSimulator()
    problem = FillProblem(
        edited_layout, ScoreCoefficients.calibrated(edited_layout, simulator,
                                                    beta_runtime=60.0)
    )
    # The surrogate must see the edited layout's extraction constants.
    network = _load_or_train_network(edited_layout, simulator, args)
    try:
        result = eco_refill(
            problem, network, parent_layout, parent_fill,
            optimizer=SqpOptimizer(max_iter=80, tol=1e-9),
            coupling_radius=args.coupling_radius,
        )
    except ValueError as exc:
        raise CliError(str(exc))
    eco = result.extras.get("eco", {})
    print(result.summary())
    if eco.get("cache_hit"):
        print("eco: no window changed — parent solution reused as-is")
    else:
        print(f"eco: dirty={eco['dirty_windows']}/{eco['total_windows']} "
              f"windows ({eco['dirty_fraction'] * 100:.1f}%)  "
              f"free={eco['free_windows']} ({eco['free_fraction'] * 100:.1f}%)  "
              f"halo={eco['halo_radius']} "
              f"(rf {eco['rf_radius']} + coupling {eco['coupling_radius']})")
    score = evaluate_solution(problem, result.fill, result.method, simulator,
                              runtime_s=result.runtime_s)
    print(f"simulator verdict: dH={score.delta_h:.1f} A  "
          f"quality={score.quality:.3f}  overall={score.overall:.3f}")
    if args.fill_out:
        np.savez(args.fill_out, fill=result.fill)
        print(f"fill areas written to {args.fill_out}")
    return 0


def _cmd_compare(args) -> int:
    layout = _load_layout_arg(args.layout)
    simulator = CmpSimulator()
    problem = FillProblem(
        layout, ScoreCoefficients.calibrated(layout, simulator,
                                             beta_runtime=60.0)
    )
    args.seed = 0
    neurfill = _make_neurfill(layout, problem, simulator, args)
    methods = {
        "lin": lambda p: lin_fill(p),
        "tao": lambda p: tao_fill(p),
        "neurfill-pkb": lambda p: neurfill.run_pkb(),
        "neurfill-mm": lambda p: neurfill.run_multimodal(max_evaluations=500,
                                                         top_k=3),
    }
    if not args.skip_cai:
        methods["cai"] = lambda p: cai_fill(p, simulator=simulator,
                                            max_sqp_iterations=3)
    rows = run_comparison(problem, methods, simulator)
    print(format_table3([r.score for r in rows], title=f"{layout.name}"))
    return 0


def _cmd_train_surrogate(args) -> int:
    layout = _load_layout_arg(args.layout)
    simulator = CmpSimulator()
    rows, cols = layout.grid.shape
    print("pre-training the CMP neural network ...", file=sys.stderr)
    network, _, report = pretrain_surrogate(
        [layout], layout, sample_count=args.train_samples,
        tile_rows=rows, tile_cols=cols,
        base_channels=args.base_channels, depth=args.depth,
        config=TrainConfig(epochs=args.train_epochs, batch_size=8),
        simulator=simulator, seed=args.seed,
    )
    save_surrogate(args.output, network.unet, network.normalizer,
                   base_channels=args.base_channels, depth=args.depth)
    print(f"saved surrogate checkpoint to {args.output} "
          f"(relative error {report.mean_relative_error * 100:.2f}%)")
    return 0


def _cmd_serve(args) -> int:
    from .serve import FillServer, ModelRegistry, ServeConfig, ShardRouter
    from .serve.registry import parse_model_spec
    from .serve.server import serve_pipe, serve_tcp

    model_specs = []
    registry = ModelRegistry()
    for spec in args.model:
        try:
            model_specs.append(parse_model_spec(spec))
            model = registry.register_spec(spec)
        except (FileNotFoundError, ValueError) as exc:
            raise CliError(str(exc))
        print(f"registered model {model.name!r} from {model.directory}",
              file=sys.stderr)

    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.queue_capacity is not None:
        overrides["queue_capacity"] = args.queue_capacity
    if args.no_coalesce:
        overrides["max_batch"] = 1
    elif args.max_batch is not None:
        overrides["max_batch"] = args.max_batch
    if args.flush_ms is not None:
        overrides["flush_ms"] = args.flush_ms
    if args.default_timeout is not None:
        overrides["default_timeout_s"] = args.default_timeout
    if args.drain_timeout is not None:
        overrides["drain_timeout_s"] = args.drain_timeout
    if args.no_train:
        overrides["allow_train"] = False
    if args.worker_mode is not None:
        overrides["worker_mode"] = args.worker_mode
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.shadow_rate is not None:
        overrides["shadow_sample_rate"] = args.shadow_rate
    if args.drift_bound is not None:
        overrides["drift_bound"] = args.drift_bound
    if args.auto_retrain:
        overrides["auto_retrain"] = True
    if args.lifecycle_dir is not None:
        overrides["lifecycle_dir"] = args.lifecycle_dir
    try:
        serve_config = ServeConfig(**overrides)
    except ValueError as exc:
        raise CliError(str(exc))

    if serve_config.shards > 1:
        server = ShardRouter(serve_config=serve_config,
                             journal_path=args.journal,
                             model_specs=model_specs)
    else:
        server = FillServer(registry=registry, serve_config=serve_config,
                            journal_path=args.journal,
                            model_specs=model_specs)
    if args.tcp:
        host, sep, port = args.tcp.rpartition(":")
        if not sep or not port.isdigit():
            raise CliError(f"bad --tcp address {args.tcp!r}: "
                           f"expected HOST:PORT")

        def announce(address):
            print(f"repro serve listening on {address[0]}:{address[1]}",
                  file=sys.stderr)

        return serve_tcp(server, host or "127.0.0.1", int(port),
                         ready=announce)
    print("repro serve ready on stdin/stdout "
          f"({serve_config.shards} shard(s) x {serve_config.workers} "
          f"{serve_config.worker_mode} workers, queue "
          f"{serve_config.queue_capacity}, max batch "
          f"{serve_config.max_batch})", file=sys.stderr)
    return serve_pipe(server)


def _cmd_lifecycle_status(args) -> int:
    if args.tcp:
        host, sep, port = args.tcp.rpartition(":")
        if not sep or not port.isdigit():
            raise CliError(f"bad --tcp address {args.tcp!r}: "
                           f"expected HOST:PORT")
        from .serve import ServeClient
        try:
            with ServeClient.connect(host or "127.0.0.1", int(port),
                                     timeout=5.0) as client:
                status = client.lifecycle(timeout=30.0)
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise CliError(f"cannot query {args.tcp}: {exc}")
        print(json.dumps(status, indent=2, sort_keys=True, default=str))
        return 0

    from .lifecycle import STATE_FILENAME, read_state
    state_path = Path(args.lifecycle_dir)
    if state_path.is_dir():
        state_path = state_path / STATE_FILENAME
    state = read_state(state_path)
    if state is None:
        raise CliError(f"no readable lifecycle state at {state_path}")
    print(json.dumps(state, indent=2, sort_keys=True, default=str))
    return 0


_HANDLERS = {
    "gen-design": _cmd_gen_design,
    "simulate": _cmd_simulate,
    "fill": _cmd_fill,
    "eco": _cmd_eco,
    "compare": _cmd_compare,
    "train-surrogate": _cmd_train_surrogate,
    "serve": _cmd_serve,
    "lifecycle-status": _cmd_lifecycle_status,
}


def _cmd_trace(args) -> int:
    """``repro trace [-o PATH] <subcommand args...>``.

    Runs the wrapped subcommand with a fresh tracer active, writes the
    span/event JSONL to ``--trace-out`` and prints the human summary to
    stderr (protocol-safe: stdout stays the subcommand's).
    """
    from .obs import format_summary, metrics, trace

    rest = list(args.argv)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        raise CliError("trace needs a subcommand to run, e.g. "
                       "'repro trace fill a.json --method lin'")
    if rest[0] == "trace":
        raise CliError("trace cannot wrap itself")
    inner = _build_parser().parse_args(rest)
    tracer = trace.Tracer()
    metrics.reset()  # the summary should reflect the wrapped command only
    with trace.capture(path=args.trace_out, tracer=tracer):
        rc = _HANDLERS[inner.command](inner)
    print(format_summary(tracer, metrics.registry()), file=sys.stderr)
    print(f"trace written to {args.trace_out} "
          f"({len(tracer.records())} records)", file=sys.stderr)
    return rc


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "trace":
            return _cmd_trace(args)
        if args.profile:
            from .obs import format_summary, metrics, trace

            tracer = trace.Tracer()
            with trace.capture(tracer=tracer):
                rc = _HANDLERS[args.command](args)
            print(format_summary(tracer, metrics.registry()),
                  file=sys.stderr)
            return rc
        return _HANDLERS[args.command](args)
    except CliError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
