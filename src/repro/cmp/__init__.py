"""Full-chip CMP simulator substrate (paper Fig. 2)."""

from .dsh import contact_fraction, removal_rates
from .numgrad import (
    central_difference_gradient,
    count_simulator_calls,
    forward_difference_gradient,
    forward_difference_gradient_batched,
)
from .pad import conformed_reference, solve_pressure
from .preston import preston_rate, removed_amount
from .process import DEFAULT_PROCESS, ProcessParams
from .simulator import CmpResult, CmpSimulator, effective_density

__all__ = [
    "DEFAULT_PROCESS",
    "CmpResult",
    "CmpSimulator",
    "ProcessParams",
    "central_difference_gradient",
    "conformed_reference",
    "contact_fraction",
    "count_simulator_calls",
    "effective_density",
    "forward_difference_gradient",
    "forward_difference_gradient_batched",
    "preston_rate",
    "removal_rates",
    "removed_amount",
    "solve_pressure",
]
