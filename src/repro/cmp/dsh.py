"""Density-step-height (DSH) removal-rate model (step 3 of Fig. 2).

Within each window the pattern is abstracted as *up* areas (raised
features, area fraction equal to the effective density ``rho``) separated
from *down* areas by the step height ``s``.  Following the DSH model of
Cai's MIT thesis [17]:

* while the step is taller than the pad contact height ``h_c`` the pad
  rides only on the up areas, concentrating the whole load there:
  ``RR_up = R_blanket / rho`` and ``RR_down = 0``;
* once ``s < h_c`` the pad progressively touches down areas; the load is
  shared with a linear contact fraction ``phi = s / h_c``:

  .. math::
     RR_{up} = \\frac{R}{\\rho + (1-\\rho)(1-\\phi)}, \\qquad
     RR_{down} = (1-\\phi) \\; RR_{up}

  which recovers the blanket rate at ``s = 0`` and the full load
  concentration at ``s = h_c``.

``R_blanket`` itself comes from the Preston equation with the *local*
window pressure, so pressure coupling from :mod:`repro.cmp.pad` feeds in
here.
"""

from __future__ import annotations

import numpy as np

from .preston import preston_rate
from .process import ProcessParams


def contact_fraction(step_height: np.ndarray, params: ProcessParams) -> np.ndarray:
    """Fraction ``phi`` of the load still concentrated by the step."""
    return np.clip(step_height / params.contact_height_a, 0.0, 1.0)


def removal_rates(
    density: np.ndarray,
    step_height: np.ndarray,
    pressure: np.ndarray,
    params: ProcessParams,
) -> tuple[np.ndarray, np.ndarray]:
    """Up/down removal rates (Angstrom/s) for every window.

    Every operation here is elementwise, so the inputs may carry any
    number of leading axes — ``(N, M)`` maps, ``(L, N, M)`` layer stacks
    or ``(B, L, N, M)`` batches of layouts — and nothing ever couples
    neighbouring windows, layers or batch entries (the leading-axes
    kernel contract).  The inputs' floating dtype is preserved.

    Args:
        density: effective up-area fraction, clipped into
            ``[min_effective_density, 1]`` by the caller or here.
        step_height: current up-minus-down height (Angstrom, >= 0).
        pressure: local pad pressure (psi).
        params: process parameters.

    Returns:
        ``(rate_up, rate_down)`` arrays of the input shape.
    """
    rho = np.clip(density, params.min_effective_density, 1.0)
    blanket = preston_rate(pressure, params)
    phi = contact_fraction(np.maximum(step_height, 0.0), params)
    carrier = rho + (1.0 - rho) * (1.0 - phi)
    rate_up = blanket / carrier
    rate_down = (1.0 - phi) * rate_up
    return rate_up, rate_down
