"""Numerical gradients through the black-box CMP simulator.

Existing model-based fillers (Cai [12]) treat the CMP simulator as a
nonlinear black box and estimate objective gradients by finite
differences: one full-chip simulation per perturbed fill variable.  With
``L*N*M`` variables this is the runtime bottleneck the paper's Table I
quantifies (34 100 s on one core vs 0.067 s for backprop).

This module reproduces that bottleneck faithfully — it is used both by the
Cai baseline optimizer and by the Table I benchmark.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

ScalarField = Callable[[np.ndarray], float]


def forward_difference_gradient(
    objective: ScalarField,
    x: np.ndarray,
    eps: float = 1.0,
    upper: np.ndarray | None = None,
    indices: np.ndarray | None = None,
) -> np.ndarray:
    """Forward-difference gradient of ``objective`` at ``x``.

    Args:
        objective: scalar function of the (flattened or shaped) fill vector.
        x: evaluation point; perturbed entry-by-entry.
        eps: perturbation size (um^2 of fill; the objective varies over
            thousands of um^2 so 1.0 is a relative step of ~1e-4).
        upper: optional elementwise upper bound; entries at the bound are
            perturbed backwards so the probe stays feasible.
        indices: optional flat indices to differentiate (default: all).
            The Cai baseline exploits this for block-coordinate updates;
            Table I measures the full pass.

    Returns:
        Gradient array of ``x``'s shape (zeros at untouched indices).
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    base = objective(x)
    flat = x.ravel()
    grad = np.zeros_like(flat)
    ub = None if upper is None else upper.ravel()
    idx_iter = range(flat.size) if indices is None else np.asarray(indices).ravel()
    for k in idx_iter:
        step = eps
        if ub is not None and flat[k] + eps > ub[k]:
            step = -eps
        probe = flat.copy()
        probe[k] += step
        grad[k] = (objective(probe.reshape(x.shape)) - base) / step
    return grad.reshape(x.shape)


def central_difference_gradient(
    objective: ScalarField,
    x: np.ndarray,
    eps: float = 1.0,
    indices: np.ndarray | None = None,
) -> np.ndarray:
    """Central-difference gradient (twice the cost, second-order accurate)."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    flat = x.ravel()
    grad = np.zeros_like(flat)
    idx_iter = range(flat.size) if indices is None else np.asarray(indices).ravel()
    for k in idx_iter:
        hi = flat.copy()
        lo = flat.copy()
        hi[k] += eps
        lo[k] -= eps
        grad[k] = (objective(hi.reshape(x.shape)) - objective(lo.reshape(x.shape))) / (2 * eps)
    return grad.reshape(x.shape)


def count_simulator_calls(n_variables: int, scheme: str = "forward") -> int:
    """Number of full-chip simulations one gradient evaluation needs.

    Useful for runtime projections in the Table I benchmark without
    actually running thousands of simulations.
    """
    if scheme == "forward":
        return n_variables + 1
    if scheme == "central":
        return 2 * n_variables
    raise ValueError(f"unknown scheme {scheme!r}")
