"""Numerical gradients through the black-box CMP simulator.

Existing model-based fillers (Cai [12]) treat the CMP simulator as a
nonlinear black box and estimate objective gradients by finite
differences: one full-chip simulation per perturbed fill variable.  With
``L*N*M`` variables this is the runtime bottleneck the paper's Table I
quantifies (34 100 s on one core vs 0.067 s for backprop).

This module reproduces that bottleneck faithfully — it is used both by the
Cai baseline optimizer and by the Table I benchmark.

:func:`forward_difference_gradient_batched` keeps the *honest* simulation
count (one full-chip polish per perturbed variable) but evaluates the
probes through a batched objective —
:meth:`repro.cmp.simulator.CmpSimulator.simulate_batch` under the hood —
so the thousands of polishes amortise their per-call Python overhead.
Because the batched simulator is bitwise identical to a loop of solo
simulations, the batched gradient is bitwise identical to
:func:`forward_difference_gradient` on the same objective.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

ScalarField = Callable[[np.ndarray], float]

#: Batched objective: maps a ``(P, *x.shape)`` stack of evaluation points
#: to a ``(P,)`` array of values, entry ``p`` equal to the scalar
#: objective at ``stack[p]``.
BatchScalarField = Callable[[np.ndarray], np.ndarray]


def forward_difference_gradient(
    objective: ScalarField,
    x: np.ndarray,
    eps: float = 1.0,
    upper: np.ndarray | None = None,
    indices: np.ndarray | None = None,
) -> np.ndarray:
    """Forward-difference gradient of ``objective`` at ``x``.

    Args:
        objective: scalar function of the (flattened or shaped) fill vector.
        x: evaluation point; perturbed entry-by-entry.
        eps: perturbation size (um^2 of fill; the objective varies over
            thousands of um^2 so 1.0 is a relative step of ~1e-4).
        upper: optional elementwise upper bound; entries at the bound are
            perturbed backwards so the probe stays feasible.
        indices: optional flat indices to differentiate (default: all).
            The Cai baseline exploits this for block-coordinate updates;
            Table I measures the full pass.

    Returns:
        Gradient array of ``x``'s shape (zeros at untouched indices).
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    base = objective(x)
    flat = x.ravel()
    grad = np.zeros_like(flat)
    ub = None if upper is None else upper.ravel()
    idx_iter = range(flat.size) if indices is None else np.asarray(indices).ravel()
    for k in idx_iter:
        step = eps
        if ub is not None and flat[k] + eps > ub[k]:
            step = -eps
        probe = flat.copy()
        probe[k] += step
        grad[k] = (objective(probe.reshape(x.shape)) - base) / step
    return grad.reshape(x.shape)


def forward_difference_gradient_batched(
    objective_batch: BatchScalarField,
    x: np.ndarray,
    eps: float = 1.0,
    upper: np.ndarray | None = None,
    indices: np.ndarray | None = None,
    batch_size: int = 32,
    base: float | None = None,
) -> np.ndarray:
    """Forward-difference gradient with batched probe evaluation.

    Builds the exact probes :func:`forward_difference_gradient` would
    (same ``eps`` sign flips at the upper bound) and feeds them to
    ``objective_batch`` in chunks of ``batch_size`` stacked points, so a
    simulator-backed objective pays one vectorised polish per chunk
    instead of one Python-driven polish per variable.

    Args:
        objective_batch: maps ``(P, *x.shape)`` stacked points to a
            ``(P,)`` value array, each entry equal to the scalar
            objective at that point (the contract
            :meth:`repro.baselines.cai.SimulatorQuality.quality_batch`
            provides via the batched simulator).
        x: evaluation point.
        eps: perturbation size.
        upper: optional elementwise upper bound; entries at the bound
            are perturbed backwards so the probe stays feasible.
        indices: optional flat indices to differentiate (default: all).
        batch_size: probes per batched evaluation (bounds peak memory at
            ``batch_size`` simultaneous full-chip simulations).
        base: objective value at ``x`` if the caller already has it;
            ``None`` evaluates it here (as a singleton batch).

    Returns:
        Gradient array of ``x``'s shape (zeros at untouched indices),
        bitwise equal to the sequential function's result whenever
        ``objective_batch`` matches a loop of scalar evaluations.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if base is None:
        out = np.asarray(objective_batch(x[np.newaxis]))
        if out.shape != (1,):
            raise ValueError(
                f"objective_batch returned shape {out.shape} for a "
                "1-point stack; expected (1,)")
        base = float(out[0])
    flat = x.ravel()
    ub = None if upper is None else upper.ravel()
    idx = (np.arange(flat.size) if indices is None
           else np.asarray(indices).ravel())
    steps = np.full(idx.shape, eps, dtype=float)
    if ub is not None:
        steps = np.where(flat[idx] + eps > ub[idx], -eps, steps)
    values = np.empty(idx.size)
    for start in range(0, idx.size, batch_size):
        sel = idx[start : start + batch_size]
        chunk = np.repeat(flat[np.newaxis, :], sel.size, axis=0)
        chunk[np.arange(sel.size), sel] += steps[start : start + sel.size]
        out = np.asarray(
            objective_batch(chunk.reshape((sel.size,) + x.shape)))
        if out.shape != (sel.size,):
            raise ValueError(
                f"objective_batch returned shape {out.shape} for a "
                f"{sel.size}-point stack; expected ({sel.size},)")
        values[start : start + sel.size] = out
    grad = np.zeros_like(flat)
    grad[idx] = (values - base) / steps
    return grad.reshape(x.shape)


def central_difference_gradient(
    objective: ScalarField,
    x: np.ndarray,
    eps: float = 1.0,
    indices: np.ndarray | None = None,
) -> np.ndarray:
    """Central-difference gradient (twice the cost, second-order accurate)."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    flat = x.ravel()
    grad = np.zeros_like(flat)
    idx_iter = range(flat.size) if indices is None else np.asarray(indices).ravel()
    for k in idx_iter:
        hi = flat.copy()
        lo = flat.copy()
        hi[k] += eps
        lo[k] -= eps
        grad[k] = (objective(hi.reshape(x.shape)) - objective(lo.reshape(x.shape))) / (2 * eps)
    return grad.reshape(x.shape)


def count_simulator_calls(n_variables: int, scheme: str = "forward") -> int:
    """Number of full-chip simulations one gradient evaluation needs.

    Useful for runtime projections in the Table I benchmark without
    actually running thousands of simulations.
    """
    if scheme == "forward":
        return n_variables + 1
    if scheme == "central":
        return 2 * n_variables
    raise ValueError(f"unknown scheme {scheme!r}")
