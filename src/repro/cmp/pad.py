"""Rough-pad contact mechanics: window pressure from the envelope profile.

Step (2) of the paper's simulator flow (Fig. 2) solves contact/fluid
mechanics for the average pressure each window sees.  We implement the
standard long-wavelength contact picture of [16]:

* the pad conforms to topography over a *character length* of 20-100 um,
  so each window's pressure depends on its envelope height relative to a
  reference surface obtained by smoothing the envelope with a kernel of
  that width;
* windows standing above the reference carry extra load, windows below
  carry less; pressure cannot go negative (the pad lifts off);
* total load is conserved: the mean pressure over the chip equals the
  applied down pressure.

The lift-off clamp makes the problem mildly nonlinear; a short fixed-point
iteration redistributes the load shed by separated windows.

Performance: :func:`solve_pressure` runs once per simulator time step —
``num_steps`` (default 60) times per teacher simulation, thousands of
times during dataset generation — so the Gaussian smoothing behind
:func:`conformed_reference` uses a **precomputed separable smoother**
cached per ``(axis length, sigma)`` instead of re-deriving the kernel
every call (the same plan-once/reuse idiom as
:mod:`repro.nn.dispatch`).  Small grids (the datagen regime) apply a
cached dense smoothing matrix per axis via BLAS; large grids fall back to
a cached-kernel windowed correlation.  Both reproduce
``scipy.ndimage.gaussian_filter(..., mode="nearest")`` to machine
precision without importing scipy on the hot path.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .process import ProcessParams

#: Axis lengths up to this use a dense cached smoothing matrix (one GEMM
#: per axis); longer axes use the cached-kernel windowed correlation.
DENSE_SMOOTHER_MAX: int = 128

#: Kernel truncation in standard deviations (matches scipy's default).
_TRUNCATE: float = 4.0

_MAX_CACHED_SMOOTHERS: int = 16

_smoothers: dict[tuple[int, float, np.dtype],
                 tuple[str, np.ndarray, int]] = {}


def _gaussian_kernel1d(sigma: float) -> np.ndarray:
    """scipy-compatible normalised Gaussian taps (radius ``4 sigma``)."""
    radius = int(_TRUNCATE * sigma + 0.5)
    x = np.arange(-radius, radius + 1, dtype=float)
    kernel = np.exp(-0.5 * (x / sigma) ** 2)
    return kernel / kernel.sum()


def _axis_smoother(n: int, sigma: float,
                   dtype: np.dtype) -> tuple[str, np.ndarray, int]:
    """Cached per-axis smoother: ``("dense", S, r)`` or ``("window", k, r)``.

    The taps are derived in float64 and stored per compute dtype, so a
    float32 polish (the opt-in reduced-precision mode) contracts against
    float32 taps instead of silently upcasting every map to float64.
    """
    key = (n, float(sigma), dtype)
    hit = _smoothers.get(key)
    if hit is not None:
        return hit
    kernel = _gaussian_kernel1d(sigma)
    radius = (kernel.size - 1) // 2
    if n <= DENSE_SMOOTHER_MAX:
        # Dense matrix with nearest-edge clamping folded into the taps.
        matrix = np.zeros((n, n))
        cols = np.clip(np.arange(n)[:, None] + np.arange(-radius, radius + 1),
                       0, n - 1)
        np.add.at(
            matrix,
            (np.repeat(np.arange(n), kernel.size), cols.ravel()),
            np.tile(kernel, n),
        )
        entry = ("dense", matrix.astype(dtype, copy=False), radius)
    else:
        entry = ("window", kernel.astype(dtype, copy=False), radius)
    while len(_smoothers) >= _MAX_CACHED_SMOOTHERS:
        _smoothers.pop(next(iter(_smoothers)))
    _smoothers[key] = entry
    return entry


def _smooth_axis(values: np.ndarray, axis: int, sigma: float) -> np.ndarray:
    """Gaussian-smooth one of the two trailing axes (nearest-edge mode)."""
    n = values.shape[axis]
    kind, data, radius = _axis_smoother(n, sigma, values.dtype)
    if kind == "dense":
        if axis == values.ndim - 1:
            return values @ data.T
        return np.matmul(data, values)  # broadcasts over leading axes
    pad = [(0, 0)] * values.ndim
    pad[axis] = (radius, radius)
    padded = np.pad(values, pad, mode="edge")
    # sliding_window_view keeps `axis` in place (at the output length)
    # and appends the tap axis last; the dot contracts it away.
    return sliding_window_view(padded, 2 * radius + 1, axis=axis) @ data


def clear_smoother_cache() -> None:
    """Drop all cached per-axis smoothers (used by tests and benches)."""
    _smoothers.clear()


def conformed_reference(envelope: np.ndarray, window_um: float,
                        params: ProcessParams) -> np.ndarray:
    """Pad-conformed reference surface.

    The pad bulk follows topography with wavelengths longer than the
    planarization length, so the reference is the envelope smoothed with a
    Gaussian of that width (edge-replicated).  Topography shorter than
    this shows up as ``envelope - reference`` and draws extra pressure.

    Accepts a single ``(N, M)`` map or an array with any number of
    leading axes — ``(L, N, M)`` layer stacks, ``(B, L, N, M)`` batches
    of layouts, and so on.  Only the two trailing window axes are ever
    smoothed: each leading-axis slice is an independent map, so the
    smoothing never crosses layers or batch entries (the leading-axes
    kernel contract, see DESIGN.md "Batched CMP simulator").

    The input's floating dtype is preserved (float32 stays float32);
    non-float inputs are promoted to float64.
    """
    sigma = max(params.planarization_length_um / window_um, 1e-6)
    envelope = np.asarray(envelope)
    if not np.issubdtype(envelope.dtype, np.floating):
        envelope = envelope.astype(np.float64)
    smoothed = _smooth_axis(envelope, envelope.ndim - 1, sigma)
    return _smooth_axis(smoothed, envelope.ndim - 2, sigma)


def solve_pressure(
    envelope: np.ndarray,
    window_um: float,
    params: ProcessParams,
    max_iter: int = 25,
    tol: float = 1e-10,
    batch_ndim: int = 0,
) -> np.ndarray:
    """Per-window pressure (psi) for a given envelope height map (Angstrom).

    Args:
        envelope: ``(N, M)`` envelope heights, or an array with any
            number of leading axes — ``(L, N, M)`` for all layers of one
            layout, ``(B, L, N, M)`` for a batch of layouts.  Each layer
            balances its own load; smoothing never crosses leading axes.
        window_um: window side length (sets the smoothing width in cells).
        params: process parameters (nominal pressure, stiffness, length).
        max_iter: fixed-point iterations for the lift-off redistribution.
        tol: convergence tolerance on the mean-pressure balance.
        batch_ndim: number of leading axes that index *independent
            simulations*.  The lift-off fixed point iterates until every
            layer of one simulation balances, exactly as a solo call on
            that simulation would; with ``batch_ndim > 0`` each leading
            entry converges (and freezes) on its own schedule, which is
            what makes a batched call bitwise identical to a Python loop
            of per-simulation calls.  ``0`` (the default) treats the
            whole input as one simulation — the historical behaviour.

    Returns:
        Non-negative pressures of the input shape whose per-layer mean
        equals ``params.pressure_psi`` (load balance) up to ``tol``.
    """
    if envelope.ndim < 2:
        raise ValueError(
            f"envelope must have at least 2 dims, got shape {envelope.shape}")
    if not 0 <= batch_ndim <= envelope.ndim - 2:
        raise ValueError(
            f"batch_ndim must be in [0, {envelope.ndim - 2}] for shape "
            f"{envelope.shape}, got {batch_ndim}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    reference = conformed_reference(envelope, window_um, params)
    base = 1.0 + params.pad_stiffness * (envelope - reference)
    p0 = params.pressure_psi
    layer_axes = (-2, -1)
    # Axes spanning one simulation; reductions over them with keepdims
    # leave per-simulation masks that broadcast against the full stack.
    sim_axes = tuple(range(batch_ndim, base.ndim))
    lifted = np.any(base <= 0.0, axis=sim_axes, keepdims=True)

    # Fast path: no lift-off in a simulation (the common case for the
    # gentle topographies of teacher runs).  The fixed point is then
    # linear and one exact rescale balances the load — no iteration.
    fast = None
    if not np.all(lifted):
        pressure = base * p0
        mean = pressure.mean(axis=layer_axes, keepdims=True)
        balanced = np.max(np.abs(mean - p0), axis=sim_axes,
                          keepdims=True) <= tol * p0
        fast = np.where(balanced, pressure, pressure * (p0 / mean))
        if not np.any(lifted):
            return fast

    # Lift-off somewhere: fixed-point redistribution.  Simulations that
    # reach balance freeze (their pressure and scale stop updating) while
    # the rest keep iterating — mirroring the early ``break`` a solo call
    # takes, so every batch entry sees the solo operation sequence.
    scale = np.ones(base.shape[:-2] + (1, 1), dtype=base.dtype)
    done = ~lifted
    slow = None
    for _ in range(max_iter):
        pressure = np.maximum(base * scale, 0.0) * p0
        mean = pressure.mean(axis=layer_axes, keepdims=True)
        degenerate = mean <= 0
        if np.any(degenerate):
            # Everything clipped on some layer: uniform-load fallback.
            pressure = np.where(degenerate, p0, pressure)
            mean = np.where(degenerate, p0, mean)
        slow = pressure if slow is None else np.where(done, slow, pressure)
        newly_done = done | (np.max(np.abs(mean - p0), axis=sim_axes,
                                    keepdims=True) <= tol * p0)
        if np.all(newly_done):
            break
        scale = np.where(newly_done, scale, scale * (p0 / mean))
        done = newly_done
    if fast is None:
        return slow
    return np.where(lifted, slow, fast)
