"""Rough-pad contact mechanics: window pressure from the envelope profile.

Step (2) of the paper's simulator flow (Fig. 2) solves contact/fluid
mechanics for the average pressure each window sees.  We implement the
standard long-wavelength contact picture of [16]:

* the pad conforms to topography over a *character length* of 20-100 um,
  so each window's pressure depends on its envelope height relative to a
  reference surface obtained by smoothing the envelope with a kernel of
  that width;
* windows standing above the reference carry extra load, windows below
  carry less; pressure cannot go negative (the pad lifts off);
* total load is conserved: the mean pressure over the chip equals the
  applied down pressure.

The lift-off clamp makes the problem mildly nonlinear; a short fixed-point
iteration redistributes the load shed by separated windows.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from .process import ProcessParams


def conformed_reference(envelope: np.ndarray, window_um: float,
                        params: ProcessParams) -> np.ndarray:
    """Pad-conformed reference surface.

    The pad bulk follows topography with wavelengths longer than the
    planarization length, so the reference is the envelope smoothed with a
    Gaussian of that width (edge-replicated).  Topography shorter than
    this shows up as ``envelope - reference`` and draws extra pressure.

    Accepts a single ``(N, M)`` map or a stacked ``(L, N, M)`` array
    (layers polish independently; the smoothing never crosses layers).
    """
    sigma = max(params.planarization_length_um / window_um, 1e-6)
    if envelope.ndim == 2:
        return gaussian_filter(envelope, sigma=sigma, mode="nearest")
    return gaussian_filter(envelope, sigma=(0.0, sigma, sigma), mode="nearest")


def solve_pressure(
    envelope: np.ndarray,
    window_um: float,
    params: ProcessParams,
    max_iter: int = 25,
    tol: float = 1e-10,
) -> np.ndarray:
    """Per-window pressure (psi) for a given envelope height map (Angstrom).

    Args:
        envelope: ``(N, M)`` envelope heights, or ``(L, N, M)`` for all
            layers at once (each layer balances its own load).
        window_um: window side length (sets the smoothing width in cells).
        params: process parameters (nominal pressure, stiffness, length).
        max_iter: fixed-point iterations for the lift-off redistribution.
        tol: convergence tolerance on the mean-pressure balance.

    Returns:
        Non-negative pressures of the input shape whose per-layer mean
        equals ``params.pressure_psi`` (load balance) up to ``tol``.
    """
    if envelope.ndim not in (2, 3):
        raise ValueError(f"envelope must be 2-D or 3-D, got shape {envelope.shape}")
    reference = conformed_reference(envelope, window_um, params)
    base = 1.0 + params.pad_stiffness * (envelope - reference)
    p0 = params.pressure_psi
    layer_axes = (-2, -1)

    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    scale = np.array(1.0) if envelope.ndim == 2 else np.ones((envelope.shape[0], 1, 1))
    for _ in range(max_iter):
        pressure = np.maximum(base * scale, 0.0) * p0
        mean = pressure.mean(axis=layer_axes, keepdims=True)
        degenerate = mean <= 0
        if np.any(degenerate):
            # Everything clipped on some layer: uniform-load fallback.
            pressure = np.where(degenerate, p0, pressure)
            mean = np.where(degenerate, p0, mean)
        if float(np.max(np.abs(mean - p0))) <= tol * p0:
            break
        scale = scale * (p0 / mean)
    return pressure
