"""Rough-pad contact mechanics: window pressure from the envelope profile.

Step (2) of the paper's simulator flow (Fig. 2) solves contact/fluid
mechanics for the average pressure each window sees.  We implement the
standard long-wavelength contact picture of [16]:

* the pad conforms to topography over a *character length* of 20-100 um,
  so each window's pressure depends on its envelope height relative to a
  reference surface obtained by smoothing the envelope with a kernel of
  that width;
* windows standing above the reference carry extra load, windows below
  carry less; pressure cannot go negative (the pad lifts off);
* total load is conserved: the mean pressure over the chip equals the
  applied down pressure.

The lift-off clamp makes the problem mildly nonlinear; a short fixed-point
iteration redistributes the load shed by separated windows.

Performance: :func:`solve_pressure` runs once per simulator time step —
``num_steps`` (default 60) times per teacher simulation, thousands of
times during dataset generation — so the Gaussian smoothing behind
:func:`conformed_reference` uses a **precomputed separable smoother**
cached per ``(axis length, sigma)`` instead of re-deriving the kernel
every call (the same plan-once/reuse idiom as
:mod:`repro.nn.dispatch`).  Small grids (the datagen regime) apply a
cached dense smoothing matrix per axis via BLAS; large grids fall back to
a cached-kernel windowed correlation.  Both reproduce
``scipy.ndimage.gaussian_filter(..., mode="nearest")`` to machine
precision without importing scipy on the hot path.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .process import ProcessParams

#: Axis lengths up to this use a dense cached smoothing matrix (one GEMM
#: per axis); longer axes use the cached-kernel windowed correlation.
DENSE_SMOOTHER_MAX: int = 128

#: Kernel truncation in standard deviations (matches scipy's default).
_TRUNCATE: float = 4.0

_MAX_CACHED_SMOOTHERS: int = 16

_smoothers: dict[tuple[int, float], tuple[str, np.ndarray, int]] = {}


def _gaussian_kernel1d(sigma: float) -> np.ndarray:
    """scipy-compatible normalised Gaussian taps (radius ``4 sigma``)."""
    radius = int(_TRUNCATE * sigma + 0.5)
    x = np.arange(-radius, radius + 1, dtype=float)
    kernel = np.exp(-0.5 * (x / sigma) ** 2)
    return kernel / kernel.sum()


def _axis_smoother(n: int, sigma: float) -> tuple[str, np.ndarray, int]:
    """Cached per-axis smoother: ``("dense", S, r)`` or ``("window", k, r)``."""
    key = (n, float(sigma))
    hit = _smoothers.get(key)
    if hit is not None:
        return hit
    kernel = _gaussian_kernel1d(sigma)
    radius = (kernel.size - 1) // 2
    if n <= DENSE_SMOOTHER_MAX:
        # Dense matrix with nearest-edge clamping folded into the taps.
        matrix = np.zeros((n, n))
        cols = np.clip(np.arange(n)[:, None] + np.arange(-radius, radius + 1),
                       0, n - 1)
        np.add.at(
            matrix,
            (np.repeat(np.arange(n), kernel.size), cols.ravel()),
            np.tile(kernel, n),
        )
        entry = ("dense", matrix, radius)
    else:
        entry = ("window", kernel, radius)
    while len(_smoothers) >= _MAX_CACHED_SMOOTHERS:
        _smoothers.pop(next(iter(_smoothers)))
    _smoothers[key] = entry
    return entry


def _smooth_axis(values: np.ndarray, axis: int, sigma: float) -> np.ndarray:
    """Gaussian-smooth one of the two trailing axes (nearest-edge mode)."""
    n = values.shape[axis]
    kind, data, radius = _axis_smoother(n, sigma)
    if kind == "dense":
        if axis == values.ndim - 1:
            return values @ data.T
        return np.matmul(data, values)  # broadcasts over leading axes
    pad = [(0, 0)] * values.ndim
    pad[axis] = (radius, radius)
    padded = np.pad(values, pad, mode="edge")
    # sliding_window_view keeps `axis` in place (at the output length)
    # and appends the tap axis last; the dot contracts it away.
    return sliding_window_view(padded, 2 * radius + 1, axis=axis) @ data


def clear_smoother_cache() -> None:
    """Drop all cached per-axis smoothers (used by tests and benches)."""
    _smoothers.clear()


def conformed_reference(envelope: np.ndarray, window_um: float,
                        params: ProcessParams) -> np.ndarray:
    """Pad-conformed reference surface.

    The pad bulk follows topography with wavelengths longer than the
    planarization length, so the reference is the envelope smoothed with a
    Gaussian of that width (edge-replicated).  Topography shorter than
    this shows up as ``envelope - reference`` and draws extra pressure.

    Accepts a single ``(N, M)`` map or a stacked ``(L, N, M)`` array
    (layers polish independently; the smoothing never crosses layers).
    """
    sigma = max(params.planarization_length_um / window_um, 1e-6)
    envelope = np.asarray(envelope, dtype=float)
    smoothed = _smooth_axis(envelope, envelope.ndim - 1, sigma)
    return _smooth_axis(smoothed, envelope.ndim - 2, sigma)


def solve_pressure(
    envelope: np.ndarray,
    window_um: float,
    params: ProcessParams,
    max_iter: int = 25,
    tol: float = 1e-10,
) -> np.ndarray:
    """Per-window pressure (psi) for a given envelope height map (Angstrom).

    Args:
        envelope: ``(N, M)`` envelope heights, or ``(L, N, M)`` for all
            layers at once (each layer balances its own load).
        window_um: window side length (sets the smoothing width in cells).
        params: process parameters (nominal pressure, stiffness, length).
        max_iter: fixed-point iterations for the lift-off redistribution.
        tol: convergence tolerance on the mean-pressure balance.

    Returns:
        Non-negative pressures of the input shape whose per-layer mean
        equals ``params.pressure_psi`` (load balance) up to ``tol``.
    """
    if envelope.ndim not in (2, 3):
        raise ValueError(f"envelope must be 2-D or 3-D, got shape {envelope.shape}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    reference = conformed_reference(envelope, window_um, params)
    base = 1.0 + params.pad_stiffness * (envelope - reference)
    p0 = params.pressure_psi
    layer_axes = (-2, -1)

    # Fast path: no lift-off anywhere (the common case for the gentle
    # topographies of teacher simulations).  The fixed point is then
    # linear and one exact rescale balances the load — no iteration.
    if np.all(base > 0.0):
        pressure = base * p0
        mean = pressure.mean(axis=layer_axes, keepdims=True)
        if float(np.max(np.abs(mean - p0))) <= tol * p0:
            return pressure
        return pressure * (p0 / mean)

    scale = np.array(1.0) if envelope.ndim == 2 else np.ones((envelope.shape[0], 1, 1))
    for _ in range(max_iter):
        pressure = np.maximum(base * scale, 0.0) * p0
        mean = pressure.mean(axis=layer_axes, keepdims=True)
        degenerate = mean <= 0
        if np.any(degenerate):
            # Everything clipped on some layer: uniform-load fallback.
            pressure = np.where(degenerate, p0, pressure)
            mean = np.where(degenerate, p0, mean)
        if float(np.max(np.abs(mean - p0))) <= tol * p0:
            break
        scale = scale * (p0 / mean)
    return pressure
