"""Preston equation (step 4 of Fig. 2): removal per unit polish time.

Cook's classic relation [18]: the material removal rate is proportional to
the product of local pressure and relative velocity,
``RR = K_p * P * V``.
"""

from __future__ import annotations

import numpy as np

from .process import ProcessParams


def preston_rate(pressure: np.ndarray | float, params: ProcessParams) -> np.ndarray | float:
    """Blanket removal rate (Angstrom/s) at local ``pressure`` (psi)."""
    return params.preston_coefficient * pressure * params.velocity_mps


def removed_amount(
    pressure: np.ndarray | float, dt_s: float, params: ProcessParams
) -> np.ndarray | float:
    """Material removed (Angstrom) during ``dt_s`` seconds of polishing."""
    if dt_s < 0:
        raise ValueError(f"negative polish interval: {dt_s}")
    return preston_rate(pressure, params) * dt_s
