"""CMP process parameters (45 nm-like calibration).

The paper's simulator is "calibrated under a 45nm process of a foundry";
we obviously cannot ship that calibration, so :class:`ProcessParams`
carries a physically plausible parameter set with the same structure:
Preston constant, down pressure and relative velocity, rough-pad contact
character length (the 20-100 um range of [16] that motivates the conv-net
analogy), DSH contact height, and polish schedule.

Heights are in Angstroms, lateral lengths in micrometres, time in seconds
and pressure in psi throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ProcessParams:
    """Parameters of the full-chip CMP process model.

    Attributes:
        preston_coefficient: ``K_p`` such that the blanket removal rate is
            ``K_p * pressure * velocity`` (Angstrom / s per psi*(m/s)).
        pressure_psi: nominal applied down pressure ``P0``.
        velocity_mps: relative pad-wafer velocity.
        character_length_um: lateral range over which the rough pad's
            asperities correlate (paper cites 20-100 um [16]); documents
            the within-window contact scale that motivates the conv-net
            locality argument.
        planarization_length_um: lateral scale of the pad's pressure
            coupling: topography shorter than this draws a pressure excess
            and is planarized; longer topography is conformed to.  Kept at
            the top of the paper's 20-100 um character-length range [16],
            which is what bounds the number of correlated windows and
            makes a convolutional surrogate with a modest receptive field
            faithful (Section III-B).
        pad_stiffness: dimensionless gain converting relative envelope
            height (Angstrom, vs the pad-conformed reference) into a
            pressure perturbation fraction.
        contact_height_a: DSH model contact height ``h_c`` (Angstrom):
            the step height below which the pad begins to touch down areas.
        polish_time_s: total polish time per layer.
        time_step_s: integration step of the polish loop.
        initial_film_a: film thickness above the substrate before polish
            (at the down-area level); reported heights are the remaining
            absolute film thickness, so they stay positive for sensible
            polish schedules — matching the paper's "positive height of
            each window".
        deposition_bias_um: conformal deposition widens features; effective
            density gains ``perimeter * bias / (2 * window_area)``.
        dishing_coefficient: Angstrom of dishing per (psi * um of wire
            width) at end of polish.
        erosion_coefficient: Angstrom of erosion per (psi * unit density *
            second of over-polish).
        min_effective_density: clamp to keep the DSH load division finite
            in empty windows.
        max_effective_density: upper clamp on the post-deposition up-area
            fraction; conformal deposition can merge features but never
            produces a fully blanket (100% up) window.
        stack_topography: when True, each layer's deposition conforms to
            the residual topography the previous layer left behind
            (multilevel metallisation coupling); layers then polish
            sequentially instead of independently.
        stacking_attenuation: fraction of the previous layer's residual
            (mean-removed) topography carried into the next layer's
            starting surfaces.
    """

    preston_coefficient: float = 60.0
    pressure_psi: float = 5.0
    velocity_mps: float = 1.0
    character_length_um: float = 60.0
    planarization_length_um: float = 100.0
    pad_stiffness: float = 3.0e-4
    contact_height_a: float = 500.0
    polish_time_s: float = 60.0
    time_step_s: float = 1.0
    initial_film_a: float = 20000.0
    deposition_bias_um: float = 0.03
    dishing_coefficient: float = 2.0
    erosion_coefficient: float = 0.5
    min_effective_density: float = 0.02
    max_effective_density: float = 0.98
    stack_topography: bool = False
    stacking_attenuation: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.stacking_attenuation <= 1.0:
            raise ValueError("stacking_attenuation must be in [0, 1]")
        if self.polish_time_s <= 0 or self.time_step_s <= 0:
            raise ValueError("polish/time step must be positive")
        if self.time_step_s > self.polish_time_s:
            raise ValueError("time step larger than total polish time")
        if not (0 < self.min_effective_density < 1):
            raise ValueError("min_effective_density must be in (0, 1)")
        if not (self.min_effective_density < self.max_effective_density <= 1):
            raise ValueError(
                "max_effective_density must lie in "
                "(min_effective_density, 1]")
        if self.contact_height_a <= 0:
            raise ValueError("contact height must be positive")

    @property
    def blanket_rate(self) -> float:
        """Blanket (featureless wafer) removal rate in Angstrom/s."""
        return self.preston_coefficient * self.pressure_psi * self.velocity_mps

    @property
    def num_steps(self) -> int:
        return max(1, int(round(self.polish_time_s / self.time_step_s)))

    def scaled(self, **overrides) -> "ProcessParams":
        """Copy with selected fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)


#: Default calibration used by examples, tests and benches.
DEFAULT_PROCESS = ProcessParams()
