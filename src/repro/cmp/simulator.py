"""Full-chip CMP simulator: the four-step flow of the paper's Fig. 2.

For every layer the simulator

1. computes the envelope height of each window (the up-area surface),
2. solves the rough-pad contact mechanics for the window pressures,
3. evaluates DSH up/down removal rates, and
4. removes material for one Preston time step,

iterating until the total polish time is reached.  The output is the
post-CMP per-window average height profile plus dishing and erosion maps —
the quantities a commercial tool such as Cadence CMP Predictor reports.

This simulator is the *teacher* for the UNet surrogate and the engine of
the Cai [12] baseline (which differentiates it numerically).  It is
deliberately written with plain numpy state updates: it is meant to be a
credible stand-in for a slow black-box tool, not to be differentiable.

Batching: every kernel in the polish pipeline operates over arbitrary
leading axes (the leading-axes contract, DESIGN.md "Batched CMP
simulator"), so :meth:`CmpSimulator.simulate_batch` polishes a whole
``(B, L, N, M)`` stack of layouts in one pass of numpy calls per time
step — bitwise identical to looping :meth:`CmpSimulator.simulate` over
the entries, but without paying the Python interpreter per layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..layout.layout import FeatureStack, Layout, apply_fill, stack_features
from ..obs import trace as obs_trace
from .dsh import removal_rates
from .pad import solve_pressure
from .process import DEFAULT_PROCESS, ProcessParams


@dataclass
class CmpResult:
    """Post-CMP outputs; every array has shape ``(..., L, N, M)``.

    A single :meth:`CmpSimulator.simulate` produces ``(L, N, M)`` maps;
    :meth:`CmpSimulator.simulate_batch` prepends the batch axes of its
    input (``(B, L, N, M)`` for a stacked batch of ``B`` layouts) — use
    :meth:`entry` to slice one layout's result back out.

    Attributes:
        height: remaining absolute film thickness per window (Angstrom),
            measured from the substrate; positive for sensible polish
            schedules, matching the "positive height of each window" the
            paper's CMP model reports.
        dishing: copper dishing per window (Angstrom).
        erosion: oxide erosion per window (Angstrom).
        pressure: pad pressure at the final time step (psi).
        step_height: residual up-down step at the final time step.
    """

    height: np.ndarray
    dishing: np.ndarray
    erosion: np.ndarray
    pressure: np.ndarray
    step_height: np.ndarray

    @property
    def height_range(self) -> float:
        """The paper's ``DeltaH``: max minus min of the height profile."""
        return float(self.height.max() - self.height.min())

    @property
    def batch_shape(self) -> tuple[int, ...]:
        """Leading batch axes (``()`` for a single-layout result)."""
        return self.height.shape[:-3]

    def entry(self, index) -> "CmpResult":
        """One leading-axis entry as its own result (views, no copies)."""
        return CmpResult(
            height=self.height[index], dishing=self.dishing[index],
            erosion=self.erosion[index], pressure=self.pressure[index],
            step_height=self.step_height[index],
        )


def effective_density(density: np.ndarray, perimeter: np.ndarray,
                      window_area: float, params: ProcessParams) -> np.ndarray:
    """Up-area fraction after conformal deposition bias.

    Deposition widens each feature by ``bias/2`` per edge, adding
    ``perimeter * bias / 2`` of up area per window.  Purely elementwise:
    accepts any leading axes and preserves the input's floating dtype.
    """
    gain = perimeter * params.deposition_bias_um / 2.0 / window_area
    return np.clip(density + gain, params.min_effective_density,
                   params.max_effective_density)


class CmpSimulator:
    """Time-stepping full-chip CMP simulator.

    Args:
        params: process calibration (default 45 nm-like set).
        window_um: window side length in micrometres.
        dtype: optional compute precision override (``"float32"`` or
            ``"float64"``).  ``None`` (the default) preserves the input
            features' floating dtype — float64 for every stock
            :class:`~repro.layout.layout.Layout` — and the whole polish
            pipeline keeps that dtype end to end (no silent upcasts in
            the batch kernels).
    """

    def __init__(self, params: ProcessParams = DEFAULT_PROCESS,
                 window_um: float = 100.0,
                 dtype: np.dtype | str | None = None):
        self.params = params
        self.window_um = window_um
        if dtype is not None:
            dtype = np.dtype(dtype)
            if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
                raise ValueError(
                    f"unsupported simulator dtype {dtype}; "
                    "use float32 or float64")
        self.dtype = dtype

    def simulate(self, features: FeatureStack) -> CmpResult:
        """Polish a feature stack.

        Default mode: layers polish independently but are advanced
        together (vectorised over the layer axis).  With
        ``params.stack_topography`` enabled, layers polish sequentially
        and each layer's deposition conforms to the residual topography
        the previous polish left behind (multilevel coupling).

        Args:
            features: post-fill pattern features, arrays of shape
                ``(L, N, M)`` (see :class:`repro.layout.layout.FeatureStack`).

        Returns:
            A :class:`CmpResult` with per-layer output maps.
        """
        with obs_trace.span("cmp.simulate", cat="cmp",
                            layers=int(features.shape[-3]),
                            stacked=self.params.stack_topography):
            if not self.params.stack_topography:
                return self._polish(features, incoming=None)
            return self._polish_stacked(features)

    def simulate_batch(
        self, features: FeatureStack | Sequence[FeatureStack]
    ) -> CmpResult:
        """Polish a batch of layouts in one vectorised pass.

        Accepts either a sequence of same-shape ``(L, N, M)``
        :class:`FeatureStack` objects (stacked here) or one already
        stacked ``(..., L, N, M)`` feature stack with at least one
        leading batch axis.  Per-layer load balance and pad smoothing
        never cross layers or batch entries, and each entry's lift-off
        iteration converges on its own schedule, so the batched result
        is **bitwise identical** to looping :meth:`simulate` over the
        entries — in both the default and ``stack_topography`` modes.

        Returns:
            A :class:`CmpResult` whose arrays carry the batch axes in
            front (``(B, L, N, M)`` for a ``B``-entry batch).
        """
        if not isinstance(features, FeatureStack):
            features = stack_features(features)
        if features.density.ndim < 4:
            raise ValueError(
                "simulate_batch needs at least one leading batch axis; "
                f"got shape {features.shape} — use simulate() for a "
                "single (L, N, M) stack")
        batch = int(np.prod(features.shape[:-3]))
        with obs_trace.span("cmp.simulate_batch", cat="cmp",
                            batch=batch, layers=int(features.shape[-3]),
                            stacked=self.params.stack_topography):
            if not self.params.stack_topography:
                return self._polish(features, incoming=None)
            return self._polish_stacked(features)

    def _polish_stacked(self, features: FeatureStack) -> CmpResult:
        """Sequential multilevel polish (vectorised over batch axes).

        Layers run one after another; each layer's starting surfaces
        inherit the attenuated residual (mean-removed) topography the
        previous layer's polish left behind.  Batch entries never
        interact: the residual mean is taken per entry.
        """
        num_layers = features.density.shape[-3]
        results: list[CmpResult] = []
        incoming = None
        for l in range(num_layers):
            single = FeatureStack(
                density=features.density[..., l : l + 1, :, :],
                perimeter=features.perimeter[..., l : l + 1, :, :],
                wire_width=features.wire_width[..., l : l + 1, :, :],
                trench_depth=features.trench_depth[..., l : l + 1, :, :],
            )
            result = self._polish(single, incoming=incoming)
            results.append(result)
            layer_height = result.height[..., 0, :, :]
            residual = layer_height - layer_height.mean(
                axis=(-2, -1), keepdims=True)
            incoming = (
                self.params.stacking_attenuation * residual
            )[..., None, :, :]
        return CmpResult(
            height=np.concatenate([r.height for r in results], axis=-3),
            dishing=np.concatenate([r.dishing for r in results], axis=-3),
            erosion=np.concatenate([r.erosion for r in results], axis=-3),
            pressure=np.concatenate([r.pressure for r in results], axis=-3),
            step_height=np.concatenate(
                [r.step_height for r in results], axis=-3),
        )

    def _work_arrays(
        self, features: FeatureStack
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Feature arrays in the compute dtype (cast-free when matching)."""
        density = np.asarray(features.density)
        dtype = self.dtype
        if dtype is None:
            dtype = (density.dtype
                     if np.issubdtype(density.dtype, np.floating)
                     else np.dtype(np.float64))
        return (
            density.astype(dtype, copy=False),
            np.asarray(features.perimeter).astype(dtype, copy=False),
            np.asarray(features.wire_width).astype(dtype, copy=False),
            np.asarray(features.trench_depth).astype(dtype, copy=False),
        )

    def _polish(self, features: FeatureStack,
                incoming: np.ndarray | None) -> CmpResult:
        """Core polish loop over a ``(..., L, N, M)`` feature stack.

        Any leading axes are independent batch entries; every time-step
        operation is either elementwise or per-trailing-map, so one loop
        advances the whole stack.  ``incoming`` optionally offsets the
        starting surfaces with topography inherited from the layer below
        (conformal deposition).
        """
        params = self.params
        area = self.window_um * self.window_um
        density, perimeter, wire_width, trench_depth = \
            self._work_arrays(features)
        rho = effective_density(density, perimeter, area, params)
        h_up = np.array(trench_depth, copy=True)
        h_down = np.zeros_like(h_up)
        if incoming is not None:
            h_up = h_up + incoming
            h_down = h_down + incoming
        clear_time = np.full(h_up.shape, params.polish_time_s,
                             dtype=h_up.dtype)
        # Leading axes beyond (L, N, M) index independent simulations;
        # the pressure solve must balance each one on its own schedule.
        batch_ndim = max(0, h_up.ndim - 3)

        dt = params.time_step_s
        t = 0.0
        # Observability: one parent span per polish with one child span
        # per stage (pressure solve / DSH rates / Preston update),
        # accumulated across the loop — a no-op singleton when disabled.
        obs = obs_trace.stages("cmp.polish", cat="cmp",
                               shape=list(h_up.shape),
                               batch=int(np.prod(h_up.shape[:-3], dtype=int))
                               if batch_ndim else 1,
                               steps=params.num_steps)
        # num_steps >= 1 (ProcessParams guarantees it), so the loop always
        # assigns the pressure used by the dishing/erosion terms below.
        with obs:
            for _ in range(params.num_steps):
                with obs.measure("pressure"):
                    pressure = solve_pressure(h_up, self.window_um, params,
                                              batch_ndim=batch_ndim)
                step = h_up - h_down
                with obs.measure("dsh"):
                    rate_up, rate_down = removal_rates(rho, step, pressure,
                                                       params)
                with obs.measure("preston"):
                    h_up = h_up - rate_up * dt
                    h_down = h_down - rate_down * dt
                    # The up surface can never sink below the down surface.
                    h_up = np.maximum(h_up, h_down)
                    t += dt
                    newly_clear = (
                        h_up - h_down < 0.05 * params.contact_height_a
                    ) & (clear_time >= params.polish_time_s)
                    clear_time = np.where(newly_clear, t, clear_time)

            step = h_up - h_down
            over_polish = np.maximum(0.0, params.polish_time_s - clear_time)
            dishing = (params.dishing_coefficient * pressure
                       * wire_width)
            erosion = params.erosion_coefficient * pressure * rho * over_polish
            height = (
                params.initial_film_a
                + rho * (h_up - dishing) + (1.0 - rho) * h_down - erosion
            )
            if obs is not obs_trace.NOOP_STAGES:
                cleared = clear_time < params.polish_time_s
                obs.set(
                    cleared_fraction=float(np.mean(cleared)),
                    # Iterations-to-convergence: steps until the *last*
                    # window cleared, or the full budget if some never did.
                    steps_to_clear=int(np.ceil(clear_time.max() / dt))
                    if bool(cleared.all()) else params.num_steps,
                )
        return CmpResult(
            height=height, dishing=dishing, erosion=erosion,
            pressure=pressure, step_height=step,
        )

    def simulate_layout(self, layout: Layout, fill: np.ndarray | None = None) -> CmpResult:
        """Convenience wrapper: apply ``fill`` to ``layout`` and polish."""
        features = apply_fill(layout, fill)
        return self.simulate(features)
