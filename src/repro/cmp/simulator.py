"""Full-chip CMP simulator: the four-step flow of the paper's Fig. 2.

For every layer the simulator

1. computes the envelope height of each window (the up-area surface),
2. solves the rough-pad contact mechanics for the window pressures,
3. evaluates DSH up/down removal rates, and
4. removes material for one Preston time step,

iterating until the total polish time is reached.  The output is the
post-CMP per-window average height profile plus dishing and erosion maps —
the quantities a commercial tool such as Cadence CMP Predictor reports.

This simulator is the *teacher* for the UNet surrogate and the engine of
the Cai [12] baseline (which differentiates it numerically).  It is
deliberately written with plain numpy state updates: it is meant to be a
credible stand-in for a slow black-box tool, not to be differentiable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.layout import FeatureStack, Layout, apply_fill
from ..obs import trace as obs_trace
from .dsh import removal_rates
from .pad import solve_pressure
from .process import DEFAULT_PROCESS, ProcessParams


@dataclass
class CmpResult:
    """Post-CMP outputs; every array has shape ``(L, N, M)``.

    Attributes:
        height: remaining absolute film thickness per window (Angstrom),
            measured from the substrate; positive for sensible polish
            schedules, matching the "positive height of each window" the
            paper's CMP model reports.
        dishing: copper dishing per window (Angstrom).
        erosion: oxide erosion per window (Angstrom).
        pressure: pad pressure at the final time step (psi).
        step_height: residual up-down step at the final time step.
    """

    height: np.ndarray
    dishing: np.ndarray
    erosion: np.ndarray
    pressure: np.ndarray
    step_height: np.ndarray

    @property
    def height_range(self) -> float:
        """The paper's ``DeltaH``: max minus min of the height profile."""
        return float(self.height.max() - self.height.min())


def effective_density(density: np.ndarray, perimeter: np.ndarray,
                      window_area: float, params: ProcessParams) -> np.ndarray:
    """Up-area fraction after conformal deposition bias.

    Deposition widens each feature by ``bias/2`` per edge, adding
    ``perimeter * bias / 2`` of up area per window.
    """
    gain = perimeter * params.deposition_bias_um / 2.0 / window_area
    return np.clip(density + gain, params.min_effective_density, 0.98)


class CmpSimulator:
    """Time-stepping full-chip CMP simulator."""

    def __init__(self, params: ProcessParams = DEFAULT_PROCESS,
                 window_um: float = 100.0):
        self.params = params
        self.window_um = window_um

    def simulate(self, features: FeatureStack) -> CmpResult:
        """Polish a feature stack.

        Default mode: layers polish independently but are advanced
        together (vectorised over the layer axis).  With
        ``params.stack_topography`` enabled, layers polish sequentially
        and each layer's deposition conforms to the residual topography
        the previous polish left behind (multilevel coupling).

        Args:
            features: post-fill pattern features, arrays of shape
                ``(L, N, M)`` (see :class:`repro.layout.layout.FeatureStack`).

        Returns:
            A :class:`CmpResult` with per-layer output maps.
        """
        with obs_trace.span("cmp.simulate", cat="cmp",
                            layers=int(features.shape[0]),
                            stacked=self.params.stack_topography):
            if not self.params.stack_topography:
                return self._polish(features, incoming=None)
            # Sequential multilevel polish: feed each layer's residual
            # (mean-removed) height into the next layer's starting surfaces.
            L = features.shape[0]
            results = []
            incoming = None
            for l in range(L):
                single = FeatureStack(
                    density=features.density[l : l + 1],
                    perimeter=features.perimeter[l : l + 1],
                    wire_width=features.wire_width[l : l + 1],
                    trench_depth=features.trench_depth[l : l + 1],
                )
                result = self._polish(single, incoming=incoming)
                results.append(result)
                residual = result.height[0] - result.height[0].mean()
                incoming = (self.params.stacking_attenuation * residual)[None]
            return CmpResult(
                height=np.concatenate([r.height for r in results]),
                dishing=np.concatenate([r.dishing for r in results]),
                erosion=np.concatenate([r.erosion for r in results]),
                pressure=np.concatenate([r.pressure for r in results]),
                step_height=np.concatenate([r.step_height for r in results]),
            )

    def _polish(self, features: FeatureStack,
                incoming: np.ndarray | None) -> CmpResult:
        """Core polish loop over a ``(K, N, M)`` feature stack.

        ``incoming`` optionally offsets the starting surfaces with
        topography inherited from the layer below (conformal deposition).
        """
        params = self.params
        area = self.window_um * self.window_um
        rho = effective_density(
            features.density, features.perimeter, area, params
        )
        h_up = np.array(features.trench_depth, dtype=float, copy=True)
        h_down = np.zeros_like(h_up)
        if incoming is not None:
            h_up = h_up + incoming
            h_down = h_down + incoming
        clear_time = np.full(h_up.shape, params.polish_time_s)

        dt = params.time_step_s
        t = 0.0
        # Observability: one parent span per polish with one child span
        # per stage (pressure solve / DSH rates / Preston update),
        # accumulated across the loop — a no-op singleton when disabled.
        obs = obs_trace.stages("cmp.polish", cat="cmp",
                               shape=list(h_up.shape),
                               steps=params.num_steps)
        # num_steps >= 1 (ProcessParams guarantees it), so the loop always
        # assigns the pressure used by the dishing/erosion terms below.
        with obs:
            for _ in range(params.num_steps):
                with obs.measure("pressure"):
                    pressure = solve_pressure(h_up, self.window_um, params)
                step = h_up - h_down
                with obs.measure("dsh"):
                    rate_up, rate_down = removal_rates(rho, step, pressure,
                                                       params)
                with obs.measure("preston"):
                    h_up = h_up - rate_up * dt
                    h_down = h_down - rate_down * dt
                    # The up surface can never sink below the down surface.
                    h_up = np.maximum(h_up, h_down)
                    t += dt
                    newly_clear = (
                        h_up - h_down < 0.05 * params.contact_height_a
                    ) & (clear_time >= params.polish_time_s)
                    clear_time = np.where(newly_clear, t, clear_time)

            step = h_up - h_down
            over_polish = np.maximum(0.0, params.polish_time_s - clear_time)
            dishing = (params.dishing_coefficient * pressure
                       * features.wire_width)
            erosion = params.erosion_coefficient * pressure * rho * over_polish
            height = (
                params.initial_film_a
                + rho * (h_up - dishing) + (1.0 - rho) * h_down - erosion
            )
            if obs is not obs_trace.NOOP_STAGES:
                cleared = clear_time < params.polish_time_s
                obs.set(
                    cleared_fraction=float(np.mean(cleared)),
                    # Iterations-to-convergence: steps until the *last*
                    # window cleared, or the full budget if some never did.
                    steps_to_clear=int(np.ceil(clear_time.max() / dt))
                    if bool(cleared.all()) else params.num_steps,
                )
        return CmpResult(
            height=height, dishing=dishing, erosion=erosion,
            pressure=pressure, step_height=step,
        )

    def simulate_layout(self, layout: Layout, fill: np.ndarray | None = None) -> CmpResult:
        """Convenience wrapper: apply ``fill`` to ``layout`` and polish."""
        features = apply_fill(layout, fill)
        return self.simulate(features)
