"""Shared constants and helpers for the NeurFill reproduction.

The paper works on layouts divided into uniform windows of
``100 um x 100 um`` (Section V).  All areas in this code base are expressed
in square micrometres (um^2) and all heights in Angstroms (A), matching the
units the paper reports (e.g. ``DeltaH`` in Angstroms in Table III).
"""

from __future__ import annotations

import numpy as np

#: Side length of a filling/simulation window in micrometres (paper SS V).
WINDOW_SIZE_UM: float = 100.0

#: Area of one window in um^2.
WINDOW_AREA_UM2: float = WINDOW_SIZE_UM * WINDOW_SIZE_UM

#: Number of metal layers used by all three benchmark designs (Table II).
DEFAULT_NUM_LAYERS: int = 3

#: Default seed used by deterministic example scripts and benchmarks.
DEFAULT_SEED: int = 2021


def rng_from_seed(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged) so that every stochastic entry point in
    the library can share one seeding convention.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
