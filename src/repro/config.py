"""Shared constants and helpers for the NeurFill reproduction.

The paper works on layouts divided into uniform windows of
``100 um x 100 um`` (Section V).  All areas in this code base are expressed
in square micrometres (um^2) and all heights in Angstroms (A), matching the
units the paper reports (e.g. ``DeltaH`` in Angstroms in Table III).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

#: Side length of a filling/simulation window in micrometres (paper SS V).
WINDOW_SIZE_UM: float = 100.0

#: Area of one window in um^2.
WINDOW_AREA_UM2: float = WINDOW_SIZE_UM * WINDOW_SIZE_UM

#: Number of metal layers used by all three benchmark designs (Table II).
DEFAULT_NUM_LAYERS: int = 3

#: Default seed used by deterministic example scripts and benchmarks.
DEFAULT_SEED: int = 2021


#: Environment variable forcing a single conv backend (``im2col``, ``fft``
#: or ``matmul``); unset/empty/``auto`` lets the plan cache decide.
CONV_BACKEND_ENV: str = "REPRO_CONV_BACKEND"

#: Environment variable overriding where conv dispatch plans persist.
#: Set to ``off`` (or empty) to disable persistence entirely.
CONV_PLAN_CACHE_ENV: str = "REPRO_CONV_PLAN_CACHE"

_CONV_BACKENDS = ("im2col", "fft", "matmul")


def conv_backend_override() -> str | None:
    """The backend forced via ``REPRO_CONV_BACKEND``, or ``None`` for auto.

    Raises:
        ValueError: if the variable is set to an unknown backend name.
    """
    value = os.environ.get(CONV_BACKEND_ENV, "").strip().lower()
    if value in ("", "auto"):
        return None
    if value not in _CONV_BACKENDS:
        raise ValueError(
            f"{CONV_BACKEND_ENV}={value!r}: expected one of "
            f"{_CONV_BACKENDS + ('auto',)}"
        )
    return value


def conv_plan_cache_path() -> Path | None:
    """Where calibrated conv dispatch plans persist between runs.

    ``REPRO_CONV_PLAN_CACHE`` overrides the default
    ``~/.cache/repro/conv_plans.json``; the values ``off``, ``none`` or an
    empty string disable persistence (returns ``None``).
    """
    value = os.environ.get(CONV_PLAN_CACHE_ENV)
    if value is not None:
        if value.strip().lower() in ("", "off", "none", "0"):
            return None
        return Path(value).expanduser()
    return Path("~/.cache/repro/conv_plans.json").expanduser()


#: Environment variable toggling captured-graph replay of the surrogate
#: (``repro.nn.capture``).  On by default: replays are bitwise identical
#: to eager execution, so disabling it (``REPRO_CAPTURE=0``) is purely a
#: debugging/benchmarking aid.
CAPTURE_ENV: str = "REPRO_CAPTURE"

#: Captured execution plans retained per network (LRU).  Each plan owns
#: a workspace arena sized like one forward+backward pass at its input
#: shape; MSP-SQP's shrinking lockstep batches are the main consumer of
#: multiple concurrent keys.
DEFAULT_CAPTURE_PLANS: int = 8


def capture_enabled_default() -> bool:
    """Whether surrogate networks trace/replay captured graphs."""
    raw = os.environ.get(CAPTURE_ENV, "").strip().lower()
    if not raw:
        return True
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"{CAPTURE_ENV}={raw!r}: expected a boolean")


def capture_max_plans_default() -> int:
    return int(_env_number("REPRO_CAPTURE_PLANS", DEFAULT_CAPTURE_PLANS,
                           int, 1))


# ----------------------------------------------------------------------
# repro.serve defaults.  Every knob has a CLI flag; the environment
# variables let deployments retune a service without editing unit files.

#: Worker threads executing jobs (``REPRO_SERVE_WORKERS``).
DEFAULT_SERVE_WORKERS: int = 4

#: Bounded job-queue capacity before backpressure rejection
#: (``REPRO_SERVE_QUEUE``).
DEFAULT_SERVE_QUEUE_CAPACITY: int = 64

#: Largest micro-batch the coalescing batcher assembles
#: (``REPRO_SERVE_MAX_BATCH``); ``1`` disables coalescing.
DEFAULT_SERVE_MAX_BATCH: int = 16

#: Max-latency flush window of the batcher in milliseconds
#: (``REPRO_SERVE_FLUSH_MS``) — the longest an evaluation waits for
#: co-batchable traffic before running anyway.
DEFAULT_SERVE_FLUSH_MS: float = 4.0

#: Seconds a draining shutdown waits for in-flight jobs.
DEFAULT_SERVE_DRAIN_TIMEOUT_S: float = 30.0

#: Job execution engine (``REPRO_SERVE_WORKER_MODE``): ``thread`` runs
#: jobs on the worker threads (coalescing across jobs); ``process``
#: dispatches them to long-lived forked children, GIL-free.
DEFAULT_SERVE_WORKER_MODE: str = "thread"

#: Shard-fleet width (``REPRO_SERVE_SHARDS``); ``1`` is a single
#: unsharded server, >1 routes by layout fingerprint across that many
#: shard processes.
DEFAULT_SERVE_SHARDS: int = 1


def _env_number(name: str, default: float, kind: type,
                minimum: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = kind(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r}: expected a {kind.__name__}")
    if value < minimum:
        raise ValueError(f"{name}={raw!r}: must be >= {minimum}")
    return value


def serve_workers_default() -> int:
    return int(_env_number("REPRO_SERVE_WORKERS", DEFAULT_SERVE_WORKERS,
                           int, 1))


def serve_queue_capacity_default() -> int:
    return int(_env_number("REPRO_SERVE_QUEUE",
                           DEFAULT_SERVE_QUEUE_CAPACITY, int, 1))


def serve_max_batch_default() -> int:
    return int(_env_number("REPRO_SERVE_MAX_BATCH",
                           DEFAULT_SERVE_MAX_BATCH, int, 1))


def serve_flush_ms_default() -> float:
    return _env_number("REPRO_SERVE_FLUSH_MS", DEFAULT_SERVE_FLUSH_MS,
                       float, 0.0)


def serve_worker_mode_default() -> str:
    raw = os.environ.get("REPRO_SERVE_WORKER_MODE", "").strip().lower()
    if not raw:
        return DEFAULT_SERVE_WORKER_MODE
    if raw not in ("thread", "process"):
        raise ValueError(f"REPRO_SERVE_WORKER_MODE={raw!r}: "
                         "expected 'thread' or 'process'")
    return raw


def serve_shards_default() -> int:
    return int(_env_number("REPRO_SERVE_SHARDS", DEFAULT_SERVE_SHARDS,
                           int, 1))


# ----------------------------------------------------------------------
# repro.lifecycle defaults (drift monitor + background retrain + swap).
# Shadow simulation is OFF by default: a rate of 0 keeps serving on the
# exact PR 3/6 fast path (no sampling, no background thread).

#: Fraction of served surrogate fills shadow-checked against the real
#: simulator (``REPRO_LIFECYCLE_SHADOW_RATE``); 0 disables the monitor.
DEFAULT_LIFECYCLE_SHADOW_RATE: float = 0.0

#: Height-RMSE drift bound in Angstroms (``REPRO_LIFECYCLE_DRIFT_BOUND``);
#: shadow residuals above it count toward a drift trip.
DEFAULT_LIFECYCLE_DRIFT_BOUND: float = 50.0

#: Residuals in the sliding drift window (``REPRO_LIFECYCLE_WINDOW``).
DEFAULT_LIFECYCLE_WINDOW: int = 8

#: Exceedances within the window required to trip
#: (``REPRO_LIFECYCLE_TRIP_COUNT``) — hysteresis against one outlier.
DEFAULT_LIFECYCLE_TRIP_COUNT: int = 3

#: Teacher samples per background retrain
#: (``REPRO_LIFECYCLE_TRAIN_SAMPLES``).
DEFAULT_LIFECYCLE_TRAIN_SAMPLES: int = 12

#: Training epochs per background retrain
#: (``REPRO_LIFECYCLE_TRAIN_EPOCHS``).
DEFAULT_LIFECYCLE_TRAIN_EPOCHS: int = 4

#: Deterministic seed threaded through retrain datagen + weight init
#: (``REPRO_LIFECYCLE_SEED``); a fixed seed yields byte-identical
#: retrained checkpoints.
DEFAULT_LIFECYCLE_SEED: int = 0


def lifecycle_shadow_rate_default() -> float:
    value = _env_number("REPRO_LIFECYCLE_SHADOW_RATE",
                        DEFAULT_LIFECYCLE_SHADOW_RATE, float, 0.0)
    if value > 1.0:
        raise ValueError(
            f"REPRO_LIFECYCLE_SHADOW_RATE={value}: must be <= 1")
    return value


def lifecycle_drift_bound_default() -> float:
    return _env_number("REPRO_LIFECYCLE_DRIFT_BOUND",
                       DEFAULT_LIFECYCLE_DRIFT_BOUND, float, 0.0)


def lifecycle_window_default() -> int:
    return int(_env_number("REPRO_LIFECYCLE_WINDOW",
                           DEFAULT_LIFECYCLE_WINDOW, int, 1))


def lifecycle_trip_count_default() -> int:
    return int(_env_number("REPRO_LIFECYCLE_TRIP_COUNT",
                           DEFAULT_LIFECYCLE_TRIP_COUNT, int, 1))


def lifecycle_auto_retrain_default() -> bool:
    raw = os.environ.get("REPRO_LIFECYCLE_AUTO_RETRAIN", "").strip().lower()
    if not raw:
        return False
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    raise ValueError(
        f"REPRO_LIFECYCLE_AUTO_RETRAIN={raw!r}: expected a boolean")


def lifecycle_train_samples_default() -> int:
    return int(_env_number("REPRO_LIFECYCLE_TRAIN_SAMPLES",
                           DEFAULT_LIFECYCLE_TRAIN_SAMPLES, int, 2))


def lifecycle_train_epochs_default() -> int:
    return int(_env_number("REPRO_LIFECYCLE_TRAIN_EPOCHS",
                           DEFAULT_LIFECYCLE_TRAIN_EPOCHS, int, 1))


def lifecycle_seed_default() -> int:
    return int(_env_number("REPRO_LIFECYCLE_SEED",
                           DEFAULT_LIFECYCLE_SEED, int, 0))


def lifecycle_dir_default() -> str | None:
    """Checkpoint/state directory for retrained generations
    (``REPRO_LIFECYCLE_DIR``); ``None`` means the server picks a
    per-journal sibling or a temporary directory."""
    raw = os.environ.get("REPRO_LIFECYCLE_DIR", "").strip()
    return raw or None


def rng_from_seed(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged) so that every stochastic entry point in
    the library can share one seeding convention.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
