"""Core contribution: the NeurFill model-based dummy filling framework."""

from .degradation import (
    DegradationBreakdown,
    PerformanceDegradation,
    fill_amount,
    overlay_area,
    overlay_gradient,
    overlay_gradient_paper,
)
from .eco import EcoQualityModel, eco_refill
from .msp_sqp import MspSqpOutcome, QualityEvaluation, QualityModel, msp_sqp
from .neurfill import NeurFill
from .pkb import (
    PkbResult,
    fill_for_target_density,
    pkb_starting_point,
    target_density_range,
)
from .problem import FillProblem, ScoreCoefficients, paper_table2
from .result import FillResult
from .scoring import (
    BYTES_PER_DUMMY,
    SolutionScore,
    estimate_output_file_mb,
    evaluate_solution,
    planarity_metrics,
)

__all__ = [
    "BYTES_PER_DUMMY",
    "DegradationBreakdown",
    "EcoQualityModel",
    "FillProblem",
    "FillResult",
    "MspSqpOutcome",
    "NeurFill",
    "PerformanceDegradation",
    "PkbResult",
    "QualityEvaluation",
    "QualityModel",
    "ScoreCoefficients",
    "SolutionScore",
    "eco_refill",
    "estimate_output_file_mb",
    "evaluate_solution",
    "fill_amount",
    "fill_for_target_density",
    "msp_sqp",
    "overlay_area",
    "overlay_gradient",
    "overlay_gradient_paper",
    "paper_table2",
    "pkb_starting_point",
    "planarity_metrics",
    "target_density_range",
]
