"""Performance-degradation estimation: ``S_PD`` and its analytic gradient.

Dummy fill degrades circuit performance through parasitic capacitance; the
paper estimates this without any CMP simulation (Section IV-B):

* total fill amount ``fa`` (Eq. 4) with gradient the all-ones matrix
  (Eq. 12);
* overlay area ``ov`` via four-type region insertion (Fig. 5, Eqs. 13-15):
  fill is assigned to slack types by priority 1 -> 4; types 2/3 overlap
  one wire, type 4 overlaps two, and type-1 fill of adjacent layers can
  overlap each other (dummy-to-dummy, Eq. 14).

The gradient here differentiates our exact forward expression (a
subgradient at the allocation breakpoints).  The paper's simplified
three-case gradient (Eq. 16) is also provided for comparison benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.fill_regions import SlackRegions, allocate_fill_by_priority, compute_slack_regions
from ..layout.layout import Layout
from .problem import ScoreCoefficients


@dataclass
class DegradationBreakdown:
    """Raw metrics and scores from one ``S_PD`` evaluation."""

    fill_amount: float
    overlay: float
    overlay_dummy_wire: float
    overlay_dummy_dummy: float
    score_fill: float
    score_overlay: float
    s_pd: float


def fill_amount(fill: np.ndarray) -> float:
    """Eq. 4: total fill area."""
    return float(fill.sum())


def overlay_area(fill: np.ndarray, regions: SlackRegions) -> tuple[float, float, float]:
    """Eqs. 13-15: ``(ov, ov_dummy_wire, ov_dummy_dummy)``."""
    parts = allocate_fill_by_priority(fill, regions)
    x1, x2, x3, x4 = parts
    ov_dw = float((x2 + x3 + 2.0 * x4).sum())
    L = fill.shape[0]
    ov_dd = 0.0
    if L > 1:
        pair = x1[:-1] + x1[1:] - regions.non_overlap_slack[:-1]
        ov_dd = float(np.maximum(0.0, pair).sum())
    return ov_dw + ov_dd, ov_dw, ov_dd


def overlay_gradient(fill: np.ndarray, regions: SlackRegions) -> np.ndarray:
    """Exact (sub)gradient of Eq. 15 w.r.t. per-window total fill.

    A marginal unit of fill lands in the window's *active* type (the first
    of 1..4 with remaining capacity).  Its overlay contribution is:

    * type 2 or 3: 1 (one wire overlapped);
    * type 4: 2 (two wires);
    * type 1: 1 for each adjacent-layer dummy-to-dummy term currently in
      its linear region (Eq. 14 involves ``x1`` of layers ``l`` and
      ``l+1``, so a type-1 unit can appear in the term above *and* below).
    """
    parts = allocate_fill_by_priority(fill, regions)
    caps = regions.stacked()
    L = fill.shape[0]

    # Active type per window: first with spare capacity; saturated windows
    # (no capacity anywhere) get the last type's marginal cost.
    spare = caps - parts
    active = np.full(fill.shape, 3, dtype=int)
    for t in (3, 2, 1, 0):
        active = np.where(spare[t] > 1e-12, t, active)

    dw_cost = np.array([0.0, 1.0, 1.0, 2.0])[active]

    grad = dw_cost
    if L > 1:
        x1 = parts[0]
        pair_active = (x1[:-1] + x1[1:] - regions.non_overlap_slack[:-1]) >= 0
        dd_cost = np.zeros(fill.shape)
        # Marginal type-1 fill in layer l contributes to the pair term
        # (l, l+1) and to the pair term (l-1, l).
        dd_cost[:-1] += pair_active.astype(float)
        dd_cost[1:] += pair_active.astype(float)
        grad = grad + np.where(active == 0, dd_cost, 0.0)
    return grad


def overlay_gradient_paper(fill: np.ndarray, regions: SlackRegions) -> np.ndarray:
    """The paper's simplified Eq. 16 gradient (for the ablation bench).

    ``0`` while adjacent type-1 fill fits in the non-overlap slack, ``2``
    when type-4 fill is present, ``1`` otherwise.
    """
    parts = allocate_fill_by_priority(fill, regions)
    x1, _, _, x4 = parts
    L = fill.shape[0]
    below_star = np.zeros(fill.shape, dtype=bool)
    if L > 1:
        below_star[:-1] = (x1[:-1] + x1[1:]) < regions.non_overlap_slack[:-1]
    else:
        below_star[:] = True
    grad = np.where(below_star, 0.0, 1.0)
    grad = np.where(x4 > 0, 2.0, grad)
    return grad


class PerformanceDegradation:
    """``S_PD`` evaluator bound to one layout (Eqs. 5c, 12-17)."""

    def __init__(self, layout: Layout, coefficients: ScoreCoefficients):
        self.layout = layout
        self.coefficients = coefficients
        self.regions = compute_slack_regions(layout)

    def evaluate(self, fill: np.ndarray,
                 want_grad: bool = True) -> tuple[DegradationBreakdown, np.ndarray | None]:
        """Score the fill vector; optionally return ``dS_PD/dx``.

        The analytic gradient follows Eq. 17 but respects score
        saturation: once ``f(t)`` clamps at 0 (or 1) the corresponding
        term stops contributing.
        """
        c = self.coefficients
        fa = fill_amount(fill)
        ov, ov_dw, ov_dd = overlay_area(fill, self.regions)
        f_fa = min(1.0, max(0.0, 1.0 - fa / c.beta_fill))
        f_ov = min(1.0, max(0.0, 1.0 - ov / c.beta_overlay))
        s_pd = c.alpha_fill * f_fa + c.alpha_overlay * f_ov
        breakdown = DegradationBreakdown(
            fill_amount=fa, overlay=ov, overlay_dummy_wire=ov_dw,
            overlay_dummy_dummy=ov_dd, score_fill=f_fa, score_overlay=f_ov,
            s_pd=s_pd,
        )
        if not want_grad:
            return breakdown, None
        grad = np.zeros(fill.shape)
        if 0.0 < f_fa < 1.0:
            grad -= c.alpha_fill / c.beta_fill  # Eq. 12 folded in
        if 0.0 < f_ov < 1.0:
            grad -= (c.alpha_overlay / c.beta_overlay) * overlay_gradient(
                fill, self.regions
            )
        return breakdown, grad
