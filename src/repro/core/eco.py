"""Incremental (ECO) refill: dirty-window re-synthesis with receptive-field
exactness.

The operation a high-traffic fill service repeats millions of times is not
a cold full-chip solve but a small *engineering change order*: a handful
of windows of an already-solved layout are edited and the fill must be
brought back to optimality.  :func:`eco_refill` does exactly that:

1. **Diff** the parent and edited layouts into a dirty-window mask
   (:func:`repro.layout.diff.diff_layouts`).
2. **Dilate** the dirty set by the UNet's receptive-field radius plus a
   coupling radius into the *free* set — the only windows whose fill is
   allowed to move.
3. **Split** the free set into 8-connected components
   (:func:`repro.layout.diff.connected_components`): two edits on
   opposite chip corners become two *sites*, each re-optimised through a
   small cropped pass of its own instead of one bounding box spanning the
   whole chip.
4. **Freeze** everything else per site by pinning its box constraints to
   the warm start (``lower == upper == x0``) and run one SQP per site.
5. **Evaluate** the global quality objective through ONE cropped network
   pass per iteration (:meth:`CmpNeuralNetwork.evaluate_region`): heights
   outside the site's receptive halo provably equal the heights of the
   warm start, so they are composed in as constants.  All sites share a
   single monolithic base forward — their complements are frozen at the
   same warm start.

Guarantees (argued in DESIGN.md, tested in ``tests/core/test_eco.py``):

* **Bitwise outside the halo.** Fill outside the free set is the parent
  fill, bit for bit — frozen coordinates are never moved by the SQP
  (``np.clip(x, a, a) == a`` exactly and pinned bounds zero every search
  direction component).  The driver *checks* the identity per site
  (raising instead of silently repairing a violation) and re-asserts it
  structurally with ``np.where`` before returning.
* **Full-refill equivalence inside.** Per evaluation, the cropped
  objective matches the monolithic one to float round-off at every free
  coordinate (score *and* gradient — the receptive field of a free
  window lies inside the evaluated core by construction).  The refined
  region therefore matches what a full warm-started refill that moves
  only those windows would produce, up to SQP path round-off; the gap to
  an *unconstrained* full refill is governed by the weak global coupling
  of the planarity means/variances and bounded by the documented
  tolerance (see DESIGN.md).

An empty diff short-circuits to a pure cache hit: the parent
:class:`FillResult` is returned (re-tagged) with zero evaluations.
"""

from __future__ import annotations

import time

import numpy as np

from ..layout.diff import (LayoutDiff, connected_components, diff_layouts,
                           dilate_mask)
from ..layout.layout import Layout
from ..optimize.sqp import SqpOptimizer
from ..surrogate.network import CmpNeuralNetwork
from .degradation import PerformanceDegradation
from .msp_sqp import QualityEvaluation, QualityModel
from .problem import FillProblem
from .result import FillResult

__all__ = ["EcoQualityModel", "eco_refill"]

#: Method tag recorded on incremental results.
ECO_METHOD = "neurfill-eco"


class EcoQualityModel:
    """``S_qual`` twin of :class:`QualityModel` for a frozen-complement fill.

    Planarity is evaluated through one cropped network pass against the
    constant base heights (:meth:`CmpNeuralNetwork.evaluate_region`); the
    analytic degradation term is cheap and runs on the full fill.  The
    gradient is zeroed outside the free mask — those coordinates are
    constants of the incremental problem.

    Attributes:
        lower/upper: ECO box constraints — the problem's bounds on free
            coordinates, pinned to ``base_fill`` elsewhere.
        evaluations: cropped network passes spent (same accounting as
            :class:`QualityModel`).
    """

    def __init__(self, problem: FillProblem, network: CmpNeuralNetwork,
                 base_fill: np.ndarray, free: np.ndarray,
                 base_heights: np.ndarray | None = None):
        if network.grid_shape != problem.layout.shape:
            raise ValueError(
                f"network bound to shape {network.grid_shape}, problem layout "
                f"is {problem.layout.shape}")
        self.problem = problem
        self.network = network
        self.weights = problem.coefficients.planarity_weights()
        self.degradation = PerformanceDegradation(
            problem.layout, problem.coefficients)
        free = np.asarray(free, dtype=bool)
        if free.shape != problem.layout.shape[1:]:
            raise ValueError(
                f"free mask must have grid shape {problem.layout.shape[1:]}, "
                f"got {free.shape}")
        self.free2d = free
        self.free = np.broadcast_to(free, problem.layout.shape)
        base_fill = np.asarray(base_fill, dtype=float)
        self.base_fill = base_fill
        self.lower = np.where(self.free, problem.lower, base_fill)
        self.upper = np.where(self.free, problem.upper, base_fill)
        self.region = network.plan_region(free)
        if self.region is None:
            raise ValueError("free mask is empty — nothing to re-optimise "
                             "(an empty ECO should be served from cache)")
        if base_heights is None:
            self.base_heights = network.predict_heights(base_fill)
            self.evaluations = 1  # the base forward above
        else:
            # Shared monolithic base forward (the multi-site driver runs
            # it once for all sites: every site freezes its complement at
            # the same warm start, so the base heights coincide).
            base_heights = np.asarray(base_heights, dtype=float)
            if base_heights.shape != problem.layout.shape:
                raise ValueError(
                    f"base_heights must have layout shape "
                    f"{problem.layout.shape}, got {base_heights.shape}")
            self.base_heights = base_heights
            self.evaluations = 0

    def evaluate(self, fill: np.ndarray,
                 want_grad: bool = True) -> QualityEvaluation:
        self.evaluations += 1
        fill = np.clip(fill, self.lower, self.upper)
        plan = self.network.evaluate_region(
            fill, self.region, self.base_heights, self.weights,
            want_grad=want_grad)
        pd_breakdown, pd_grad = self.degradation.evaluate(
            fill, want_grad=want_grad)
        quality = plan.s_plan + pd_breakdown.s_pd
        gradient = None
        if want_grad:
            gradient = np.where(self.free, plan.gradient + pd_grad, 0.0)
        return QualityEvaluation(
            quality=quality, gradient=gradient,
            planarity=plan.breakdown, degradation=pd_breakdown,
        )

    # Convenience adapters matching QualityModel -----------------------
    def quality(self, fill: np.ndarray) -> float:
        return self.evaluate(fill, want_grad=False).quality

    def value_and_grad(self, fill: np.ndarray) -> tuple[float, np.ndarray]:
        ev = self.evaluate(fill, want_grad=True)
        return ev.quality, ev.gradient


def _parent_fill(parent: FillResult | np.ndarray,
                 shape: tuple[int, int, int]) -> np.ndarray:
    fill = parent.fill if isinstance(parent, FillResult) else parent
    fill = np.asarray(fill, dtype=float)
    if fill.shape != shape:
        raise ValueError(
            f"parent fill shape {fill.shape} != layout shape {shape}")
    return fill


def eco_refill(
    problem: FillProblem,
    network: CmpNeuralNetwork,
    parent_layout: Layout,
    parent: FillResult | np.ndarray,
    *,
    optimizer: SqpOptimizer | None = None,
    coupling_radius: int | None = None,
) -> FillResult:
    """Re-synthesise fill incrementally after an ECO edit.

    Args:
        problem: the fill problem on the **edited** layout.
        network: surrogate bound to the **edited** layout (its extraction
            constants must reflect the edit).
        parent_layout: the layout the parent solution was synthesised for.
        parent: the parent solution — a :class:`FillResult` (enables the
            pure cache hit on an empty diff) or a bare ``(L, N, M)`` fill.
        optimizer: SQP configuration; defaults to the NeurFill default.
        coupling_radius: extra dilation beyond the receptive-field radius
            granted to the optimiser, covering the second gradient hop
            (the gradient at a window reaches another receptive field past
            the windows whose heights changed).  Defaults to the
            receptive-field radius itself; 0 is valid and keeps every
            guarantee except closeness to the unconstrained full refill.

    Returns:
        A :class:`FillResult` tagged ``neurfill-eco`` whose ``extras["eco"]``
        records the dirty/free geometry and per-site SQP diagnostics
        (``num_sites``/``sites``: one cropped pass per 8-connected
        component of the free set; ``starts`` counts sites).  The reported
        quality/planarity/degradation come from one final *monolithic*
        evaluation, so they are directly comparable to full-refill results.
    """
    t0 = time.perf_counter()
    if network.grid_shape != problem.layout.shape:
        raise ValueError(
            f"network bound to shape {network.grid_shape}, edited layout is "
            f"{problem.layout.shape} — bind the surrogate to the edited layout")
    if not np.array_equal(network.consts.density,
                          problem.layout.density_stack()):
        raise ValueError(
            "network extraction constants do not match the edited layout — "
            "bind the surrogate to the edited layout, not the parent")

    diff = diff_layouts(parent_layout, problem.layout)
    parent_fill = _parent_fill(parent, problem.layout.shape)

    if diff.is_empty:
        # Pure cache hit: identical window features => identical optimum.
        runtime = time.perf_counter() - t0
        extras = {"eco": _eco_extras(diff, None, 0, 0, cache_hit=True)}
        if isinstance(parent, FillResult):
            return FillResult(
                method=ECO_METHOD, fill=parent.fill.copy(),
                quality=parent.quality, planarity=parent.planarity,
                degradation=parent.degradation, runtime_s=runtime,
                evaluations=0, starts=0, extras=extras)
        final = QualityModel(problem, network).evaluate(
            parent_fill, want_grad=False)
        return FillResult(
            method=ECO_METHOD, fill=parent_fill.copy(), quality=final.quality,
            planarity=final.planarity, degradation=final.degradation,
            runtime_s=time.perf_counter() - t0, evaluations=1, starts=0,
            extras=extras)

    rf_radius = network.receptive_halo()
    coupling = rf_radius if coupling_radius is None else int(coupling_radius)
    if coupling < 0:
        raise ValueError(f"coupling_radius must be >= 0, got {coupling}")
    free2d = dilate_mask(diff.dirty, rf_radius + coupling)
    sites = connected_components(free2d)

    # Warm start: the parent fill, clipped into the edited problem's box
    # on free coordinates only (an edit can shrink slack there).  Frozen
    # coordinates keep the parent value bit for bit; the parent solve
    # already satisfied the unchanged bounds outside the free set.
    free3d = np.broadcast_to(free2d, problem.layout.shape)
    x0 = np.where(free3d, problem.clip(parent_fill), parent_fill)

    # One shared monolithic base forward: every site freezes its
    # complement at the same warm start, so all sites compose their
    # cropped passes against the same base heights.
    base_heights = network.predict_heights(x0)
    evaluations = 1
    optimizer = optimizer or SqpOptimizer(max_iter=60, tol=1e-9)

    fill = x0.copy()
    site_records: list[dict] = []
    iterations_total = 0
    converged_all = True
    for site2d in sites:
        model = EcoQualityModel(problem, network, x0, site2d,
                                base_heights=base_heights)
        sqp = optimizer.maximize(
            model.value_and_grad, x0, model.lower, model.upper,
            fun_value=model.quality)
        site3d = np.broadcast_to(site2d, fill.shape)
        frozen = ~site3d
        # The pinned bounds force this identity; check it per site so a
        # violation fails loudly instead of being silently repaired.
        if not np.array_equal(sqp.x[frozen], x0[frozen]):
            raise RuntimeError(
                "ECO site optimisation moved frozen coordinates — the "
                "bitwise-outside guarantee is broken")
        fill = np.where(site3d, sqp.x, fill)
        evaluations += model.evaluations
        iterations_total += int(sqp.iterations)
        converged_all &= bool(sqp.converged)
        region = model.region
        site_records.append({
            "free_windows": int(site2d.sum()),
            "core": [region.r0, region.r1, region.c0, region.c1],
            "crop": [region.sr0, region.sr1, region.sc0, region.sc1],
            "sqp_iterations": int(sqp.iterations),
            "sqp_converged": bool(sqp.converged),
        })

    # Re-assert the frozen-complement identity structurally so the
    # bitwise guarantee cannot erode.
    fill = np.where(free3d, fill, parent_fill)

    # Report quality from one monolithic evaluation: comparable to full
    # refills and independent of the region composition.
    final = QualityModel(problem, network).evaluate(fill, want_grad=False)
    extras = {"eco": _eco_extras(diff, free2d, rf_radius, coupling,
                                 cache_hit=False, sites=site_records,
                                 sqp_iterations=iterations_total,
                                 sqp_converged=converged_all)}
    return FillResult(
        method=ECO_METHOD, fill=fill, quality=final.quality,
        planarity=final.planarity, degradation=final.degradation,
        runtime_s=time.perf_counter() - t0,
        evaluations=evaluations + 1, starts=len(sites), extras=extras)


def _eco_extras(diff: LayoutDiff, free2d: np.ndarray | None,
                rf_radius: int, coupling: int, *, cache_hit: bool,
                sites: list[dict] | None = None,
                sqp_iterations: int = 0, sqp_converged: bool = True) -> dict:
    total = int(diff.dirty.size)
    extras = {
        "cache_hit": cache_hit,
        "dirty_windows": diff.num_dirty,
        "dirty_fraction": diff.dirty_fraction,
        "changed_layers": list(diff.changed_layers),
        "total_windows": total,
        "rf_radius": int(rf_radius),
        "coupling_radius": int(coupling),
        "halo_radius": int(rf_radius + coupling),
        "sqp_iterations": int(sqp_iterations),
        "sqp_converged": bool(sqp_converged),
    }
    if free2d is not None:
        extras.update({
            "free_windows": int(free2d.sum()),
            "free_fraction": float(free2d.mean()),
            "num_sites": len(sites or ()),
            "sites": list(sites or ()),
        })
    return extras
