"""MSP-SQP: multiple-starting-point SQP over the quality score (Fig. 7).

The framework couples

* the **CMP neural network** (planarity score + gradient via forward and
  backward propagation),
* the **performance-degradation estimation** (analytic score + gradient),

into one maximisation objective ``S_qual = S_plan + S_PD`` (Eq. 5a), then
runs box-constrained SQP from each starting point and keeps the best
refined solution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import trace as obs_trace
from ..optimize.multistart import refine_starting_points_batched
from ..optimize.sqp import SqpOptimizer, SqpResult
from ..surrogate.network import CmpNeuralNetwork
from ..surrogate.objectives import PlanarityBreakdown
from .degradation import DegradationBreakdown, PerformanceDegradation
from .problem import FillProblem


@dataclass
class QualityEvaluation:
    """Quality score, gradient and both breakdowns at one fill vector."""

    quality: float
    gradient: np.ndarray | None
    planarity: PlanarityBreakdown
    degradation: DegradationBreakdown


class QualityModel:
    """``S_qual`` evaluator combining surrogate planarity and analytic PD.

    Counts every network forward pass in :attr:`evaluations` so runtime
    benches can report evaluation budgets.
    """

    def __init__(self, problem: FillProblem, network: CmpNeuralNetwork):
        if network.layout is not problem.layout:
            # Allow equal layouts bound separately, but shapes must agree.
            if network.layout.shape != problem.layout.shape:
                raise ValueError("network bound to a different layout shape")
        self.problem = problem
        self.network = network
        self.weights = problem.coefficients.planarity_weights()
        self.degradation = PerformanceDegradation(
            problem.layout, problem.coefficients
        )
        self.evaluations = 0

    def evaluate(self, fill: np.ndarray, want_grad: bool = True) -> QualityEvaluation:
        self.evaluations += 1
        fill = self.problem.clip(fill)
        plan = self.network.evaluate(fill, self.weights, want_grad=want_grad)
        pd_breakdown, pd_grad = self.degradation.evaluate(fill, want_grad=want_grad)
        quality = plan.s_plan + pd_breakdown.s_pd
        gradient = None
        if want_grad:
            gradient = plan.gradient + pd_grad
        return QualityEvaluation(
            quality=quality, gradient=gradient,
            planarity=plan.breakdown, degradation=pd_breakdown,
        )

    def evaluate_many(
        self, fills: np.ndarray, need_grad: np.ndarray | bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """K stacked fill vectors through one batched network pass.

        The planarity term runs as a single ``(K * L, C, N, M)`` network
        forward plus one mask-seeded backward; the analytic degradation
        term is cheap and stays a per-start loop.  Row ``k`` equals
        :meth:`evaluate` on ``fills[k]`` — same clipping, same maths —
        to machine precision (BLAS contraction order may differ with the
        batch size at the last ulp), so sequential and batched MSP-SQP
        agree up to floating-point round-off.

        Args:
            fills: stacked fill vectors ``(K, L, N, M)``.
            need_grad: bool or ``(K,)`` mask — which rows need gradients.

        Returns:
            ``(values (K,), gradients (K, L, N, M))``; gradient rows not
            requested are zero.
        """
        fills = np.asarray(fills, dtype=float)
        if fills.ndim != 4:
            raise ValueError(f"fills must be (K, L, N, M), got {fills.shape}")
        K = fills.shape[0]
        mask = np.broadcast_to(np.asarray(need_grad, dtype=bool), (K,))
        self.evaluations += K
        clipped = self.problem.clip(fills)
        plan = self.network.evaluate_batch(clipped, self.weights, grad_mask=mask)
        values = np.empty(K)
        grads = np.zeros_like(fills)
        for k in range(K):
            pd_breakdown, pd_grad = self.degradation.evaluate(
                clipped[k], want_grad=bool(mask[k])
            )
            values[k] = plan.s_plan[k] + pd_breakdown.s_pd
            if mask[k]:
                grads[k] = plan.gradient[k] + pd_grad
        return values, grads

    # Convenience adapters ------------------------------------------------
    def quality(self, fill: np.ndarray) -> float:
        return self.evaluate(fill, want_grad=False).quality

    def value_and_grad(self, fill: np.ndarray) -> tuple[float, np.ndarray]:
        ev = self.evaluate(fill, want_grad=True)
        return ev.quality, ev.gradient


@dataclass
class MspSqpOutcome:
    """Best refined solution plus the per-start SQP results."""

    best_fill: np.ndarray
    best_quality: float
    results: list[SqpResult]
    evaluations: int


def msp_sqp(
    model: QualityModel,
    starts: list[np.ndarray] | np.ndarray,
    optimizer: SqpOptimizer | None = None,
    batched: bool = False,
) -> MspSqpOutcome:
    """Refine every starting point with SQP; return the best solution.

    Args:
        model: the quality-score evaluator.
        starts: starting fills (list, or stacked ``(K, L, N, M)`` array).
        optimizer: SQP configuration.
        batched: advance all starts in lockstep, one batched network
            forward/backward per round, instead of looping start by
            start.  The per-start mathematics is shared, so results
            match the sequential loop up to floating-point round-off
            (BLAS batch-size sensitivity, ~1e-11 on the refined fill).
            Much faster for several starts — the surrogate's batch axis
            is exactly what makes many starting points cheap.
    """
    if len(starts) == 0:
        raise ValueError("MSP-SQP needs at least one starting point")
    optimizer = optimizer or SqpOptimizer()
    lower = model.problem.lower
    upper = model.problem.upper
    before = model.evaluations
    if batched and len(starts) > 1:
        results = refine_starting_points_batched(
            model.evaluate_many, starts, lower, upper, optimizer
        )
    else:
        with obs_trace.span("opt.multistart", cat="opt", starts=len(starts),
                            driver="msp-sequential"):
            results = []
            for index, start in enumerate(starts):
                with obs_trace.span("opt.start", cat="opt", index=index):
                    results.append(
                        optimizer.maximize(model.value_and_grad, start,
                                           lower, upper,
                                           fun_value=model.quality))
    best = max(results, key=lambda r: r.value)
    return MspSqpOutcome(
        best_fill=best.x, best_quality=best.value, results=results,
        evaluations=model.evaluations - before,
    )
