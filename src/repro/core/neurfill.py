"""The NeurFill framework facade (paper Section IV, Fig. 7).

Two operating modes, matching Table III's rows:

* :meth:`NeurFill.run_pkb` — prior-knowledge-based starting point (linear
  target-density search, Eq. 18) followed by one SQP refinement.  Fast;
  quality depends on the empirical prior.
* :meth:`NeurFill.run_multimodal` — NMMSO locates the peak regions of the
  quality score, every located optimum seeds an SQP refinement (MSP-SQP),
  and the best refined solution wins.  Slower, but independent of prior
  knowledge and certifiably the best of all located local optima.

Both modes evaluate planarity through the CMP neural network (backprop
gradients) and performance degradation analytically.
"""

from __future__ import annotations

import time

import numpy as np

from ..cmp.simulator import CmpSimulator
from ..optimize.nmmso import Nmmso
from ..optimize.sqp import SqpOptimizer
from ..surrogate.network import CmpNeuralNetwork
from .msp_sqp import QualityModel, msp_sqp
from .pkb import pkb_starting_point
from .problem import FillProblem
from .result import FillResult
from .scoring import evaluate_solution


class NeurFill:
    """Model-based dummy filling synthesis with a neural CMP surrogate.

    Args:
        problem: layout + score coefficients.
        network: pre-trained CMP neural network bound to the same layout.
        optimizer: SQP configuration (scalable L-BFGS mode by default).
        batched_starts: refine multiple starting points in lockstep with
            batched network passes (see :func:`repro.core.msp_sqp.msp_sqp`)
            instead of sequentially.  Same solutions up to floating-point
            round-off, better wall clock whenever more than one start is
            refined.
    """

    def __init__(self, problem: FillProblem, network: CmpNeuralNetwork,
                 optimizer: SqpOptimizer | None = None,
                 simulator: "CmpSimulator | None" = None,
                 batched_starts: bool = True):
        self.problem = problem
        self.model = QualityModel(problem, network)
        # Score gradients are ~alpha/beta, i.e. tiny in um^2 units, so the
        # projected-gradient tolerance must sit well below them.
        self.optimizer = optimizer or SqpOptimizer(max_iter=60, tol=1e-9)
        self.simulator = simulator
        self.batched_starts = batched_starts

    # ------------------------------------------------------------------
    def _simulator_quality(self, fill: np.ndarray) -> float:
        return evaluate_solution(self.problem, fill, "probe",
                                 simulator=self.simulator).quality

    def run_pkb(self, num_candidates: int = 9) -> FillResult:
        """NeurFill (PKB): prior-knowledge starting point + SQP.

        When a simulator was passed to the constructor it is used for two
        cheap *selection* decisions (gradients stay pure backprop):

        * ranking the ``num_candidates`` PKB targets of the linear search
          (the paper's prior method [12] also ranks them with the model);
        * keeping the refined solution only if the simulator agrees it
          beats the starting point — a guard against surrogate error at
          reduced training budgets (see EXPERIMENTS.md).

        Total extra cost: ``num_candidates + 2`` simulator invocations,
        i.e. ~1e-4 of one finite-difference gradient.
        """
        t0 = time.perf_counter()
        start_evals = self.model.evaluations
        selector = (self._simulator_quality if self.simulator is not None
                    else self.model.quality)
        pkb = pkb_starting_point(
            self.problem.layout, selector, num_candidates
        )
        outcome = msp_sqp(self.model, [pkb.fill], self.optimizer)
        best_fill = outcome.best_fill
        if self.simulator is not None:
            if self._simulator_quality(best_fill) < self._simulator_quality(pkb.fill):
                best_fill = pkb.fill
        final = self.model.evaluate(best_fill, want_grad=False)
        return FillResult(
            method="neurfill-pkb",
            fill=best_fill,
            quality=final.quality,
            planarity=final.planarity,
            degradation=final.degradation,
            runtime_s=time.perf_counter() - t0,
            evaluations=self.model.evaluations - start_evals,
            starts=1,
            extras={"pkb_targets": pkb.targets.tolist(),
                    "pkb_quality": pkb.quality},
        )

    # ------------------------------------------------------------------
    def run_multimodal(
        self,
        max_evaluations: int = 600,
        top_k: int = 4,
        include_pkb: bool = False,
        seed: int = 0,
    ) -> FillResult:
        """NeurFill (MM): multi-modal starting-point search + MSP-SQP.

        Args:
            max_evaluations: NMMSO objective budget (network forwards).
            top_k: number of located optima refined by SQP.
            include_pkb: additionally seed with the PKB start (off by
                default — the paper stresses MM needs no prior knowledge).
            seed: NMMSO RNG seed.

        The winner among the refined candidates is picked with the *real*
        CMP simulator when one was passed to the constructor ("the best
        among all available local optimums" must not be an artefact of
        surrogate error — this costs ``top_k`` simulator calls); without a
        simulator, surrogate quality decides.
        """
        t0 = time.perf_counter()
        start_evals = self.model.evaluations
        search = Nmmso(
            self.model.quality,
            lower=self.problem.lower,
            upper=self.problem.upper,
            max_evaluations=max_evaluations,
            seed=seed,
        )
        found = search.run()
        starts = [o.x for o in found.optima[:top_k]]
        if include_pkb:
            starts.append(
                pkb_starting_point(self.problem.layout, self.model.quality).fill
            )
        outcome = msp_sqp(self.model, starts, self.optimizer,
                          batched=self.batched_starts)
        best_fill = outcome.best_fill
        if self.simulator is not None:
            candidates = [r.x for r in outcome.results]
            verdicts = [
                evaluate_solution(self.problem, c, "mm-candidate",
                                  simulator=self.simulator).quality
                for c in candidates
            ]
            best_fill = candidates[int(np.argmax(verdicts))]
        final = self.model.evaluate(best_fill, want_grad=False)
        return FillResult(
            method="neurfill-mm",
            fill=best_fill,
            quality=final.quality,
            planarity=final.planarity,
            degradation=final.degradation,
            runtime_s=time.perf_counter() - t0,
            evaluations=self.model.evaluations - start_evals,
            starts=len(starts),
            extras={
                "nmmso_optima": len(found.optima),
                "nmmso_evaluations": found.evaluations,
                "refined_qualities": [r.value for r in outcome.results],
            },
        )

    # ------------------------------------------------------------------
    def run(
        self,
        method: str,
        *,
        seed: int = 0,
        max_evaluations: int = 500,
        top_k: int = 3,
        num_candidates: int = 9,
    ) -> FillResult:
        """Dispatch a synthesis mode by its CLI/serve method tag.

        Shared entry point of the one-shot CLI and :mod:`repro.serve`, so
        a served job runs the exact code path of ``repro fill`` — the
        basis of the served-equals-CLI parity guarantee.

        Args:
            method: ``"neurfill-pkb"``/``"pkb"`` or
                ``"neurfill-mm"``/``"mm"``.
            seed / max_evaluations / top_k: forwarded to
                :meth:`run_multimodal` (ignored by PKB).
            num_candidates: forwarded to :meth:`run_pkb` (ignored by MM).
        """
        if method in ("pkb", "neurfill-pkb"):
            return self.run_pkb(num_candidates=num_candidates)
        if method in ("mm", "neurfill-mm"):
            return self.run_multimodal(
                max_evaluations=max_evaluations, top_k=top_k, seed=seed)
        raise ValueError(
            f"unknown NeurFill method {method!r}; expected "
            f"'neurfill-pkb' or 'neurfill-mm'"
        )

    # ------------------------------------------------------------------
    def run_from_start(self, start: np.ndarray, method: str = "neurfill-custom") -> FillResult:
        """Single-start SQP refinement from a caller-provided fill."""
        t0 = time.perf_counter()
        start_evals = self.model.evaluations
        outcome = msp_sqp(self.model, [self.problem.clip(start)], self.optimizer)
        final = self.model.evaluate(outcome.best_fill, want_grad=False)
        return FillResult(
            method=method,
            fill=outcome.best_fill,
            quality=final.quality,
            planarity=final.planarity,
            degradation=final.degradation,
            runtime_s=time.perf_counter() - t0,
            evaluations=self.model.evaluations - start_evals,
            starts=1,
        )
