"""Prior-knowledge-based (PKB) starting-point generation (Section IV-C).

Modified from rule-based target density planning [10]: pick a target
density ``td_l`` per layer, fill every window up to it (Eq. 18), and
linearly search the target over its feasible range, keeping the candidate
with the best quality score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..layout.layout import Layout

#: Signature: fill -> quality score (higher is better).
QualityFn = Callable[[np.ndarray], float]


def fill_for_target_density(layout: Layout, targets: np.ndarray) -> np.ndarray:
    """Eq. 18: the maximum-uniformity fill for per-layer targets ``td_l``.

    Windows denser than the target get nothing; windows that cannot reach
    it are filled to their slack; the rest are topped up exactly.
    """
    targets = np.asarray(targets, dtype=float)
    if targets.shape != (layout.num_layers,):
        raise ValueError(
            f"expected {layout.num_layers} per-layer targets, got shape {targets.shape}"
        )
    area = layout.grid.window_area
    rho = layout.density_stack()
    slack = layout.slack_stack()
    wanted = (targets[:, None, None] - rho) * area
    return np.clip(wanted, 0.0, slack)


def target_density_range(layout: Layout) -> tuple[np.ndarray, np.ndarray]:
    """Feasible per-layer target range: ``[min density, max reachable]``."""
    rho = layout.density_stack()
    reach = rho + layout.slack_stack() / layout.grid.window_area
    lo = rho.min(axis=(1, 2))
    hi = reach.max(axis=(1, 2))
    return lo, hi


@dataclass
class PkbResult:
    """Best candidate of the linear target-density search."""

    fill: np.ndarray
    targets: np.ndarray
    quality: float
    candidates_evaluated: int


def pkb_starting_point(
    layout: Layout,
    quality_fn: QualityFn,
    num_candidates: int = 9,
) -> PkbResult:
    """Linear search of the target layer density (Section IV-C).

    Candidates interpolate each layer's target between its minimum density
    and maximum reachable density with a shared fraction (the paper's 1-D
    "linear search of target layer density"); the candidate with the best
    quality becomes the starting point.

    Args:
        layout: target layout.
        quality_fn: full quality score evaluator (e.g. surrogate planarity
            + analytic degradation).
        num_candidates: grid size of the linear search.
    """
    if num_candidates < 1:
        raise ValueError("need at least one candidate")
    lo, hi = target_density_range(layout)
    best: PkbResult | None = None
    for frac in np.linspace(0.0, 1.0, num_candidates):
        targets = lo + frac * (hi - lo)
        fill = fill_for_target_density(layout, targets)
        quality = float(quality_fn(fill))
        if best is None or quality > best.quality:
            best = PkbResult(
                fill=fill, targets=targets, quality=quality,
                candidates_evaluated=num_candidates,
            )
    assert best is not None
    return best
