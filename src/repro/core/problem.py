"""Problem formulation: score coefficients (Table II) and the fill problem.

The quality score (Eq. 5) combines planarity scores (height variance,
line deviation, outliers — computed on the post-CMP height profile) with
performance-degradation scores (overlay, fill amount).  The overall
contest score adds file size, runtime and memory criteria.  Every
criterion ``t`` is scored as ``f(t) = max(0, 1 - t/beta)`` and weighted by
``alpha`` (Eq. 6); the ``alpha``/``beta`` pairs are benchmark-specific
(Table II).

The paper's literal Table II betas are calibrated to its proprietary
full-scale designs.  For our scaled synthetic designs
:func:`ScoreCoefficients.calibrated` re-derives betas from the *unfilled*
layout (beta = metric value at x = 0, so a score of 1 means "objective
fully repaired"), keeping the paper's alpha weights and relative
structure.  The literal paper values remain available via
:func:`paper_table2` for the Table II benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cmp.simulator import CmpSimulator
from ..layout.layout import Layout
from ..surrogate.objectives import PlanarityWeights, outliers_hard


@dataclass(frozen=True)
class ScoreCoefficients:
    """All ``alpha``/``beta`` pairs of one benchmark design (Table II).

    Betas share the units of their metric: um^2 for overlay/fill amount,
    Angstrom^2 for variance, Angstrom for line deviation and outliers,
    MB for file size, seconds for runtime, GB for memory.
    """

    alpha_overlay: float = 0.15
    beta_overlay: float = 2400724.0
    alpha_fill: float = 0.05
    beta_fill: float = 2400724.0
    alpha_sigma: float = 0.2
    beta_sigma: float = 209.0
    alpha_line: float = 0.2
    beta_line: float = 78132.0
    alpha_outlier: float = 0.15
    beta_outlier: float = 7.1
    alpha_filesize: float = 0.05
    beta_filesize: float = 32.8
    alpha_runtime: float = 0.15
    beta_runtime: float = 1200.0  # 20 minutes, in seconds
    alpha_memory: float = 0.05
    beta_memory: float = 8.0  # GB

    def __post_init__(self) -> None:
        for name, value in vars(self).items():
            if name.startswith("beta") and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @property
    def quality_alpha_total(self) -> float:
        """Total weight of the five quality criteria (0.75 in Table II)."""
        return (
            self.alpha_overlay + self.alpha_fill + self.alpha_sigma
            + self.alpha_line + self.alpha_outlier
        )

    @property
    def overall_alpha_total(self) -> float:
        return (
            self.quality_alpha_total
            + self.alpha_filesize + self.alpha_runtime + self.alpha_memory
        )

    def planarity_weights(self) -> PlanarityWeights:
        """The subset consumed by the CMP neural network's merging layer."""
        return PlanarityWeights(
            alpha_sigma=self.alpha_sigma, beta_sigma=self.beta_sigma,
            alpha_line=self.alpha_line, beta_line=self.beta_line,
            alpha_outlier=self.alpha_outlier, beta_outlier=self.beta_outlier,
        )

    @classmethod
    def calibrated(
        cls,
        layout: Layout,
        simulator: CmpSimulator | None = None,
        headroom: float = 2.0,
        **overrides,
    ) -> "ScoreCoefficients":
        """Re-derive betas for a (scaled) layout from its unfilled metrics.

        * ``beta_sigma`` / ``beta_line`` / ``beta_outlier``: ``headroom``
          times the unfilled layout's own planarity metrics.  The headroom
          keeps every candidate the optimizer visits inside the linear
          band of Eq. 6 (the score saturates to 0 only for solutions
          *worse* than doing nothing twice over), mirroring Table III
          where even the rule-based baselines score positive on every
          criterion.
        * ``beta_overlay`` / ``beta_fill``: the total slack area (Table II
          uses equal betas for both, as does this), so the fill score is
          the unfilled slack fraction.
        * ``beta_filesize``: 2x the input file size (Table II's pattern).
        * runtime/memory betas keep the paper's 20 min / 8 GB.
        """
        if headroom <= 0:
            raise ValueError(f"headroom must be positive, got {headroom}")
        simulator = simulator or CmpSimulator()
        result = simulator.simulate_layout(layout)
        h = result.height
        sigma0 = float(sum(np.var(h[l]) for l in range(h.shape[0])))
        line0 = 0.0
        for l in range(h.shape[0]):
            col_mean = h[l].mean(axis=0, keepdims=True)
            line0 += float(np.abs(h[l] - col_mean).sum())
        ol0 = outliers_hard(h)
        slack_total = float(layout.slack_stack().sum())
        # Outlier betas are ~1e-3 of the line-deviation beta in Table II;
        # keep that ratio as the floor so the outlier score is strict but
        # not a cliff when the unfilled baseline happens to be ~0.
        beta_ol = headroom * max(ol0, 1e-3 * max(line0, 1.0))
        base = cls(
            beta_sigma=max(headroom * sigma0, 1.0),
            beta_line=max(headroom * line0, 1.0),
            beta_outlier=beta_ol,
            beta_overlay=max(slack_total, 1.0),
            beta_fill=max(slack_total, 1.0),
            beta_filesize=max(2.0 * layout.file_size_mb, 0.1),
        )
        return replace(base, **overrides) if overrides else base


#: Literal Table II rows of the paper (file-size betas in MB).
_PAPER_TABLE2 = {
    "A": ScoreCoefficients(
        beta_overlay=2400724.0, beta_fill=2400724.0, beta_sigma=209.0,
        beta_line=78132.0, beta_outlier=7.1, beta_filesize=32.8,
    ),
    "B": ScoreCoefficients(
        beta_overlay=6596491.0, beta_fill=6596491.0, beta_sigma=133.0,
        beta_line=23616.0, beta_outlier=25.0, beta_filesize=1897.4,
    ),
    "C": ScoreCoefficients(
        beta_overlay=3232445.0, beta_fill=3232445.0, beta_sigma=105.0,
        beta_line=17281.0, beta_outlier=17.0, beta_filesize=161.2,
    ),
}


def paper_table2(design: str) -> ScoreCoefficients:
    """The paper's literal Table II coefficients for design A, B or C."""
    try:
        return _PAPER_TABLE2[design.upper()]
    except KeyError:
        raise ValueError(f"unknown design {design!r}; expected A, B or C")


@dataclass
class FillProblem:
    """One dummy-filling instance: layout + score coefficients.

    Exposes the box constraints of Eq. 5d and convenience accessors used
    by every synthesis method (NeurFill and the baselines alike).
    """

    layout: Layout
    coefficients: ScoreCoefficients

    @property
    def lower(self) -> np.ndarray:
        return np.zeros(self.layout.shape)

    @property
    def upper(self) -> np.ndarray:
        return self.layout.slack_stack()

    @property
    def num_variables(self) -> int:
        return int(np.prod(self.layout.shape))

    def clip(self, fill: np.ndarray) -> np.ndarray:
        """Project a fill vector into the feasible box."""
        return np.clip(fill, self.lower, self.upper)

    def feasible(self, fill: np.ndarray, atol: float = 1e-6) -> bool:
        return bool(
            fill.shape == self.layout.shape
            and np.all(fill >= -atol)
            and np.all(fill <= self.upper + atol)
        )
