"""Result containers for filling synthesis runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..surrogate.objectives import PlanarityBreakdown
from .degradation import DegradationBreakdown


@dataclass
class FillResult:
    """Outcome of one dummy-filling synthesis run.

    Attributes:
        method: human-readable method tag (``"neurfill-pkb"`` etc.).
        fill: final fill areas, shape ``(L, N, M)``.
        quality: surrogate/analytic quality score at the solution
            (``S_plan + S_PD``, Eq. 5a) as seen by the optimizer.
        planarity: planarity breakdown at the solution.
        degradation: performance-degradation breakdown at the solution.
        runtime_s: wall-clock synthesis time.
        evaluations: objective evaluations (simulator calls or network
            forward passes) spent.
        starts: number of starting points explored (MSP).
        extras: method-specific diagnostics.
    """

    method: str
    fill: np.ndarray
    quality: float
    planarity: PlanarityBreakdown | None = None
    degradation: DegradationBreakdown | None = None
    runtime_s: float = 0.0
    evaluations: int = 0
    starts: int = 1
    extras: dict = field(default_factory=dict)

    @property
    def total_fill(self) -> float:
        return float(self.fill.sum())

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.method}: quality={self.quality:.4f} "
            f"fill={self.total_fill:.3g} um^2 "
            f"runtime={self.runtime_s:.2f}s evals={self.evaluations} "
            f"starts={self.starts}"
        )
