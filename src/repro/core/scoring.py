"""Final solution scoring against the real CMP simulator (Table III).

The optimizer sees the surrogate; the *verdict* comes from the full-chip
simulator, exactly as the paper reports Table III.  This module computes
every Table III column for a finished fill:

``DeltaH``, Performance (overlay score), Variation, Line Deviation,
Outliers, File Size, Runtime, Memory, Quality and Overall.

Score conventions (documented assumptions — see EXPERIMENTS.md):

* Quality is the weighted mean of the five quality criteria (overlay,
  fill amount, variance, line deviation, outliers), i.e. the Eq. 5a score
  normalised by its total alpha (0.75) so it reads on a 0-1 scale.
* Overall is the full contest-weighted sum over all eight criteria
  (alphas sum to 1.0).
* The Performance column is the overlay score ``f_ov``.
* Output file size is the input size plus ~50 bytes per inserted dummy
  rectangle (a GDSII BOUNDARY record).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cmp.simulator import CmpResult, CmpSimulator
from ..layout.fill_regions import compute_slack_regions
from ..layout.layout import DUMMY_SIDE_UM, Layout, dummy_count
from ..surrogate.objectives import outliers_hard
from .degradation import overlay_area
from .problem import FillProblem, ScoreCoefficients

#: Approximate GDSII bytes per dummy rectangle.
BYTES_PER_DUMMY: float = 50.0


def _score(t: float, beta: float) -> float:
    return min(1.0, max(0.0, 1.0 - t / beta))


@dataclass
class SolutionScore:
    """All Table III columns for one method on one design."""

    method: str
    delta_h: float  # Angstrom, max per-layer height range
    overlay: float
    fill_amount: float
    sigma: float
    line: float
    outlier: float
    output_file_mb: float
    runtime_s: float
    memory_gb: float
    score_performance: float  # f_ov
    score_fill: float
    score_variation: float
    score_line: float
    score_outliers: float
    score_filesize: float
    score_runtime: float
    score_memory: float
    quality: float
    overall: float


def planarity_metrics(heights: np.ndarray) -> tuple[float, float, float, float]:
    """``(delta_h, sigma, line_deviation, outliers)`` from a height stack."""
    L = heights.shape[0]
    delta_h = max(float(heights[l].max() - heights[l].min()) for l in range(L))
    sigma = float(sum(np.var(heights[l]) for l in range(L)))
    line = 0.0
    for l in range(L):
        col_mean = heights[l].mean(axis=0, keepdims=True)
        line += float(np.abs(heights[l] - col_mean).sum())
    return delta_h, sigma, line, outliers_hard(heights)


def estimate_output_file_mb(layout: Layout, fill: np.ndarray,
                            dummy_side: float = DUMMY_SIDE_UM) -> float:
    """Input file size plus the serialised dummies."""
    n_dummies = float(dummy_count(fill, dummy_side).sum())
    return layout.file_size_mb + n_dummies * BYTES_PER_DUMMY / 1e6


def evaluate_solution(
    problem: FillProblem,
    fill: np.ndarray,
    method: str,
    simulator: CmpSimulator | None = None,
    runtime_s: float = 0.0,
    memory_gb: float = 0.0,
    cmp_result: CmpResult | None = None,
) -> SolutionScore:
    """Score a finished fill with the real simulator.

    Args:
        problem: layout + coefficients.
        fill: fill areas (clipped into the feasible box before scoring).
        method: row label.
        simulator: teacher simulator (default calibration if omitted).
        runtime_s / memory_gb: measured synthesis cost for the runtime and
            memory criteria.
        cmp_result: pre-computed simulation of this exact fill (skips the
            internal simulation when provided).
    """
    layout = problem.layout
    c: ScoreCoefficients = problem.coefficients
    fill = problem.clip(fill)
    if cmp_result is None:
        simulator = simulator or CmpSimulator()
        cmp_result = simulator.simulate_layout(layout, fill)

    delta_h, sigma, line, ol = planarity_metrics(cmp_result.height)
    regions = compute_slack_regions(layout)
    ov, _, _ = overlay_area(fill, regions)
    fa = float(fill.sum())
    out_mb = estimate_output_file_mb(layout, fill)

    s_perf = _score(ov, c.beta_overlay)
    s_fill = _score(fa, c.beta_fill)
    s_var = _score(sigma, c.beta_sigma)
    s_line = _score(line, c.beta_line)
    s_ol = _score(ol, c.beta_outlier)
    s_fs = _score(out_mb, c.beta_filesize)
    s_rt = _score(runtime_s, c.beta_runtime)
    s_mem = _score(memory_gb, c.beta_memory)

    quality_weighted = (
        c.alpha_overlay * s_perf + c.alpha_fill * s_fill
        + c.alpha_sigma * s_var + c.alpha_line * s_line
        + c.alpha_outlier * s_ol
    )
    quality = quality_weighted / c.quality_alpha_total
    overall = (
        quality_weighted
        + c.alpha_filesize * s_fs + c.alpha_runtime * s_rt
        + c.alpha_memory * s_mem
    ) / c.overall_alpha_total

    return SolutionScore(
        method=method, delta_h=delta_h, overlay=ov, fill_amount=fa,
        sigma=sigma, line=line, outlier=ol, output_file_mb=out_mb,
        runtime_s=runtime_s, memory_gb=memory_gb,
        score_performance=s_perf, score_fill=s_fill, score_variation=s_var,
        score_line=s_line, score_outliers=s_ol, score_filesize=s_fs,
        score_runtime=s_rt, score_memory=s_mem,
        quality=quality, overall=overall,
    )
