"""Evaluation harness: method comparison and table builders."""

from .comparison import ComparisonRow, FillMethod, run_comparison, run_method
from .tables import format_histogram, format_table1, format_table2, format_table3

__all__ = [
    "ComparisonRow",
    "FillMethod",
    "format_histogram",
    "format_table1",
    "format_table2",
    "format_table3",
    "run_comparison",
    "run_method",
]
