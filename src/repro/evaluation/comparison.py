"""Method-comparison harness: runs every filler and scores it (Table III).

Each method's fill is judged by the *real* CMP simulator with the
design's coefficients; runtime is wall-clock and memory is the Python
allocation peak during synthesis (tracemalloc), converted to GB for the
memory criterion.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cmp.simulator import CmpSimulator
from ..core.problem import FillProblem
from ..core.result import FillResult
from ..core.scoring import SolutionScore, evaluate_solution

#: Signature of a synthesis method: problem -> FillResult.
FillMethod = Callable[[FillProblem], FillResult]


@dataclass
class ComparisonRow:
    """One method's synthesis result plus its simulator-judged score."""

    result: FillResult
    score: SolutionScore
    memory_gb: float


def run_method(
    problem: FillProblem,
    method: FillMethod,
    simulator: CmpSimulator | None = None,
    track_memory: bool = True,
) -> ComparisonRow:
    """Run one synthesis method and score its output."""
    simulator = simulator or CmpSimulator()
    if track_memory:
        tracemalloc.start()
    t0 = time.perf_counter()
    result = method(problem)
    runtime = time.perf_counter() - t0
    memory_gb = 0.0
    if track_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        memory_gb = peak / 1e9
    score = evaluate_solution(
        problem, result.fill, result.method, simulator=simulator,
        runtime_s=runtime, memory_gb=memory_gb,
    )
    return ComparisonRow(result=result, score=score, memory_gb=memory_gb)


def run_comparison(
    problem: FillProblem,
    methods: dict[str, FillMethod],
    simulator: CmpSimulator | None = None,
    include_nofill: bool = True,
    track_memory: bool = True,
) -> list[ComparisonRow]:
    """Run a suite of methods on one problem; rows keep the input order."""
    if not methods:
        raise ValueError("no methods supplied")
    simulator = simulator or CmpSimulator()
    rows: list[ComparisonRow] = []
    if include_nofill:
        nofill = FillResult(method="no-fill", fill=np.zeros(problem.layout.shape),
                            quality=float("nan"))
        score = evaluate_solution(problem, nofill.fill, "no-fill",
                                  simulator=simulator)
        rows.append(ComparisonRow(result=nofill, score=score, memory_gb=0.0))
    for name, method in methods.items():
        row = run_method(problem, method, simulator, track_memory)
        row.score.method = name
        rows.append(row)
    return rows
