"""Plain-text table formatting for the paper's tables and figures."""

from __future__ import annotations

import numpy as np

from ..core.problem import ScoreCoefficients
from ..core.scoring import SolutionScore


def format_table3(rows: list[SolutionScore], title: str = "") -> str:
    """Render Table III rows: per-method metric scores and totals."""
    header = (
        f"{'Method':<14} {'dH(A)':>8} {'Perf':>6} {'Var':>6} {'Line':>6} "
        f"{'Outl':>6} {'FSize':>6} {'Runtime':>12} {'Mem':>6} "
        f"{'Quality':>8} {'Overall':>8}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for s in rows:
        runtime = f"{s.score_runtime:.3f} ({s.runtime_s:.1f}s)"
        lines.append(
            f"{s.method:<14} {s.delta_h:>8.1f} {s.score_performance:>6.3f} "
            f"{s.score_variation:>6.3f} {s.score_line:>6.3f} "
            f"{s.score_outliers:>6.3f} {s.score_filesize:>6.3f} "
            f"{runtime:>12} {s.score_memory:>6.3f} "
            f"{s.quality:>8.3f} {s.overall:>8.3f}"
        )
    return "\n".join(lines)


def format_table1(
    sim_eval_s: float,
    sim_grad_s: float,
    nn_eval_s: float,
    nn_grad_s: float,
    cores_projected: int = 64,
) -> str:
    """Render Table I: objective-evaluation and gradient runtimes.

    The simulator columns are measured single-core; the 64-core column is
    an ideal-scaling projection (documented substitution — the paper
    measured a real 64-core box).
    """
    sim_eval_mc = sim_eval_s  # objective evaluation does not parallelise per-variable
    sim_grad_mc = sim_grad_s / cores_projected
    rows = [
        ("Objective Evaluation", sim_eval_s, sim_eval_mc, nn_eval_s,
         sim_eval_mc / nn_eval_s if nn_eval_s > 0 else float("inf")),
        ("Gradient Calculation", sim_grad_s, sim_grad_mc, nn_grad_s,
         sim_grad_mc / nn_grad_s if nn_grad_s > 0 else float("inf")),
    ]
    header = (
        f"{'Operation':<22} {'Simulator 1c':>14} {'Simulator '+str(cores_projected)+'c*':>15} "
        f"{'CMP NN':>10} {'Speedup':>10}"
    )
    lines = [header, "-" * len(header)]
    for name, s1, smc, nn, speedup in rows:
        lines.append(
            f"{name:<22} {s1:>13.3f}s {smc:>14.3f}s {nn:>9.4f}s {speedup:>9.1f}x"
        )
    lines.append(f"* ideal-scaling projection to {cores_projected} cores")
    return "\n".join(lines)


def format_table2(named_coeffs: dict[str, ScoreCoefficients]) -> str:
    """Render Table II: score-function coefficients per design."""
    header = (
        f"{'Design':<7} {'a_ov':>5} {'b_ov':>10} {'a_fa':>5} {'b_fa':>10} "
        f"{'a_s':>5} {'b_s':>9} {'a_s*':>5} {'b_s*':>9} {'a_ol':>5} {'b_ol':>7} "
        f"{'a_fs':>5} {'b_fs':>8} {'a_t':>4} {'b_t':>7} {'a_m':>4} {'b_m':>5}"
    )
    lines = [header, "-" * len(header)]
    for name, c in named_coeffs.items():
        lines.append(
            f"{name:<7} {c.alpha_overlay:>5.2f} {c.beta_overlay:>10.0f} "
            f"{c.alpha_fill:>5.2f} {c.beta_fill:>10.0f} "
            f"{c.alpha_sigma:>5.2f} {c.beta_sigma:>9.1f} "
            f"{c.alpha_line:>5.2f} {c.beta_line:>9.0f} "
            f"{c.alpha_outlier:>5.2f} {c.beta_outlier:>7.2f} "
            f"{c.alpha_filesize:>5.2f} {c.beta_filesize:>8.1f} "
            f"{c.alpha_runtime:>4.2f} {c.beta_runtime:>6.0f}s "
            f"{c.alpha_memory:>4.2f} {c.beta_memory:>4.0f}G"
        )
    return "\n".join(lines)


def format_histogram(counts: np.ndarray, edges: np.ndarray,
                     title: str = "", width: int = 40) -> str:
    """ASCII histogram (Fig. 9 rendering)."""
    lines = [title] if title else []
    peak = max(int(counts.max()), 1)
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{lo * 100:6.2f}%-{hi * 100:6.2f}% | {bar} {count}")
    return "\n".join(lines)
