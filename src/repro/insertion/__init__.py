"""Filling insertion: turn synthesis results into dummy shapes."""

from .io import load_shapes, save_shapes, shapes_from_dict, shapes_to_dict
from .placer import (
    DummyShape,
    InsertionResult,
    insert_dummies,
    rasterise_shapes,
    window_capacity,
)

__all__ = [
    "DummyShape",
    "InsertionResult",
    "insert_dummies",
    "load_shapes",
    "rasterise_shapes",
    "save_shapes",
    "shapes_from_dict",
    "shapes_to_dict",
    "window_capacity",
]
