"""Serialisation of inserted dummy shapes (GDS-free interchange)."""

from __future__ import annotations

import json
from pathlib import Path

from ..layout.geometry import Rect
from .placer import DummyShape

_FORMAT_VERSION = 1


def shapes_to_dict(shapes: list[DummyShape]) -> dict:
    return {
        "format_version": _FORMAT_VERSION,
        "shapes": [
            {"layer": s.layer,
             "rect": [s.rect.x0, s.rect.y0, s.rect.x1, s.rect.y1]}
            for s in shapes
        ],
    }


def shapes_from_dict(data: dict) -> list[DummyShape]:
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported shapes format version: {version!r}")
    return [
        DummyShape(layer=int(item["layer"]), rect=Rect(*item["rect"]))
        for item in data["shapes"]
    ]


def save_shapes(shapes: list[DummyShape], path: str | Path) -> None:
    Path(path).write_text(json.dumps(shapes_to_dict(shapes)))


def load_shapes(path: str | Path) -> list[DummyShape]:
    return shapes_from_dict(json.loads(Path(path).read_text()))
