"""Dummy fill *insertion*: turn per-window fill areas into dummy shapes.

The paper splits the flow into filling **synthesis** (how much metal per
window — everything in :mod:`repro.core`) and filling **insertion**
(which shapes, where — Section I).  This module implements a
grid-placement inserter so the repository covers the full flow:

* each window receives square dummies of a configurable side length on a
  regular grid with spacing-rule margins (no dummy-dummy or dummy-window
  violations by construction); the 0.1 um default spacing is sized so a
  window filled to its full slack is always placeable;
* the requested fill area is matched as closely as the shape quantisation
  allows (one dummy granularity);
* the result can be serialised and re-rasterised onto the window grid for
  verification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.geometry import Rect
from ..layout.layout import DUMMY_SIDE_UM, Layout


@dataclass(frozen=True)
class DummyShape:
    """One inserted dummy rectangle on a named layer."""

    layer: int
    rect: Rect


@dataclass
class InsertionResult:
    """All inserted dummies plus bookkeeping.

    Attributes:
        shapes: every placed dummy.
        placed_area: realised fill area per window, shape ``(L, N, M)``.
        requested_area: the synthesis fill the placer tried to match.
    """

    shapes: list[DummyShape]
    placed_area: np.ndarray
    requested_area: np.ndarray

    @property
    def count(self) -> int:
        return len(self.shapes)

    @property
    def quantisation_error(self) -> float:
        """Worst per-window |placed - requested| in um^2."""
        return float(np.max(np.abs(self.placed_area - self.requested_area)))


def window_capacity(window_um: float, dummy_side: float, spacing: float) -> int:
    """How many dummies fit in one window on the spacing-rule grid."""
    pitch = dummy_side + spacing
    per_axis = int((window_um - spacing) // pitch)
    return max(0, per_axis) ** 2


def insert_dummies(
    layout: Layout,
    fill: np.ndarray,
    dummy_side: float = DUMMY_SIDE_UM,
    spacing: float = 0.1,
) -> InsertionResult:
    """Place square dummies realising a synthesis result.

    Args:
        layout: target layout (defines the window grid).
        fill: per-window fill areas from synthesis, shape ``(L, N, M)``.
        dummy_side: square dummy edge length (um).
        spacing: minimum dummy-to-dummy / dummy-to-window-border space.

    Returns:
        An :class:`InsertionResult`; placement is deterministic (row-major
        grid order inside each window).

    Raises:
        ValueError: if a window requests more area than its spacing-rule
            capacity can realise.
    """
    if dummy_side <= 0 or spacing < 0:
        raise ValueError("dummy_side must be positive and spacing non-negative")
    layout.validate_fill(fill)
    win = layout.grid.window_um
    pitch = dummy_side + spacing
    per_axis = int((win - spacing) // pitch)
    capacity = max(0, per_axis) ** 2
    area_each = dummy_side * dummy_side

    needed = np.rint(fill / area_each).astype(int)
    if np.any(needed > capacity):
        worst = int(needed.max())
        raise ValueError(
            f"window needs {worst} dummies but spacing-rule capacity is "
            f"{capacity}; use a smaller dummy_side or spacing"
        )

    shapes: list[DummyShape] = []
    placed = np.zeros_like(fill)
    L, N, M = fill.shape
    for l in range(L):
        for i in range(N):
            for j in range(M):
                count = int(needed[l, i, j])
                if count == 0:
                    continue
                x0 = j * win + spacing
                y0 = i * win + spacing
                for k in range(count):
                    r, c = divmod(k, per_axis)
                    x = x0 + c * pitch
                    y = y0 + r * pitch
                    shapes.append(DummyShape(
                        layer=l,
                        rect=Rect(x, y, x + dummy_side, y + dummy_side),
                    ))
                placed[l, i, j] = count * area_each
    return InsertionResult(shapes=shapes, placed_area=placed,
                           requested_area=np.asarray(fill, dtype=float))


def rasterise_shapes(
    layout: Layout, shapes: list[DummyShape]
) -> np.ndarray:
    """Re-rasterise dummy shapes onto the window grid (area per window).

    Verification helper: the output should equal
    :attr:`InsertionResult.placed_area` for shapes produced by
    :func:`insert_dummies`.
    """
    area = np.zeros(layout.shape)
    win = layout.grid.window_um
    for shape in shapes:
        cx = 0.5 * (shape.rect.x0 + shape.rect.x1)
        cy = 0.5 * (shape.rect.y0 + shape.rect.y1)
        i, j = layout.grid.window_of(cx, cy)
        area[shape.layer, i, j] += shape.rect.area
    return area
