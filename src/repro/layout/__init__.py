"""Layout substrate: window grids, layouts, synthetic designs, fill regions."""

from .assembly import (
    assemble_layout,
    generate_training_layouts,
    random_legal_fill,
    tile_to_size,
    window_pool,
)
from .designs import (
    DESIGN_BUILDERS,
    make_design,
    make_design_a,
    make_design_b,
    make_design_c,
    make_two_fillable_window_layout,
)
from .diff import (LayoutDiff, connected_components, diff_layouts,
                   dilate_mask, edit_layout)
from .fill_regions import SlackRegions, allocate_fill_by_priority, compute_slack_regions
from .geometry import Rect, union_area
from .grid import WindowGrid
from .io import layout_from_dict, layout_to_dict, load_layout, save_layout
from .layout import (
    DUMMY_SIDE_UM,
    MAX_FILL_DENSITY,
    FeatureStack,
    LayerWindows,
    Layout,
    apply_fill,
    dummy_count,
    stack_features,
)

__all__ = [
    "DESIGN_BUILDERS",
    "DUMMY_SIDE_UM",
    "MAX_FILL_DENSITY",
    "FeatureStack",
    "LayerWindows",
    "Layout",
    "LayoutDiff",
    "Rect",
    "SlackRegions",
    "WindowGrid",
    "allocate_fill_by_priority",
    "apply_fill",
    "assemble_layout",
    "compute_slack_regions",
    "connected_components",
    "diff_layouts",
    "dilate_mask",
    "dummy_count",
    "edit_layout",
    "generate_training_layouts",
    "layout_from_dict",
    "layout_to_dict",
    "load_layout",
    "make_design",
    "make_design_a",
    "make_design_b",
    "make_design_c",
    "make_two_fillable_window_layout",
    "random_legal_fill",
    "save_layout",
    "stack_features",
    "tile_to_size",
    "union_area",
    "window_pool",
]
