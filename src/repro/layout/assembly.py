"""Two-step random training-data generation (paper Fig. 8).

The paper cannot collect enough real layouts to train the UNet, so it:

1. chops the available designs into windows and randomly re-assembles the
   windows into new layouts of the network's fixed input size; then
2. inserts random dummies into the assembled layouts "with no design rule
   violation" (i.e. within each window's slack).

Both steps are reproduced here.  Step 1 samples windows (with their full
feature tuple) from a pool built from one or more source layouts; step 2
draws a random legal fill and bakes it into the layer statistics via
:func:`repro.layout.layout.apply_fill` so the simulator sees a post-fill
pattern.
"""

from __future__ import annotations

import numpy as np

from ..config import rng_from_seed
from .grid import WindowGrid
from .layout import LayerWindows, Layout, apply_fill


def window_pool(layouts: list[Layout]) -> dict[str, np.ndarray]:
    """Flatten source layouts into per-window feature records.

    Returns arrays keyed by feature name, each of shape ``(P, L)`` where
    ``P`` is the pool size (one entry per (i, j) window position across all
    source layouts) and ``L`` the layer count.  All source layouts must
    share the same layer count.
    """
    if not layouts:
        raise ValueError("need at least one source layout")
    L = layouts[0].num_layers
    if any(l.num_layers != L for l in layouts):
        raise ValueError("all source layouts must have the same layer count")

    def flat(stack: np.ndarray) -> np.ndarray:
        # (L, N, M) -> (N*M, L)
        return stack.reshape(stack.shape[0], -1).T

    keys = ("density", "slack", "perimeter", "width")
    pools = {k: [] for k in keys}
    for layout in layouts:
        pools["density"].append(flat(layout.density_stack()))
        pools["slack"].append(flat(layout.slack_stack()))
        pools["perimeter"].append(flat(layout.perimeter_stack()))
        pools["width"].append(flat(layout.width_stack()))
    return {k: np.concatenate(v, axis=0) for k, v in pools.items()}


def assemble_layout(
    pool: dict[str, np.ndarray],
    rows: int,
    cols: int,
    trench_depths: np.ndarray,
    rng: np.random.Generator,
    name: str = "assembled",
) -> Layout:
    """Step 1: draw ``rows*cols`` windows from the pool and tile them."""
    P, L = pool["density"].shape
    idx = rng.integers(0, P, size=rows * cols)
    grid = WindowGrid(rows, cols)
    layers = []
    for l in range(L):
        layers.append(
            LayerWindows(
                name=f"M{l + 1}",
                density=pool["density"][idx, l].reshape(rows, cols),
                slack=pool["slack"][idx, l].reshape(rows, cols),
                wire_perimeter=pool["perimeter"][idx, l].reshape(rows, cols),
                wire_width=pool["width"][idx, l].reshape(rows, cols),
                trench_depth=float(trench_depths[l]),
            )
        )
    return Layout(name, grid, layers, metadata={"kind": "assembled"})


def random_legal_fill(layout: Layout, rng: np.random.Generator) -> np.ndarray:
    """Step 2: a random fill within each window's slack (no rule violation).

    The fill is hierarchical: a per-layer global level times per-window
    uniform noise.  Pure per-window uniform fills would concentrate every
    training layout around half-full density — the surrogate would then
    never see near-unfilled or near-full regimes, exactly the candidates
    the PKB linear search must rank.
    """
    slack = layout.slack_stack()
    level = rng.random((layout.num_layers, 1, 1))
    return level * rng.random(slack.shape) * slack


def generate_training_layouts(
    sources: list[Layout],
    count: int,
    rows: int,
    cols: int,
    seed: int | np.random.Generator | None = 0,
) -> list[tuple[Layout, np.ndarray]]:
    """Full two-step procedure: ``count`` assembled layouts with random fill.

    Returns ``(layout, fill)`` pairs; callers push them through
    :func:`repro.layout.layout.apply_fill` (or the surrogate's extraction
    layer) and the CMP simulator to label them.
    """
    rng = rng_from_seed(seed)
    pool = window_pool(sources)
    depths = sources[0].trench_depths()
    out = []
    for k in range(count):
        layout = assemble_layout(pool, rows, cols, depths, rng, name=f"train_{k:05d}")
        fill = random_legal_fill(layout, rng)
        out.append((layout, fill))
    return out


def tile_to_size(layout: Layout, rows: int, cols: int) -> Layout:
    """Duplicate a small layout periodically to cover a fixed network size.

    Implements the paper's rule that "layouts smaller than the fixed size
    will be duplicated several times to cover the whole input layout".
    Layouts already at least as large are cropped to the requested size.
    """
    reps_r = -(-rows // layout.grid.rows)
    reps_c = -(-cols // layout.grid.cols)

    def tile(arr: np.ndarray) -> np.ndarray:
        return np.tile(arr, (reps_r, reps_c))[:rows, :cols]

    layers = [
        LayerWindows(
            name=layer.name,
            density=tile(layer.density),
            slack=tile(layer.slack),
            wire_perimeter=tile(layer.wire_perimeter),
            wire_width=tile(layer.wire_width),
            trench_depth=layer.trench_depth,
        )
        for layer in layout.layers
    ]
    grid = WindowGrid(rows, cols, layout.grid.window_um)
    return Layout(
        f"{layout.name}_tiled", grid, layers,
        file_size_mb=layout.file_size_mb, metadata=dict(layout.metadata),
    )
