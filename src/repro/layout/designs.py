"""Synthetic benchmark designs standing in for the paper's GDS layouts.

The paper evaluates on three proprietary designs:

* **Design A** — a CMP test chip (5 cm x 5 cm, 16.4 MB): regular arrays of
  density step wedges, the classic pattern used to calibrate CMP models.
* **Design B** — an FPGA (6.7 cm x 6.3 cm, 948.7 MB): a highly repetitive
  logic-tile fabric crossed by lower-density routing channels.
* **Design C** — a RISC-V CPU (10 cm x 10 cm, 80.6 MB): heterogeneous macro
  blocks (dense SRAM arrays, medium datapath, sparse periphery).

We cannot ship those GDS files, so each generator below synthesises a layout
with the same *qualitative* density structure at window granularity — which
is all the filling problem consumes (see DESIGN.md, substitution table).
Grids are scaled down so the full pipeline runs on one CPU; pass ``rows`` /
``cols`` to change the resolution.

All generators are deterministic for a given ``seed``.
"""

from __future__ import annotations

import numpy as np

from ..config import rng_from_seed
from .grid import WindowGrid
from .layout import MAX_FILL_DENSITY, LayerWindows, Layout

#: Fraction of the theoretical slack that survives spacing-rule keep-outs.
_SLACK_AVAILABILITY: tuple[float, float] = (0.55, 0.85)

#: Trench depth (Angstrom) per layer index; lower layers are shallower.
_TRENCH_DEPTHS: tuple[float, ...] = (2800.0, 3200.0, 3600.0)


def _derive_layer(
    name: str,
    density: np.ndarray,
    wire_width: float | np.ndarray,
    trench_depth: float,
    window_area: float,
    rng: np.random.Generator,
) -> LayerWindows:
    """Build per-window slack/perimeter/width statistics from a density map.

    Wires are modelled as long lines of width ``wire_width``: a window with
    copper area ``rho * A`` then carries total wire length ``rho*A/w`` and
    perimeter ``~2 * rho * A / w``.  Slack is the under-dense headroom up to
    :data:`MAX_FILL_DENSITY`, derated by a spacing-rule availability factor.

    ``wire_width`` may be a per-window array: real designs mix wire
    pitches per region (fine SRAM bitlines vs wide power routes), which is
    what separates model-based filling from density-only rules — equal
    drawn density with different perimeters polishes differently.
    """
    density = np.clip(density, 0.0, 0.95)
    avail = rng.uniform(*_SLACK_AVAILABILITY, size=density.shape)
    slack = np.maximum(0.0, MAX_FILL_DENSITY - density) * window_area * avail
    width = np.broadcast_to(np.asarray(wire_width, dtype=float),
                            density.shape).copy()
    perimeter = 2.0 * density * window_area / width
    return LayerWindows(
        name=name,
        density=density,
        slack=slack,
        wire_perimeter=perimeter,
        wire_width=width,
        trench_depth=trench_depth,
    )


def _smooth(field: np.ndarray, passes: int = 1) -> np.ndarray:
    """Cheap 3x3 box smoothing with edge replication (keeps shape)."""
    out = field
    for _ in range(passes):
        padded = np.pad(out, 1, mode="edge")
        out = (
            padded[:-2, :-2] + padded[:-2, 1:-1] + padded[:-2, 2:]
            + padded[1:-1, :-2] + padded[1:-1, 1:-1] + padded[1:-1, 2:]
            + padded[2:, :-2] + padded[2:, 1:-1] + padded[2:, 2:]
        ) / 9.0
    return out


def make_design_a(rows: int = 48, cols: int = 48, seed: int = 0) -> Layout:
    """CMP test chip: tiled density step wedges plus sparse gaps."""
    rng = rng_from_seed(seed)
    grid = WindowGrid(rows, cols)
    layers = []
    wedge_levels = np.array([0.10, 0.20, 0.30, 0.45, 0.60, 0.70])
    for idx in range(3):
        tile = max(4, rows // 8)
        density = np.zeros((rows, cols))
        for bi in range(0, rows, tile):
            for bj in range(0, cols, tile):
                # Step wedge index walks across the chip; rotate per layer.
                step = ((bi // tile) + (bj // tile) * (idx + 1)) % len(wedge_levels)
                density[bi : bi + tile, bj : bj + tile] = wedge_levels[step]
        density += rng.normal(0.0, 0.015, size=density.shape)
        # A few deliberately empty calibration windows.
        empties = rng.random(density.shape) < 0.03
        density[empties] = 0.02
        # Alternate tiles use fine/coarse test structures: same density
        # wedge, very different perimeters.
        width = np.full(density.shape, 0.14 + 0.06 * idx)
        for bi in range(0, rows, tile):
            for bj in range(0, cols, tile):
                if ((bi // tile) + (bj // tile)) % 2:
                    width[bi : bi + tile, bj : bj + tile] *= 2.5
        layer = _derive_layer(
            f"M{idx + 1}", density, wire_width=width,
            trench_depth=_TRENCH_DEPTHS[idx], window_area=grid.window_area, rng=rng,
        )
        layers.append(layer)
    return Layout("design_a", grid, layers, file_size_mb=16.4,
                  metadata={"kind": "cmp_test"})


def make_design_b(rows: int = 64, cols: int = 60, seed: int = 1) -> Layout:
    """FPGA fabric: repetitive logic tiles crossed by routing channels."""
    rng = rng_from_seed(seed)
    grid = WindowGrid(rows, cols)
    layers = []
    for idx in range(3):
        density = np.full((rows, cols), 0.55 - 0.05 * idx)
        # Routing channels every `pitch` windows (both directions).
        pitch = 6 + idx
        density[::pitch, :] = 0.28 - 0.04 * idx
        density[:, ::pitch] = 0.28 - 0.04 * idx
        # Column of IO/config blocks along one edge.
        density[:, : max(2, cols // 16)] = 0.18
        # Per-tile mismatch from LUT utilisation.
        density += rng.normal(0.0, 0.02, size=density.shape)
        density = _smooth(density, passes=1)
        # Routing channels carry wide buses; logic tiles use fine pitch.
        width = np.full(density.shape, 0.10 + 0.05 * idx)
        width[::pitch, :] *= 3.0
        width[:, ::pitch] *= 3.0
        layer = _derive_layer(
            f"M{idx + 1}", density, wire_width=width,
            trench_depth=_TRENCH_DEPTHS[idx], window_area=grid.window_area, rng=rng,
        )
        layers.append(layer)
    return Layout("design_b", grid, layers, file_size_mb=948.7,
                  metadata={"kind": "fpga"})


def make_design_c(rows: int = 80, cols: int = 80, seed: int = 2) -> Layout:
    """RISC-V CPU: heterogeneous macros — dense SRAM, datapath, sparse edge."""
    rng = rng_from_seed(seed)
    grid = WindowGrid(rows, cols)
    layers = []
    for idx in range(3):
        density = np.full((rows, cols), 0.12)
        width = np.full((rows, cols), 0.30 + 0.10 * idx)  # sparse periphery: wide routes
        # Two cache macros (dense, fine-pitch bitlines).
        ch, cw = rows // 3, cols // 3
        density[1 : 1 + ch, 1 : 1 + cw] = 0.68 - 0.04 * idx
        width[1 : 1 + ch, 1 : 1 + cw] = 0.10 + 0.03 * idx
        density[1 : 1 + ch, cols - 1 - cw : cols - 1] = 0.64 - 0.04 * idx
        width[1 : 1 + ch, cols - 1 - cw : cols - 1] = 0.10 + 0.03 * idx
        # Core datapath block in the centre (medium pitch).
        dh, dw = rows // 2, cols // 2
        r0, c0 = rows // 3 + 2, cols // 5
        density[r0 : r0 + dh, c0 : c0 + dw] = 0.48 - 0.03 * idx
        width[r0 : r0 + dh, c0 : c0 + dw] = 0.16 + 0.05 * idx
        # Random standard-cell islands.
        for _ in range(8):
            h = int(rng.integers(rows // 10, rows // 4))
            w = int(rng.integers(cols // 10, cols // 4))
            r = int(rng.integers(0, rows - h))
            c = int(rng.integers(0, cols - w))
            density[r : r + h, c : c + w] = rng.uniform(0.30, 0.55)
            width[r : r + h, c : c + w] = rng.uniform(0.12, 0.35)
        density += rng.normal(0.0, 0.02, size=density.shape)
        density = _smooth(density, passes=1)
        layer = _derive_layer(
            f"M{idx + 1}", density, wire_width=width,
            trench_depth=_TRENCH_DEPTHS[idx], window_area=grid.window_area, rng=rng,
        )
        layers.append(layer)
    return Layout("design_c", grid, layers, file_size_mb=80.6,
                  metadata={"kind": "riscv_cpu"})


def make_two_fillable_window_layout(
    rows: int = 10, cols: int = 10, seed: int = 7,
    windows: tuple[tuple[int, int], tuple[int, int]] = ((2, 4), (7, 4)),
) -> Layout:
    """The Fig. 6 toy: a single-layer layout where only two windows have slack.

    Every other window's slack is forced to zero so the quality score is a
    function of just two fill variables, letting benches sweep and plot the
    multi-modal topography the paper shows.  The defaults place both
    fillable windows in the same grid column: the line-deviation objective
    then couples them through the shared column mean and, together with
    the variance/fill-amount trade-off, the surface develops several local
    maxima (a 17x17 sweep of the default toy shows five).
    """
    rng = rng_from_seed(seed)
    grid = WindowGrid(rows, cols)
    density = 0.40 + 0.05 * rng.random((rows, cols))
    wire_width = 0.14
    layer = _derive_layer(
        "M1", density, wire_width=wire_width,
        trench_depth=_TRENCH_DEPTHS[0], window_area=grid.window_area, rng=rng,
    )
    mask = np.zeros((rows, cols), dtype=bool)
    for (i, j) in windows:
        mask[i, j] = True
        layer.density[i, j] = 0.10
        layer.wire_perimeter[i, j] = 2.0 * 0.10 * grid.window_area / wire_width
    slack = np.where(mask, 0.8 * grid.window_area, 0.0)
    layer.slack[:, :] = slack
    return Layout("two_window_toy", grid, [layer], file_size_mb=0.1,
                  metadata={"kind": "fig6_toy", "fillable": list(map(list, windows))})


#: Registry used by examples / benches to iterate the paper's designs.
DESIGN_BUILDERS = {
    "A": make_design_a,
    "B": make_design_b,
    "C": make_design_c,
}


def make_design(key: str, scale: float = 1.0, seed: int | None = None) -> Layout:
    """Build design ``"A"``/``"B"``/``"C"`` with an optional grid scale factor."""
    try:
        builder = DESIGN_BUILDERS[key.upper()]
    except KeyError:
        raise ValueError(f"unknown design {key!r}; expected one of {sorted(DESIGN_BUILDERS)}")
    defaults = {"A": (48, 48), "B": (64, 60), "C": (80, 80)}[key.upper()]
    rows = max(8, int(round(defaults[0] * scale)))
    cols = max(8, int(round(defaults[1] * scale)))
    kwargs = {"rows": rows, "cols": cols}
    if seed is not None:
        kwargs["seed"] = seed
    return builder(**kwargs)
