"""Layout diffing for incremental (ECO) refill.

An engineering change order (ECO) edits a handful of windows of an
already-solved layout.  :func:`diff_layouts` compares two layouts window
by window and returns the 2-D *dirty mask* of windows whose pattern
features changed; :func:`dilate_mask` grows that set by a Chebyshev
radius so the incremental driver in :mod:`repro.core.eco` can bound the
region whose heights — and therefore whose optimal fill — can differ
from the parent solve.

An ECO must preserve the window grid (same rows/cols/window size and the
same layer count): a re-gridded layout is a new design, not an edit, and
:func:`diff_layouts` raises on it rather than guessing a correspondence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layout import MAX_FILL_DENSITY, LayerWindows, Layout

__all__ = ["LayoutDiff", "connected_components", "diff_layouts",
           "dilate_mask", "edit_layout"]

#: Per-window feature arrays compared by :func:`diff_layouts`.  Any
#: difference in any layer marks the window dirty.
_WINDOW_FEATURES = ("density", "slack", "wire_perimeter", "wire_width")


@dataclass(frozen=True)
class LayoutDiff:
    """Window-granularity difference between a parent layout and its edit.

    Attributes:
        dirty: ``(rows, cols)`` bool mask — True where any per-window
            feature differs in any layer.
        changed_layers: indices of layers contributing dirty windows.
    """

    dirty: np.ndarray
    changed_layers: tuple[int, ...]

    @property
    def is_empty(self) -> bool:
        return not bool(self.dirty.any())

    @property
    def num_dirty(self) -> int:
        return int(self.dirty.sum())

    @property
    def dirty_fraction(self) -> float:
        return float(self.dirty.mean()) if self.dirty.size else 0.0

    def bounding_box(self) -> tuple[int, int, int, int] | None:
        """``(r0, r1, c0, c1)`` half-open bbox of the dirty set, or None."""
        rows = np.flatnonzero(self.dirty.any(axis=1))
        if rows.size == 0:
            return None
        cols = np.flatnonzero(self.dirty.any(axis=0))
        return (int(rows[0]), int(rows[-1]) + 1, int(cols[0]), int(cols[-1]) + 1)


def diff_layouts(parent: Layout, edited: Layout) -> LayoutDiff:
    """Window-exact diff of two layouts sharing one grid.

    A window is dirty when any of density/slack/wire_perimeter/wire_width
    differs in any layer.  A changed per-layer ``trench_depth`` (a scalar
    process fact, not a per-window feature) marks that layer's *entire*
    grid dirty: it shifts every window's initial step height.

    Raises:
        ValueError: the two layouts differ in grid shape, window size, or
            layer count — not a valid ECO edit.
    """
    if parent.grid.shape != edited.grid.shape:
        raise ValueError(
            f"ECO edit must preserve the window grid: parent is "
            f"{parent.grid.shape}, edited is {edited.grid.shape}")
    if parent.grid.window_um != edited.grid.window_um:
        raise ValueError(
            f"ECO edit must preserve the window size: parent is "
            f"{parent.grid.window_um}um, edited is {edited.grid.window_um}um")
    if parent.num_layers != edited.num_layers:
        raise ValueError(
            f"ECO edit must preserve the layer count: parent has "
            f"{parent.num_layers} layers, edited has {edited.num_layers}")

    dirty = np.zeros(parent.grid.shape, dtype=bool)
    changed: list[int] = []
    for index, (before, after) in enumerate(zip(parent.layers, edited.layers)):
        layer_dirty = np.zeros_like(dirty)
        for feature in _WINDOW_FEATURES:
            layer_dirty |= getattr(before, feature) != getattr(after, feature)
        if before.trench_depth != after.trench_depth:
            layer_dirty[:] = True
        if layer_dirty.any():
            changed.append(index)
            dirty |= layer_dirty
    return LayoutDiff(dirty=dirty, changed_layers=tuple(changed))


def dilate_mask(mask: np.ndarray, radius: int) -> np.ndarray:
    """Chebyshev (square structuring element) dilation of a 2-D bool mask.

    A window is set in the result iff some set window of ``mask`` lies
    within ``radius`` in both row and column distance — exactly the
    neighbourhood a convolutional receptive field of that radius reaches.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    radius = int(radius)
    if radius < 0:
        raise ValueError(f"dilation radius must be >= 0, got {radius}")
    out = mask.copy()
    if radius == 0 or not out.any():
        return out
    # Square dilation is separable: dilate rows, then columns.
    for axis in (0, 1):
        src = out.copy()
        for shift in range(1, radius + 1):
            if axis == 0:
                out[shift:, :] |= src[:-shift, :]
                out[:-shift, :] |= src[shift:, :]
            else:
                out[:, shift:] |= src[:, :-shift]
                out[:, :-shift] |= src[:, shift:]
    return out


def connected_components(mask: np.ndarray) -> list[np.ndarray]:
    """8-connected components of a 2-D bool mask, one bool mask each.

    Connectivity is Chebyshev (diagonals connect), matching
    :func:`dilate_mask`: two dirty sites whose dilated halos touch — even
    corner to corner — merge into one component, so distinct components
    are provably separated by at least one fully-frozen window ring.

    Components are returned in deterministic row-major order of their
    first (topmost, then leftmost) set window.  An empty mask yields an
    empty list.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    remaining = mask.copy()
    components: list[np.ndarray] = []
    while remaining.any():
        seed_r, seed_c = np.unravel_index(
            int(remaining.argmax()), remaining.shape)
        component = np.zeros_like(remaining)
        component[seed_r, seed_c] = True
        # Grow by unit Chebyshev dilation until the flood stabilises;
        # each pass extends the frontier one window, so the loop count is
        # bounded by the component's diameter.
        while True:
            grown = dilate_mask(component, 1) & remaining
            if np.array_equal(grown, component):
                break
            component = grown
        components.append(component)
        remaining &= ~component
    return components


def edit_layout(layout: Layout, layer: int, rows: slice, cols: slice, *,
                density_delta: float = 0.05, slack_scale: float = 0.5,
                name_suffix: str = "-eco") -> Layout:
    """Deterministic rectangular window edit (test/bench/CI helper).

    Returns a deep copy of ``layout`` with ``density`` bumped by
    ``density_delta`` (clipped to ``[0, MAX_FILL_DENSITY]``) and ``slack``
    scaled by ``slack_scale`` inside ``[rows, cols]`` of one layer — the
    shape of a typical ECO: a small re-route that changes local wire
    density and eats some fillable area.
    """
    if not 0 <= layer < layout.num_layers:
        raise ValueError(f"layer {layer} out of range for {layout.num_layers} layers")
    layers = []
    for index, src in enumerate(layout.layers):
        density = src.density.copy()
        slack = src.slack.copy()
        if index == layer:
            density[rows, cols] = np.clip(
                density[rows, cols] + density_delta, 0.0, MAX_FILL_DENSITY)
            slack[rows, cols] = slack[rows, cols] * slack_scale
        layers.append(LayerWindows(
            name=src.name, density=density, slack=slack,
            wire_perimeter=src.wire_perimeter.copy(),
            wire_width=src.wire_width.copy(),
            trench_depth=src.trench_depth))
    return Layout(
        name=layout.name + name_suffix, grid=layout.grid, layers=layers,
        file_size_mb=layout.file_size_mb, metadata=dict(layout.metadata))
