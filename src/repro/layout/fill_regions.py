"""Four-type fillable slack regions (paper Fig. 5) and fill allocation.

Overlay capacitance only matters in the vertical direction, so the paper
splits each window's slack by what sits directly above and below:

====  ===========  ===========
Type  layer l+1    layer l-1
====  ===========  ===========
1     slack        slack
2     wire         slack
3     slack        wire
4     wire         wire
====  ===========  ===========

Dummies are inserted by priority type 1 -> 4 (a type-1 dummy overlaps no
wire at all).  Without polygon geometry we estimate the split by assuming
the neighbouring layers' copper is spatially uncorrelated with this layer's
slack inside a window, i.e. a fraction ``rho_up`` of the slack sits under
upper-layer wire.  Above the top layer and below the bottom layer there is
no wire, so those sides count as slack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layout import Layout


@dataclass
class SlackRegions:
    """Per-window four-type slack areas, each of shape ``(L, N, M)``.

    ``non_overlap_slack`` is the paper's ``s*_{l,i,j}``: the area between
    layers ``l`` and ``l+1`` where both have slack and type-1 fill of the
    two layers can coexist without overlapping (Eq. 14).  Its last layer
    is unused (no layer above) and set to the full type-1 slack.
    """

    type1: np.ndarray
    type2: np.ndarray
    type3: np.ndarray
    type4: np.ndarray
    non_overlap_slack: np.ndarray

    @property
    def total(self) -> np.ndarray:
        return self.type1 + self.type2 + self.type3 + self.type4

    def stacked(self) -> np.ndarray:
        """Types as one ``(4, L, N, M)`` array, priority order."""
        return np.stack([self.type1, self.type2, self.type3, self.type4])


def compute_slack_regions(layout: Layout) -> SlackRegions:
    """Split every window's slack into the four types of Fig. 5."""
    slack = layout.slack_stack()
    density = layout.density_stack()
    L = layout.num_layers

    rho_up = np.zeros_like(density)
    rho_down = np.zeros_like(density)
    if L > 1:
        rho_up[:-1] = density[1:]
        rho_down[1:] = density[:-1]

    type1 = slack * (1.0 - rho_up) * (1.0 - rho_down)
    type2 = slack * rho_up * (1.0 - rho_down)
    type3 = slack * (1.0 - rho_up) * rho_down
    type4 = slack * rho_up * rho_down

    # s*: area where type-1 fill of layer l and layer l+1 can both live
    # without overlapping each other.  Estimate as the union headroom of
    # the two layers' type-1 regions within the window.
    area = layout.grid.window_area
    non_overlap = np.copy(type1)
    if L > 1:
        both_open = (1.0 - density[:-1]) * (1.0 - density[1:])
        non_overlap[:-1] = np.minimum(type1[:-1] + type1[1:], both_open * area)
    return SlackRegions(type1, type2, type3, type4, non_overlap)


def allocate_fill_by_priority(
    fill: np.ndarray, regions: SlackRegions, atol: float = 1e-9
) -> np.ndarray:
    """Split total fill per window into the four types, priority 1 -> 4.

    Args:
        fill: total fill area per window, shape ``(L, N, M)``; must not
            exceed the summed slack of the four types (up to ``atol``).
        regions: output of :func:`compute_slack_regions`.

    Returns:
        ``(4, L, N, M)`` array ``x^1..x^4`` with ``sum == fill``.
    """
    capacity = regions.stacked()
    if np.any(fill > capacity.sum(axis=0) + atol):
        raise ValueError("fill exceeds total four-type slack capacity")
    remaining = np.clip(fill, 0.0, None)
    parts = np.zeros_like(capacity)
    for t in range(4):
        take = np.minimum(remaining, capacity[t])
        parts[t] = take
        remaining = remaining - take
    return parts
