"""Minimal rectangle geometry used by the layout substrate.

The reproduction does not parse real GDSII; layouts are represented at the
window granularity the filling problem actually consumes.  Rectangles are
still useful for building synthetic designs (macros, routing channels) and
for the window-extraction logic that rasterises them onto the grid.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle with ``(x0, y0)`` lower-left corner, in um."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"degenerate rect: {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles overlap with positive area."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap rectangle, or ``None`` when the overlap area is zero."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x0, other.x0),
            max(self.y0, other.y0),
            min(self.x1, other.x1),
            min(self.y1, other.y1),
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def contains_point(self, x: float, y: float) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1


def union_area(rects: list[Rect]) -> float:
    """Exact union area of a set of rectangles (sweep over x slabs).

    Used by tests and by the rasteriser to validate density accounting on
    small synthetic cells; intended for modest ``len(rects)``.
    """
    if not rects:
        return 0.0
    xs = sorted({r.x0 for r in rects} | {r.x1 for r in rects})
    total = 0.0
    for left, right in zip(xs[:-1], xs[1:]):
        slab_w = right - left
        if slab_w <= 0:
            continue
        spans = sorted(
            (r.y0, r.y1) for r in rects if r.x0 <= left and r.x1 >= right
        )
        covered = 0.0
        cur_lo = cur_hi = None
        for lo, hi in spans:
            if cur_lo is None:
                cur_lo, cur_hi = lo, hi
            elif lo <= cur_hi:
                cur_hi = max(cur_hi, hi)
            else:
                covered += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
        if cur_lo is not None:
            covered += cur_hi - cur_lo
        total += covered * slab_w
    return total
