"""Uniform window grid that discretises a chip for CMP and filling.

The paper divides every layout into uniform ``100 um x 100 um`` windows
(Section V); both the full-chip CMP simulator and the filling problem
operate at this granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import WINDOW_SIZE_UM


@dataclass(frozen=True)
class WindowGrid:
    """An ``rows x cols`` grid of square windows.

    ``rows`` is the paper's ``N`` (index ``i``) and ``cols`` is ``M``
    (index ``j``).
    """

    rows: int
    cols: int
    window_um: float = WINDOW_SIZE_UM

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"grid must be non-empty, got {self.rows}x{self.cols}")
        if self.window_um <= 0:
            raise ValueError(f"window size must be positive, got {self.window_um}")

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def num_windows(self) -> int:
        return self.rows * self.cols

    @property
    def window_area(self) -> float:
        """Area of one window in um^2."""
        return self.window_um * self.window_um

    @property
    def chip_width_um(self) -> float:
        return self.cols * self.window_um

    @property
    def chip_height_um(self) -> float:
        return self.rows * self.window_um

    def window_of(self, x_um: float, y_um: float) -> tuple[int, int]:
        """Grid index ``(i, j)`` of the window containing point ``(x, y)``.

        Raises :class:`ValueError` for points outside the chip.
        """
        j = int(x_um // self.window_um)
        i = int(y_um // self.window_um)
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise ValueError(f"point ({x_um}, {y_um}) outside {self.rows}x{self.cols} grid")
        return (i, j)
