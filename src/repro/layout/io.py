"""JSON persistence for window-granularity layouts.

Real flows exchange GDSII; this reproduction's layouts live at window
granularity, so a compact JSON container (with base-area arrays as nested
lists) is the interchange format.  Round-tripping is exact for the fields
the pipeline consumes.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .grid import WindowGrid
from .layout import LayerWindows, Layout

_FORMAT_VERSION = 1


def layout_to_dict(layout: Layout) -> dict:
    """Serialise a layout to plain JSON-compatible types."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": layout.name,
        "grid": {
            "rows": layout.grid.rows,
            "cols": layout.grid.cols,
            "window_um": layout.grid.window_um,
        },
        "file_size_mb": layout.file_size_mb,
        "metadata": layout.metadata,
        "layers": [
            {
                "name": layer.name,
                "trench_depth": layer.trench_depth,
                "density": layer.density.tolist(),
                "slack": layer.slack.tolist(),
                "wire_perimeter": layer.wire_perimeter.tolist(),
                "wire_width": layer.wire_width.tolist(),
            }
            for layer in layout.layers
        ],
    }


def layout_from_dict(data: dict) -> Layout:
    """Inverse of :func:`layout_to_dict`."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported layout format version: {version!r}")
    g = data["grid"]
    grid = WindowGrid(g["rows"], g["cols"], g["window_um"])
    layers = [
        LayerWindows(
            name=ld["name"],
            density=np.asarray(ld["density"], dtype=float),
            slack=np.asarray(ld["slack"], dtype=float),
            wire_perimeter=np.asarray(ld["wire_perimeter"], dtype=float),
            wire_width=np.asarray(ld["wire_width"], dtype=float),
            trench_depth=float(ld["trench_depth"]),
        )
        for ld in data["layers"]
    ]
    return Layout(
        data["name"], grid, layers,
        file_size_mb=float(data.get("file_size_mb", 1.0)),
        metadata=dict(data.get("metadata", {})),
    )


def save_layout(layout: Layout, path: str | Path) -> None:
    """Write a layout to ``path`` as JSON."""
    path = Path(path)
    path.write_text(json.dumps(layout_to_dict(layout)))


def load_layout(path: str | Path) -> Layout:
    """Read a layout previously written by :func:`save_layout`."""
    return layout_from_dict(json.loads(Path(path).read_text()))
