"""Window-granularity layout model consumed by the CMP simulator and filler.

A :class:`Layout` holds, for each metal layer, per-window pattern statistics
(wire density, fillable slack area, wire perimeter/width) plus per-layer
process facts (trench depth).  This is exactly the information the paper's
extraction layer pulls out of the GDS (Section IV-A: "density, average
width, length, perimeter of coppers ... pressure, heights of trench side
and bottom"), so downstream code never needs polygon geometry.

Dummy fill enters through :func:`apply_fill`, the single place that defines
how adding ``x`` um^2 of dummies to a window updates the pattern features.
The differentiable extraction layer in :mod:`repro.surrogate.extraction`
mirrors these formulas with autodiff tensors; tests assert the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .grid import WindowGrid

#: Default side length (um) of a single square dummy shape used when
#: converting a fill *area* into dummy count / perimeter statistics.
DUMMY_SIDE_UM: float = 2.0

#: Upper bound on post-fill metal density; foundry rules forbid filling a
#: window to 100% copper.
MAX_FILL_DENSITY: float = 0.9


@dataclass
class LayerWindows:
    """Per-window pattern statistics of one metal layer.

    All 2-D arrays have shape ``(rows, cols)`` matching the layout grid.

    Attributes:
        name: layer label, e.g. ``"M1"``.
        density: wire (copper) area fraction in ``[0, 1)``.
        slack: fillable area per window in um^2 (the ``s_{l,i,j}`` of
            Eq. 5d); already excludes spacing-rule keep-outs.
        wire_perimeter: total copper perimeter per window in um.
        wire_width: average wire width per window in um.
        trench_depth: initial pattern step height in Angstroms (height of
            trench side minus trench bottom before polishing).
    """

    name: str
    density: np.ndarray
    slack: np.ndarray
    wire_perimeter: np.ndarray
    wire_width: np.ndarray
    trench_depth: float = 3000.0

    def __post_init__(self) -> None:
        shape = self.density.shape
        for label in ("slack", "wire_perimeter", "wire_width"):
            arr = getattr(self, label)
            if arr.shape != shape:
                raise ValueError(f"{label} shape {arr.shape} != density shape {shape}")
        if np.any(self.density < 0) or np.any(self.density > 1):
            raise ValueError("density must lie in [0, 1]")
        if np.any(self.slack < 0):
            raise ValueError("slack areas must be non-negative")

    @property
    def shape(self) -> tuple[int, int]:
        return self.density.shape


@dataclass
class Layout:
    """A multi-layer chip layout at window granularity."""

    name: str
    grid: WindowGrid
    layers: list[LayerWindows]
    file_size_mb: float = 1.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("layout needs at least one layer")
        for layer in self.layers:
            if layer.shape != self.grid.shape:
                raise ValueError(
                    f"layer {layer.name} shape {layer.shape} != grid {self.grid.shape}"
                )

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def shape(self) -> tuple[int, int, int]:
        """``(L, N, M)`` shape of every per-window stack."""
        return (self.num_layers, self.grid.rows, self.grid.cols)

    def density_stack(self) -> np.ndarray:
        """Wire density as an ``(L, N, M)`` array."""
        return np.stack([layer.density for layer in self.layers])

    def slack_stack(self) -> np.ndarray:
        """Fillable slack area (um^2) as an ``(L, N, M)`` array."""
        return np.stack([layer.slack for layer in self.layers])

    def perimeter_stack(self) -> np.ndarray:
        return np.stack([layer.wire_perimeter for layer in self.layers])

    def width_stack(self) -> np.ndarray:
        return np.stack([layer.wire_width for layer in self.layers])

    def trench_depths(self) -> np.ndarray:
        """Per-layer trench depth in Angstroms, shape ``(L,)``."""
        return np.array([layer.trench_depth for layer in self.layers])

    def validate_fill(self, fill: np.ndarray, atol: float = 1e-6) -> None:
        """Raise :class:`ValueError` unless ``fill`` satisfies Eq. 5d bounds."""
        if fill.shape != self.shape:
            raise ValueError(f"fill shape {fill.shape} != layout shape {self.shape}")
        slack = self.slack_stack()
        if np.any(fill < -atol) or np.any(fill > slack + atol):
            worst = float(np.max(np.maximum(fill - slack, -fill)))
            raise ValueError(f"fill violates slack bounds by up to {worst:.3g} um^2")


@dataclass
class FeatureStack:
    """Pattern features after dummy fill, as consumed by the CMP simulator.

    Every array has shape ``(L, N, M)`` for a single layout.  The CMP
    kernels operate over arbitrary leading axes, so a *batched* feature
    stack simply carries ``(B, L, N, M)`` arrays (build one with
    :func:`stack_features`) and flows through
    :meth:`repro.cmp.simulator.CmpSimulator.simulate_batch` unchanged.
    """

    density: np.ndarray
    perimeter: np.ndarray
    wire_width: np.ndarray
    trench_depth: np.ndarray  # broadcast per layer to (L, N, M)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.density.shape


def stack_features(stacks: "Sequence[FeatureStack]") -> FeatureStack:
    """Stack same-shape feature stacks along a new leading batch axis.

    The result's arrays have shape ``(B, *entry_shape)``; feed it to
    :meth:`repro.cmp.simulator.CmpSimulator.simulate_batch`.

    Raises:
        ValueError: if the sequence is empty or shapes disagree (layouts
            of different grids/layer counts cannot share one batch).
    """
    stacks = list(stacks)
    if not stacks:
        raise ValueError("stack_features needs at least one FeatureStack")
    shape = stacks[0].shape
    for k, entry in enumerate(stacks[1:], start=1):
        if entry.shape != shape:
            raise ValueError(
                f"feature stack {k} has shape {entry.shape}, expected "
                f"{shape}; batch entries must share one grid and layer "
                "count")
    return FeatureStack(
        density=np.stack([s.density for s in stacks]),
        perimeter=np.stack([s.perimeter for s in stacks]),
        wire_width=np.stack([s.wire_width for s in stacks]),
        trench_depth=np.stack([s.trench_depth for s in stacks]),
    )


def dummy_count(fill_area: np.ndarray, dummy_side: float = DUMMY_SIDE_UM) -> np.ndarray:
    """Number of square dummies implied by a fill area (fractional allowed)."""
    return fill_area / (dummy_side * dummy_side)


def apply_fill(
    layout: Layout,
    fill: np.ndarray | None = None,
    dummy_side: float = DUMMY_SIDE_UM,
) -> FeatureStack:
    """Update pattern features for a fill assignment ``x`` (Eq. 5d domain).

    This is the reproduction's reference implementation of the paper's
    extraction-layer feature update ("pattern-related parameters in L are
    updated with regard to fill amount x"):

    * density rises by ``x / window_area``;
    * perimeter rises by ``4 * dummy_side`` per inserted dummy;
    * average wire width moves toward ``dummy_side`` as dummies dominate
      the copper population (area-weighted mix).

    Args:
        layout: target layout.
        fill: fill areas in um^2, shape ``(L, N, M)``; ``None`` means no fill.
        dummy_side: side length of each square dummy in um.

    Returns:
        A :class:`FeatureStack` with post-fill features.
    """
    area = layout.grid.window_area
    density = layout.density_stack()
    perimeter = layout.perimeter_stack()
    width = layout.width_stack()
    depths = layout.trench_depths()[:, None, None] * np.ones(layout.grid.shape)

    if fill is not None:
        layout.validate_fill(fill)
        fill = np.clip(fill, 0.0, layout.slack_stack())
        new_density = density + fill / area
        n_dummy = dummy_count(fill, dummy_side)
        new_perimeter = perimeter + 4.0 * dummy_side * n_dummy
        wire_area = density * area
        total_area = wire_area + fill
        # Avoid 0/0 in empty windows; keep the original width there.
        safe_total = np.where(total_area > 0, total_area, 1.0)
        new_width = np.where(
            total_area > 0,
            (width * wire_area + dummy_side * fill) / safe_total,
            width,
        )
    else:
        new_density, new_perimeter, new_width = density, perimeter, width

    return FeatureStack(
        density=new_density,
        perimeter=new_perimeter,
        wire_width=new_width,
        trench_depth=depths,
    )
