"""Online surrogate lifecycle: drift detection, retraining, hot swap.

The serve layer answers *fast*; this package keeps it *right*.  A
sampled fraction of served fills is shadow-checked against the real CMP
simulator (:mod:`~repro.lifecycle.monitor`); sustained residual
excursions trip a windowed drift statistic, which triggers a background
retrain on the offending layouts (:mod:`~repro.lifecycle.retrain`);
validated candidates are hot-swapped into the running fleet without
draining (:mod:`~repro.lifecycle.swap` plus the generation-aware
registry in :mod:`repro.serve.registry`).

Dependency direction: ``repro.serve`` imports this package, never the
reverse.
"""

from .monitor import (
    DriftWindow,
    OffenderSample,
    ResidualRecord,
    ShadowExecutor,
    residual_stats,
)
from .retrain import RetrainConfig, RetrainOrchestrator, split_offenders
from .swap import (
    STATE_FILENAME,
    LifecycleManager,
    read_state,
    write_state,
)

__all__ = [
    "DriftWindow",
    "LifecycleManager",
    "OffenderSample",
    "ResidualRecord",
    "RetrainConfig",
    "RetrainOrchestrator",
    "STATE_FILENAME",
    "ShadowExecutor",
    "read_state",
    "residual_stats",
    "split_offenders",
    "write_state",
]
