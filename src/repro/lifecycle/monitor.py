"""Drift monitor: shadow simulation + windowed residual statistics.

The surrogate lifecycle's sensing half.  On a sampled fraction of served
fills (``ServeConfig.shadow_sample_rate``), the :class:`ShadowExecutor`
re-evaluates the surrogate's chosen fill with the *real* CMP simulator
on a low-priority background thread and emits a :class:`ResidualRecord`
(height RMSE / max-abs between the surrogate's predicted post-CMP
heights and the simulator's) as ``lifecycle.residual`` metrics and
spans.  The :class:`DriftWindow` consumes the records, keeps a sliding
window per model, and trips — once, with hysteresis — when at least
``trip_count`` of the last ``window`` residuals exceed the error bound,
so a single outlier layout cannot start a retrain storm.

Records whose residual exceeds the bound carry an
:class:`OffenderSample` — the layout, the served fill, and the
simulator's heights — which doubles as the retrain augmentation source
and the held-out validation pair (the simulator work is already paid).
Everything has a wire form (plain JSON lists) so forked serve workers
and shard processes can stream residuals to the parent over the
existing pipe protocol.

This module is deliberately free of ``repro.serve`` imports: the serve
layer depends on the lifecycle, never the reverse.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..layout.io import layout_from_dict, layout_to_dict
from ..layout.layout import Layout
from ..obs import trace as obs_trace


@dataclass
class OffenderSample:
    """One above-bound residual with everything a retrain needs.

    ``sim_heights`` is the simulator's answer for ``fill`` on
    ``layout`` — kept so candidate checkpoints can be validated against
    a held-out residual set without re-running the simulator.
    """

    job_id: str
    model: str
    generation: int
    layout: dict
    fill: np.ndarray
    sim_heights: np.ndarray
    rmse: float

    def to_wire(self) -> dict:
        return {
            "job_id": self.job_id,
            "model": self.model,
            "generation": self.generation,
            "layout": self.layout,
            "fill": np.asarray(self.fill, dtype=float).tolist(),
            "sim_heights":
                np.asarray(self.sim_heights, dtype=float).tolist(),
            "rmse": float(self.rmse),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "OffenderSample":
        return cls(
            job_id=str(wire["job_id"]),
            model=str(wire["model"]),
            generation=int(wire["generation"]),
            layout=dict(wire["layout"]),
            fill=np.asarray(wire["fill"], dtype=float),
            sim_heights=np.asarray(wire["sim_heights"], dtype=float),
            rmse=float(wire["rmse"]),
        )

    def bind_layout(self) -> Layout:
        return layout_from_dict(self.layout)


@dataclass
class ResidualRecord:
    """One surrogate-vs-simulator comparison on a served fill."""

    job_id: str
    model: str
    generation: int
    rmse: float
    max_abs: float
    sample: OffenderSample | None = None

    def to_wire(self) -> dict:
        wire = {
            "job_id": self.job_id,
            "model": self.model,
            "generation": self.generation,
            "rmse": float(self.rmse),
            "max_abs": float(self.max_abs),
        }
        if self.sample is not None:
            wire["sample"] = self.sample.to_wire()
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "ResidualRecord":
        sample = wire.get("sample")
        return cls(
            job_id=str(wire["job_id"]),
            model=str(wire["model"]),
            generation=int(wire["generation"]),
            rmse=float(wire["rmse"]),
            max_abs=float(wire["max_abs"]),
            sample=(OffenderSample.from_wire(sample)
                    if isinstance(sample, dict) else None),
        )


def residual_stats(predicted: np.ndarray,
                   simulated: np.ndarray) -> tuple[float, float]:
    """(RMSE, max-abs) between two height maps, in Angstroms."""
    delta = np.asarray(predicted, dtype=float) - np.asarray(simulated,
                                                            dtype=float)
    return (float(np.sqrt(np.mean(delta * delta))),
            float(np.max(np.abs(delta))))


class ShadowExecutor:
    """Runs the real simulator on sampled served fills, off the hot path.

    Sampling is deterministic (every ``1/rate``-th submitted fill, by a
    counter — no RNG in the serve path), the work queue is bounded (a
    backed-up simulator drops samples and counts them instead of
    stalling serving), and the whole object is simply absent when
    ``sample_rate`` is 0 — the executor holds ``shadow=None`` and the
    serve fast path is byte-for-byte the pre-lifecycle one.

    Args:
        simulator: the teacher CMP simulator (any object with
            ``simulate_layout(layout, fill) -> result`` exposing
            ``.height``).
        sample_rate: fraction of submitted fills to shadow-check, in
            (0, 1].
        drift_bound: residual RMSE above which the record carries a full
            :class:`OffenderSample` for retraining/validation.
        sink: callable receiving each :class:`ResidualRecord`.
        stats: optional counter sink (``incr``/``set_gauge`` duck type).
        max_queue: bounded backlog of pending shadow simulations.
        max_offender_windows: skip offender payloads for layouts larger
            than this many windows (residual metrics still flow) so one
            full-chip job cannot pin hundreds of MB in the sample.
    """

    def __init__(self, simulator, sample_rate: float, drift_bound: float,
                 sink, stats=None, max_queue: int = 8,
                 max_offender_windows: int = 64 * 64):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in (0, 1], got {sample_rate}; "
                "use shadow=None to disable shadowing")
        if drift_bound <= 0:
            raise ValueError(f"drift_bound must be > 0, got {drift_bound}")
        self.simulator = simulator
        self.sample_rate = float(sample_rate)
        self.drift_bound = float(drift_bound)
        self.sink = sink
        self.stats = stats
        self.max_queue = max_queue
        self.max_offender_windows = max_offender_windows
        self._seen = 0
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-lifecycle-shadow", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, *, job_id: str, model: str, generation: int,
               layout: Layout, fill: np.ndarray, network) -> bool:
        """Offer one served fill for shadowing; True if it was sampled.

        ``network`` must expose ``predict_heights(fill)`` — the bound
        surrogate (or its coalescing wrapper) that served the job.
        Never blocks: when the backlog is full the sample is dropped and
        counted as ``lifecycle.shadow_dropped``.
        """
        with self._cond:
            if self._closed:
                return False
            before = math.floor(self._seen * self.sample_rate)
            self._seen += 1
            if math.floor(self._seen * self.sample_rate) <= before:
                return False
            if len(self._queue) >= self.max_queue:
                if self.stats is not None:
                    self.stats.incr("lifecycle.shadow_dropped")
                return False
            self._queue.append(
                (job_id, model, generation, layout,
                 np.asarray(fill, dtype=float), network))
            self._cond.notify()
        return True

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=5.0)

    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait(0.1)
                if not self._queue:
                    return  # closed and drained
                item = self._queue.popleft()
            try:
                record = self._shadow_one(*item)
            except Exception:
                if self.stats is not None:
                    self.stats.incr("lifecycle.shadow_errors")
                continue
            try:
                self.sink(record)
            except Exception:
                if self.stats is not None:
                    self.stats.incr("lifecycle.sink_errors")

    def _shadow_one(self, job_id: str, model: str, generation: int,
                    layout: Layout, fill: np.ndarray,
                    network) -> ResidualRecord:
        with obs_trace.span("lifecycle.shadow", cat="lifecycle",
                            job_id=job_id, model=model,
                            generation=generation):
            predicted = network.predict_heights(fill)
            simulated = self.simulator.simulate_layout(layout, fill).height
            rmse, max_abs = residual_stats(predicted, simulated)
        obs_trace.event("lifecycle.residual", cat="lifecycle",
                        job_id=job_id, model=model, generation=generation,
                        rmse=rmse, max_abs=max_abs)
        if self.stats is not None:
            self.stats.incr("lifecycle.shadow_runs")
            self.stats.set_gauge("lifecycle.residual_rmse", rmse)
        sample = None
        if rmse > self.drift_bound \
                and layout.grid.rows * layout.grid.cols \
                <= self.max_offender_windows:
            sample = OffenderSample(
                job_id=job_id, model=model, generation=generation,
                layout=layout_to_dict(layout), fill=fill,
                sim_heights=np.asarray(simulated, dtype=float), rmse=rmse)
        return ResidualRecord(job_id=job_id, model=model,
                              generation=generation, rmse=rmse,
                              max_abs=max_abs, sample=sample)


@dataclass
class _ModelWindow:
    """Sliding residual window + trip state for one model name."""

    window: deque = field(default_factory=deque)
    offenders: deque = field(default_factory=deque)
    armed: bool = True
    observed: int = 0
    exceeded_total: int = 0
    trips: int = 0
    last_rmse: float | None = None
    last_generation: int | None = None


class DriftWindow:
    """Windowed drift statistic with hysteresis, per model name.

    Trips when at least ``trip_count`` of the last ``window`` residuals
    exceed ``bound``.  After a trip the window is *disarmed* — further
    exceedances only count — until :meth:`note_swap` (a new generation
    went live) or :meth:`rearm` resets it.  That hysteresis is what
    keeps a drifting model from requesting a retrain per request while
    one retrain is already running or has terminally failed.
    """

    def __init__(self, bound: float, window: int = 8, trip_count: int = 3,
                 on_trip=None, stats=None, max_offenders: int = 8):
        if bound <= 0:
            raise ValueError(f"bound must be > 0, got {bound}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 1 <= trip_count <= window:
            raise ValueError(
                f"trip_count must be in [1, window={window}], "
                f"got {trip_count}")
        self.bound = float(bound)
        self.window = window
        self.trip_count = trip_count
        self.on_trip = on_trip
        self.stats = stats
        self.max_offenders = max_offenders
        self._models: dict[str, _ModelWindow] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe(self, record: ResidualRecord) -> bool:
        """Fold one residual in; True if this observation tripped."""
        exceeded = record.rmse > self.bound
        with self._lock:
            state = self._models.setdefault(record.model, _ModelWindow())
            state.observed += 1
            state.last_rmse = record.rmse
            state.last_generation = record.generation
            state.window.append(exceeded)
            while len(state.window) > self.window:
                state.window.popleft()
            if exceeded:
                state.exceeded_total += 1
                if record.sample is not None:
                    state.offenders.append(record.sample)
                    while len(state.offenders) > self.max_offenders:
                        state.offenders.popleft()
            tripped = (state.armed
                       and sum(state.window) >= self.trip_count)
            if tripped:
                state.armed = False
                state.trips += 1
                offenders = list(state.offenders)
        if self.stats is not None and exceeded:
            self.stats.incr("lifecycle.exceedances")
        if not tripped:
            return False
        if self.stats is not None:
            self.stats.incr("lifecycle.drift_trips")
        obs_trace.event("lifecycle.drift_trip", cat="lifecycle",
                        model=record.model, generation=record.generation,
                        rmse=record.rmse, offenders=len(offenders))
        if self.on_trip is not None:
            self.on_trip(record.model, offenders)
        return True

    def note_swap(self, model: str) -> None:
        """A new generation went live: clear the window and re-arm."""
        with self._lock:
            state = self._models.get(model)
            if state is None:
                return
            state.window.clear()
            state.offenders.clear()
            state.armed = True

    def rearm(self, model: str) -> None:
        """Manually re-arm a tripped model (operator override)."""
        with self._lock:
            state = self._models.get(model)
            if state is not None:
                state.armed = True

    def offenders(self, model: str) -> list[OffenderSample]:
        with self._lock:
            state = self._models.get(model)
            return list(state.offenders) if state is not None else []

    def status(self) -> dict:
        """Per-model drift state for the ``lifecycle`` introspection op."""
        with self._lock:
            return {
                model: {
                    "observed": state.observed,
                    "window": len(state.window),
                    "window_exceeded": sum(state.window),
                    "exceeded_total": state.exceeded_total,
                    "armed": state.armed,
                    "trips": state.trips,
                    "last_rmse": state.last_rmse,
                    "last_generation": state.last_generation,
                    "offenders_held": len(state.offenders),
                }
                for model, state in self._models.items()
            }
