"""Background retrain orchestrator: drift trip -> candidate generation.

When the drift monitor trips, the orchestrator turns the offending
layouts into an augmentation set, runs the parallel teacher-datagen +
``pretrain_surrogate`` pipeline on a background thread, validates the
candidate checkpoint against a held-out residual set (the simulator
heights the shadow executor already paid for), and atomically persists
it under a monotonically increasing generation tag.  Transient failures
(a crashed datagen worker pool, a mid-write disk error) are retried
with exponential backoff; a candidate that deterministically fails
validation parks the orchestrator in a terminal ``retrain_failed``
state that alarms via ``lifecycle.retrain_failed`` metrics without ever
crashing the serving process.

Determinism: datagen sampling, train/test split and UNet weight init
all derive from one fixed seed, and checkpoints are written with
deterministic bytes (:func:`repro.surrogate.persist.save_surrogate`),
so two retrains from the same offenders and seed produce byte-identical
generation directories.

No ``repro.serve`` imports here — the orchestrator reports success via
a callback and never touches registries or workers itself.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..layout.io import layout_from_dict
from ..obs import trace as obs_trace
from ..surrogate.persist import bind_surrogate, load_surrogate_bundle, \
    save_surrogate
from ..surrogate.train import TrainConfig, pretrain_surrogate
from .monitor import OffenderSample, residual_stats


@dataclass
class RetrainConfig:
    """Retrain knobs, mirrored from ``ServeConfig``/``REPRO_LIFECYCLE_*``.

    ``validation_bound`` is the drift bound: a candidate passes when its
    mean held-out residual either beats the incumbent's or sits inside
    the bound.  ``max_retries`` only covers *transient* errors — a
    deterministic validation failure is terminal immediately, because
    rerunning the same seed on the same data cannot change the verdict.
    """

    samples: int = 12
    epochs: int = 4
    seed: int = 0
    batch_size: int = 4
    tile_rows: int = 16
    tile_cols: int = 16
    n_workers: int | None = None
    max_retries: int = 2
    backoff_s: float = 0.25
    validation_bound: float = 50.0


@dataclass
class _RetrainStatus:
    state: str = "idle"  # idle | running | retrain_failed
    runs: int = 0
    successes: int = 0
    attempts: int = 0
    last_error: str | None = None
    last_validation: dict | None = None
    last_generation: int | None = None


class RetrainOrchestrator:
    """Serialised background retrains with validation-gated promotion.

    Args:
        checkpoint_root: directory receiving one ``gen-NNN`` checkpoint
            subdirectory per promoted candidate.
        config: :class:`RetrainConfig`.
        simulator: teacher for datagen and (implicitly) validation;
            ``None`` lets :func:`pretrain_surrogate` build the default
            :class:`~repro.cmp.simulator.CmpSimulator`.
        stats: optional counter sink (``incr``/``set_gauge`` duck type).
        on_success: ``callable(model, directory, generation, info)``
            invoked off-thread once a candidate validates and persists —
            the lifecycle manager hot-swaps it into serving here.  An
            exception from the callback fails the run (retried like any
            transient error).
    """

    def __init__(self, checkpoint_root: str | Path, config: RetrainConfig,
                 simulator=None, stats=None, on_success=None):
        self.checkpoint_root = Path(checkpoint_root)
        self.config = config
        self.simulator = simulator
        self.stats = stats
        self.on_success = on_success
        self._lock = threading.Lock()
        self._status = _RetrainStatus()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def request(self, model: str, generation: int, arch: dict,
                offenders: list[OffenderSample],
                augment_layouts: list[dict] | None = None) -> bool:
        """Start a background retrain; False if one is running or the
        orchestrator is in its terminal ``retrain_failed`` state.

        ``arch`` is the incumbent's architecture dict (``base_channels``
        / ``depth``) — the candidate keeps the same topology so the swap
        is weight-for-weight.  ``augment_layouts`` are extra layout
        dicts (journal snapshots of the offending jobs) merged into the
        training sources.
        """
        if not offenders:
            return False
        with self._lock:
            if self._status.state == "retrain_failed":
                if self.stats is not None:
                    self.stats.incr("lifecycle.retrain_suppressed")
                return False
            if self._thread is not None and self._thread.is_alive():
                if self.stats is not None:
                    self.stats.incr("lifecycle.retrain_suppressed")
                return False
            self._status.state = "running"
            self._status.runs += 1
            self._thread = threading.Thread(
                target=self._run,
                args=(model, int(generation), dict(arch), list(offenders),
                      list(augment_layouts or [])),
                name="repro-lifecycle-retrain", daemon=True)
            self._thread.start()
        if self.stats is not None:
            self.stats.incr("lifecycle.retrain_started")
        return True

    def wait(self, timeout_s: float | None = None) -> bool:
        """Block until the current retrain (if any) finishes."""
        with self._lock:
            thread = self._thread
        if thread is None:
            return True
        thread.join(timeout_s)
        return not thread.is_alive()

    def reset(self) -> None:
        """Clear a terminal ``retrain_failed`` state (operator override)."""
        with self._lock:
            if self._status.state == "retrain_failed":
                self._status.state = "idle"

    def status(self) -> dict:
        with self._lock:
            status = self._status
            return {
                "state": status.state,
                "runs": status.runs,
                "successes": status.successes,
                "attempts": status.attempts,
                "last_error": status.last_error,
                "last_validation": status.last_validation,
                "last_generation": status.last_generation,
            }

    # ------------------------------------------------------------------
    def _run(self, model: str, generation: int, arch: dict,
             offenders: list[OffenderSample],
             augment_layouts: list[dict]) -> None:
        new_generation = generation + 1
        attempt = 0
        while True:
            attempt += 1
            with self._lock:
                self._status.attempts += 1
            try:
                with obs_trace.span("lifecycle.retrain", cat="lifecycle",
                                    model=model, generation=new_generation,
                                    attempt=attempt,
                                    offenders=len(offenders)):
                    directory = self._retrain_once(
                        model, generation, new_generation, arch,
                        offenders, augment_layouts)
                    verdict = self._validate(directory, offenders)
            except _ValidationFailed as exc:
                # Deterministic: same seed + same data would fail again.
                self._fail(model, f"validation failed: {exc}",
                           terminal=True, verdict=exc.verdict)
                return
            except Exception as exc:  # transient: retry with backoff
                if attempt <= self.config.max_retries:
                    if self.stats is not None:
                        self.stats.incr("lifecycle.retrain_retries")
                    time.sleep(self.config.backoff_s * 2 ** (attempt - 1))
                    continue
                self._fail(model, f"{type(exc).__name__}: {exc}",
                           terminal=True)
                return
            try:
                if self.on_success is not None:
                    self.on_success(model, str(directory), new_generation,
                                    verdict)
            except Exception as exc:  # swap refused (e.g. races a manual one)
                self._fail(model, f"swap failed: {type(exc).__name__}: {exc}",
                           terminal=True, verdict=verdict)
                return
            with self._lock:
                self._status.state = "idle"
                self._status.successes += 1
                self._status.last_error = None
                self._status.last_validation = verdict
                self._status.last_generation = new_generation
            if self.stats is not None:
                self.stats.incr("lifecycle.retrain_success")
            obs_trace.event("lifecycle.retrain_success", cat="lifecycle",
                            model=model, generation=new_generation,
                            **{k: v for k, v in verdict.items()
                               if isinstance(v, (int, float))})
            return

    def _fail(self, model: str, message: str, terminal: bool,
              verdict: dict | None = None) -> None:
        with self._lock:
            self._status.state = "retrain_failed" if terminal else "idle"
            self._status.last_error = message
            if verdict is not None:
                self._status.last_validation = verdict
        if self.stats is not None:
            self.stats.incr("lifecycle.retrain_failed")
            self.stats.set_gauge("lifecycle.retrain_failed_terminal",
                                 1.0 if terminal else 0.0)
        obs_trace.event("lifecycle.retrain_failed", cat="lifecycle",
                        model=model, error=message, terminal=terminal)

    # ------------------------------------------------------------------
    def _retrain_once(self, model: str, parent: int, new_generation: int,
                      arch: dict, offenders: list[OffenderSample],
                      augment_layouts: list[dict]) -> Path:
        """Datagen + train + atomic persist of one candidate checkpoint."""
        train_half, _ = split_offenders(offenders)
        sources, target = self._training_sources(train_half, augment_layouts)
        config = TrainConfig(epochs=self.config.epochs,
                             batch_size=self.config.batch_size,
                             seed=self.config.seed)
        network, history, report = pretrain_surrogate(
            sources, target,
            sample_count=self.config.samples,
            tile_rows=self.config.tile_rows,
            tile_cols=self.config.tile_cols,
            base_channels=int(arch.get("base_channels", 8)),
            depth=int(arch.get("depth", 2)),
            config=config,
            simulator=self.simulator,
            seed=self.config.seed,
            n_workers=self.config.n_workers,
        )
        directory = self.checkpoint_root / f"gen-{new_generation:03d}"
        save_surrogate(
            directory, network.unet, network.normalizer,
            base_channels=int(arch.get("base_channels", 8)),
            depth=int(arch.get("depth", 2)),
            batch_norm=bool(arch.get("batch_norm", True)),
            extra_meta={
                "generation": new_generation,
                "parent_generation": parent,
                "model": model,
                "seed": self.config.seed,
                "train": {
                    "samples": self.config.samples,
                    "epochs": self.config.epochs,
                    "offenders": len(offenders),
                    "final_loss": history.final_loss,
                    "mean_relative_error": report.mean_relative_error,
                },
            })
        return directory

    def _training_sources(self, offenders: list[OffenderSample],
                          augment_layouts: list[dict]):
        """Offending layouts (deduplicated) as datagen sources."""
        sources = []
        seen: set[str] = set()
        for layout_dict in ([o.layout for o in offenders]
                            + list(augment_layouts)):
            layout = layout_from_dict(layout_dict)
            key = repr(sorted(layout_dict.items(), key=repr))
            if key in seen:
                continue
            seen.add(key)
            sources.append(layout)
        if not sources:
            raise ValueError("no offender layouts to retrain from")
        return sources, sources[0]

    def _validate(self, directory: Path,
                  offenders: list[OffenderSample]) -> dict:
        """Score the candidate on held-out offenders; raise on regression.

        Even-indexed offenders fed the training set; odd-indexed ones are
        held out here.  With a single offender it serves both roles —
        a weaker but still-real check (the candidate must at least fit
        the layout it drifted on).  The simulator heights were recorded
        by the shadow executor, so validation is pure inference.
        """
        holdout = offenders[1::2] or offenders
        bundle = load_surrogate_bundle(directory)
        candidate_rmses = []
        incumbent_rmses = []
        for sample in holdout:
            network = bind_surrogate(bundle, sample.bind_layout())
            predicted = network.predict_heights(sample.fill)
            rmse, _ = residual_stats(predicted, sample.sim_heights)
            candidate_rmses.append(rmse)
            incumbent_rmses.append(sample.rmse)
        verdict = {
            "holdout": len(holdout),
            "candidate_rmse": float(np.mean(candidate_rmses)),
            "incumbent_rmse": float(np.mean(incumbent_rmses)),
            "bound": self.config.validation_bound,
        }
        passed = (verdict["candidate_rmse"] < verdict["incumbent_rmse"]
                  or verdict["candidate_rmse"] <= self.config.validation_bound)
        if self.stats is not None:
            self.stats.set_gauge("lifecycle.candidate_rmse",
                                 verdict["candidate_rmse"])
        if not passed:
            raise _ValidationFailed(verdict)
        return verdict


class _ValidationFailed(RuntimeError):
    """Candidate lost to the incumbent on the held-out residual set."""

    def __init__(self, verdict: dict):
        super().__init__(
            f"candidate rmse {verdict['candidate_rmse']:.2f} A vs "
            f"incumbent {verdict['incumbent_rmse']:.2f} A "
            f"(bound {verdict['bound']:.2f} A)")
        self.verdict = verdict


def split_offenders(offenders: list[OffenderSample]
                    ) -> tuple[list[OffenderSample], list[OffenderSample]]:
    """(train, holdout) halves of an offender list, deterministic."""
    return list(offenders[0::2]), list(offenders[1::2] or offenders)
