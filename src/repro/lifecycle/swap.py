"""Lifecycle manager: wires monitor -> retrain -> hot swap together.

One :class:`LifecycleManager` lives in each serving front end (the
single :class:`~repro.serve.server.FillServer`, or the
:class:`~repro.serve.router.ShardRouter` for a fleet).  It owns the
drift window, optionally a local shadow executor (thread-mode serving;
process workers and shards run their own and stream residual records
up their pipes), and optionally the retrain orchestrator.  When a
retrain candidate validates, the manager calls the host's ``apply_swap``
callback — registry rebind plus worker/shard notification — and then
records the new generation in an atomically-written state file so a
restarted server resumes serving the latest generation instead of the
boot checkpoint.

The module deliberately knows nothing about sockets, pipes or
registries: hosts inject callables (``apply_swap``, ``model_info``,
``journal_reader``, ``residual_forward``), keeping the dependency
direction serve -> lifecycle.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from ..obs import trace as obs_trace
from .monitor import DriftWindow, ResidualRecord, ShadowExecutor
from .retrain import RetrainConfig, RetrainOrchestrator

#: Name of the manager's persisted state file inside the lifecycle dir.
STATE_FILENAME = "lifecycle.json"


def write_state(path: str | Path, state: dict) -> None:
    """Atomically persist lifecycle state (temp + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "w") as fh:
            json.dump(state, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def read_state(path: str | Path) -> dict | None:
    """Read a persisted state file; ``None`` when absent or corrupt.

    Corrupt state is treated as absent (the server falls back to its
    boot checkpoints) rather than fatal — lifecycle state is an
    optimisation, not a source of truth.
    """
    path = Path(path)
    if not path.is_file():
        return None
    try:
        state = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return state if isinstance(state, dict) else None


class LifecycleManager:
    """Drift monitor + retrain orchestration + swap bookkeeping.

    Args:
        config: any object with the ``ServeConfig`` lifecycle attributes
            (``shadow_sample_rate``, ``drift_bound``, ``drift_window``,
            ``drift_trip_count``, ``auto_retrain``, ``retrain_samples``,
            ``retrain_epochs``, ``retrain_seed``).
        simulator: teacher simulator for the local shadow executor and
            retrain datagen; required when ``shadow_sample_rate > 0``
            and ``local_shadow`` is requested.
        stats: counter sink (``incr``/``set_gauge`` duck type).
        state_path: where generation state persists; ``None`` disables
            persistence (shard children — the router owns the state).
        checkpoint_root: directory for retrained ``gen-NNN`` checkpoints
            (required when ``config.auto_retrain``).
        apply_swap: ``callable(model, directory, generation)`` performing
            the host-side hot swap (registry + workers/shards).  Raises
            to veto.  The manager calls :meth:`note_swap` itself after a
            successful retrain promotion; hosts call it for manual swaps.
        model_info: ``callable(name) -> dict`` with at least ``arch``
            (and optionally ``directory``) for the incumbent — consulted
            when a retrain starts.
        journal_reader: ``callable(job_ids) -> dict[id, request_dict]``
            returning the journalled admission records of offending jobs;
            their layout specs augment the retrain set.
        local_shadow: run a :class:`ShadowExecutor` in this process
            (thread-mode serving).  Process/shard hosts pass ``False``
            and feed :meth:`observe_wire` from worker frames instead.
    """

    def __init__(self, config, *, simulator=None, stats=None,
                 state_path: str | Path | None = None,
                 checkpoint_root: str | Path | None = None,
                 apply_swap=None, model_info=None, journal_reader=None,
                 residual_forward=None, local_shadow: bool = True):
        self.config = config
        self.stats = stats
        self.apply_swap = apply_swap
        self.model_info = model_info
        self.journal_reader = journal_reader
        self.residual_forward = residual_forward
        self.state_path = Path(state_path) if state_path else None
        self._lock = threading.Lock()
        self._generations: dict[str, dict] = {}

        self.window = DriftWindow(
            bound=config.drift_bound, window=config.drift_window,
            trip_count=config.drift_trip_count, on_trip=self._on_trip,
            stats=stats)
        self.shadow: ShadowExecutor | None = None
        if local_shadow and config.shadow_sample_rate > 0:
            if simulator is None:
                raise ValueError(
                    "shadow_sample_rate > 0 needs a simulator")
            self.shadow = ShadowExecutor(
                simulator=simulator,
                sample_rate=config.shadow_sample_rate,
                drift_bound=config.drift_bound,
                sink=self.observe, stats=stats)
        self.orchestrator: RetrainOrchestrator | None = None
        if config.auto_retrain:
            if checkpoint_root is None:
                raise ValueError("auto_retrain needs a checkpoint_root")
            self.orchestrator = RetrainOrchestrator(
                checkpoint_root=checkpoint_root,
                config=RetrainConfig(
                    samples=config.retrain_samples,
                    epochs=config.retrain_epochs,
                    seed=config.retrain_seed,
                    validation_bound=config.drift_bound,
                ),
                simulator=simulator, stats=stats,
                on_success=self._on_retrain_success)

    # ------------------------------------------------------------------
    # Residual intake.
    def observe(self, record: ResidualRecord) -> None:
        """Fold one residual into the drift window (and forward it)."""
        if self.residual_forward is not None:
            try:
                self.residual_forward(record.to_wire())
            except Exception:
                if self.stats is not None:
                    self.stats.incr("lifecycle.forward_errors")
        self.window.observe(record)

    def observe_wire(self, message: dict) -> None:
        """Intake for residual frames from worker/shard pipes."""
        try:
            record = ResidualRecord.from_wire(message)
        except (KeyError, TypeError, ValueError):
            if self.stats is not None:
                self.stats.incr("lifecycle.bad_residual_frames")
            return
        self.observe(record)

    # ------------------------------------------------------------------
    # Generation bookkeeping.
    def set_generation(self, model: str, generation: int,
                       directory: str | None = None) -> None:
        """Seed the manager's view of a model's live generation (boot)."""
        with self._lock:
            entry = self._generations.setdefault(model, {"swaps": 0})
            entry["generation"] = int(generation)
            if directory is not None:
                entry["directory"] = str(directory)

    def generation_of(self, model: str) -> int:
        with self._lock:
            entry = self._generations.get(model)
            return int(entry["generation"]) if entry else 1

    def note_swap(self, model: str, directory: str,
                  generation: int) -> None:
        """Record a completed hot swap: state file + window re-arm."""
        with self._lock:
            entry = self._generations.setdefault(model, {"swaps": 0})
            entry["generation"] = int(generation)
            entry["directory"] = str(directory)
            entry["swaps"] = int(entry.get("swaps", 0)) + 1
        self.window.note_swap(model)
        if self.stats is not None:
            self.stats.set_gauge(f"lifecycle.generation.{model}",
                                 float(generation))
        self._persist()
        obs_trace.event("lifecycle.swap", cat="lifecycle", model=model,
                        generation=generation, directory=str(directory))

    def restore(self) -> dict[str, tuple[str, int]]:
        """Load persisted generations; ``{model: (directory, generation)}``.

        The caller applies the result (registry swap / spec rewrite) —
        the manager only remembers it.  Entries whose checkpoint
        directory vanished are skipped.
        """
        if self.state_path is None:
            return {}
        state = read_state(self.state_path)
        if not state:
            return {}
        restored: dict[str, tuple[str, int]] = {}
        for model, entry in (state.get("models") or {}).items():
            try:
                directory = str(entry["directory"])
                generation = int(entry["generation"])
            except (KeyError, TypeError, ValueError):
                continue
            if not (Path(directory) / "surrogate.json").is_file():
                continue
            restored[model] = (directory, generation)
            with self._lock:
                self._generations[model] = {
                    "generation": generation,
                    "directory": directory,
                    "swaps": int(entry.get("swaps", 0)),
                }
        return restored

    def _persist(self) -> None:
        if self.state_path is None:
            return
        with self._lock:
            state = {"models": {m: dict(e)
                                for m, e in self._generations.items()}}
        try:
            write_state(self.state_path, state)
        except OSError:
            if self.stats is not None:
                self.stats.incr("lifecycle.state_write_errors")

    # ------------------------------------------------------------------
    # Drift trip -> retrain -> swap.
    def _on_trip(self, model: str, offenders) -> None:
        if self.orchestrator is None:
            return
        info = {}
        if self.model_info is not None:
            try:
                info = self.model_info(model) or {}
            except Exception:
                info = {}
        augment = self._journal_layouts([o.job_id for o in offenders])
        self.orchestrator.request(
            model, generation=self.generation_of(model),
            arch=dict(info.get("arch") or {}), offenders=offenders,
            augment_layouts=augment)

    def _journal_layouts(self, job_ids: list[str]) -> list[dict]:
        """Offending jobs' layout specs, snapshotted from the journal."""
        if self.journal_reader is None or not job_ids:
            return []
        try:
            requests = self.journal_reader(job_ids) or {}
        except Exception:
            if self.stats is not None:
                self.stats.incr("lifecycle.journal_read_errors")
            return []
        layouts = []
        for request in requests.values():
            params = request.get("params") if isinstance(request, dict) \
                else None
            layout = (params or {}).get("layout")
            if isinstance(layout, dict):
                layouts.append(layout)
        return layouts

    def _on_retrain_success(self, model: str, directory: str,
                            generation: int, verdict: dict) -> None:
        if self.apply_swap is not None:
            self.apply_swap(model, directory, generation)
        self.note_swap(model, directory, generation)

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Introspection payload for the ``lifecycle`` serve op."""
        with self._lock:
            generations = {m: dict(e) for m, e in self._generations.items()}
        result = {
            "enabled": True,
            "shadow_sample_rate": self.config.shadow_sample_rate,
            "drift_bound": self.config.drift_bound,
            "drift_window": self.config.drift_window,
            "drift_trip_count": self.config.drift_trip_count,
            "auto_retrain": bool(self.config.auto_retrain),
            "generations": generations,
            "drift": self.window.status(),
        }
        if self.shadow is not None:
            result["shadow_pending"] = self.shadow.pending()
        if self.orchestrator is not None:
            result["retrain"] = self.orchestrator.status()
        if self.state_path is not None:
            result["state_path"] = str(self.state_path)
        return result

    def close(self) -> None:
        if self.shadow is not None:
            self.shadow.close()
        if self.orchestrator is not None:
            self.orchestrator.wait(timeout_s=0.1)
