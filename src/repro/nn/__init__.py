"""Neural-network substrate: numpy autodiff, layers, UNet, optimizers."""

from . import dispatch, functional
from .conv import avg_pool2d, conv2d, conv_transpose2d, max_pool2d, upsample2x
from .init import kaiming_normal, xavier_uniform
from .loss import l1_loss, mse_loss, relative_l2_loss
from .modules import (
    BatchNorm2d,
    GroupNorm,
    Conv2d,
    ConvTranspose2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Upsample2x,
)
from .optim import SGD, Adam, CosineLR, LrScheduler, Optimizer, StepLR, clip_grad_norm
from .serial import load_module, save_module
from .tensor import Tensor, compute_dtype, get_default_dtype, set_default_dtype
from .unet import DoubleConv, UNet

__all__ = [
    "Adam",
    "BatchNorm2d",
    "Conv2d",
    "ConvTranspose2d",
    "CosineLR",
    "GroupNorm",
    "DoubleConv",
    "LeakyReLU",
    "Linear",
    "LrScheduler",
    "MaxPool2d",
    "Module",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "StepLR",
    "Sigmoid",
    "Tanh",
    "Tensor",
    "UNet",
    "Upsample2x",
    "avg_pool2d",
    "clip_grad_norm",
    "compute_dtype",
    "conv2d",
    "conv_transpose2d",
    "dispatch",
    "functional",
    "get_default_dtype",
    "kaiming_normal",
    "l1_loss",
    "load_module",
    "max_pool2d",
    "mse_loss",
    "relative_l2_loss",
    "save_module",
    "set_default_dtype",
    "upsample2x",
    "xavier_uniform",
]
