"""Captured-graph replay: trace one eager pass, re-run it in place.

The CUDA-graph / ``torch.compile`` idiom adapted to this repo's numpy
autodiff: the eager forward builds a Python op graph and allocates every
intermediate array *per call*, yet MSP-SQP, the serve batcher and ECO
refill evaluate the same-shaped graph hundreds to thousands of times.
:class:`CapturedGraph` runs the eager build **once** under
:func:`repro.nn.tensor.recording`, which makes every op attach a
``_replay`` closure that recomputes its output in place (``out=``
ufuncs) from its parents' live ``.data`` buffers.  The retained graph's
arrays are the workspace arena; replaying a call is:

1. copy the new input values into the traced input tensors' buffers,
2. run the replay closures in topological order (zero graph
   construction, zero intermediate allocation),
3. optionally re-run the recorded backward sweep over the *same* node
   list the trace used.

Fidelity
--------
Replays are bitwise identical to eager re-execution because every
closure applies the same ufuncs to the same operands in the same order;
the trace call *is* the first eager call, and the backward sweep reuses
the exact topological order :meth:`Tensor.backward` produced at trace
time (the eager order is deterministic for a fixed graph structure).
Parameter tensors are read live at replay time, so in-place optimizer
updates and ``load_state_dict`` re-binds flow into replays without
retracing; callers key plans on the module's ``_state_version`` to catch
re-binds that swap buffer objects (``to_dtype``).

Parameter *gradients* are intentionally not recomputed on replay: the
plan temporarily clears ``requires_grad`` on parameter leaves during the
backward sweep, which skips the expensive weight-gradient kernels while
leaving the input gradient — the only gradient inference callers read —
bitwise unchanged.

Any structural mismatch (shape, dtype, missing input) raises
:class:`CaptureMiss`; callers fall back to eager execution, which is
always safe because eager and replay agree bitwise.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

import numpy as np

from .tensor import Array, Tensor, recording, topo_sort


class CaptureMiss(RuntimeError):
    """Replay inputs do not match the traced plan (shape/dtype/name)."""


class GraphRecorder:
    """Collects per-op workspace accounting during a trace."""

    def __init__(self) -> None:
        self.workspace_bytes = 0
        self.workspaces: list[dict] = []

    def note_workspace(self, nbytes: int) -> None:
        self.workspace_bytes += int(nbytes)

    def register_workspace(self, ws: dict) -> dict:
        """Track a lazily-filled scratch dict (conv im2col buffers etc.)
        so the plan's arena accounting sees buffers that only materialise
        on the first backward or replay."""
        self.workspaces.append(ws)
        return ws


def _full_topo(roots: Iterable[Tensor]) -> list[Tensor]:
    """Postorder (parents first) over *all* parents, grad-requiring or not."""
    topo: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(r, False) for r in roots]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return topo


class CapturedGraph:
    """One traced forward+backward graph with a preallocated arena.

    Build with :meth:`trace`; re-execute with :meth:`replay`.  The trace
    itself performs a complete eager call, so its outputs/gradients are
    valid results for the call that triggered the trace.
    """

    def __init__(
        self,
        inputs: dict[str, Tensor],
        outputs: dict[str, Tensor],
        root: Tensor,
        recorder: GraphRecorder,
    ) -> None:
        self.inputs = inputs
        self.outputs = outputs
        self.root = root

        roots = list(outputs.values())
        if not any(t is root for t in roots):
            roots.append(root)
        everything = _full_topo(roots)
        self._forward_nodes = [n for n in everything if n._replay is not None]
        self._btopo = topo_sort(root)

        input_ids = {id(t) for t in inputs.values()}
        # Parameter leaves: grad-requiring tensors with no history that are
        # not plan inputs (conv weights, norm gains/biases).  Shared across
        # plans; replay skips their gradients.
        self._params = [
            n for n in self._btopo
            if not n._parents and n.requires_grad and id(n) not in input_ids
        ]
        param_ids = {id(p) for p in self._params}

        # Gradient arena: reuse the trace-time grad arrays for internal
        # nodes.  Input gradients were handed to the trace caller, so they
        # get fresh buffers to avoid mutating the caller's arrays later.
        for node in self._btopo:
            if id(node) in param_ids:
                continue
            if id(node) in input_ids or node.grad is None:
                node._grad_buf = np.empty_like(node.data)
            else:
                # asarray: eager backward stores numpy *scalars* for 0-d
                # grads, which cannot serve as in-place accumulation
                # targets; 0-d arrays hold the bitwise-identical value.
                node._grad_buf = np.asarray(node.grad)

        arena = recorder.workspace_bytes
        for node in everything:
            if id(node) in param_ids:
                continue
            if node.data.base is None:
                arena += node.data.nbytes
            if node._grad_buf is not None:
                arena += node._grad_buf.nbytes
        self._static_arena_bytes = arena
        self._workspaces = recorder.workspaces

    @property
    def arena_bytes(self) -> int:
        """Bytes held by the plan: retained graph arrays, gradient
        buffers, and per-op scratch (grows once, when the first replay
        warms the lazily-allocated conv workspaces)."""
        return self._static_arena_bytes + sum(
            buf.nbytes for ws in self._workspaces for buf in ws.values()
        )

    # ------------------------------------------------------------------
    @classmethod
    def trace(
        cls,
        build: Callable[[dict[str, Tensor]], dict[str, Tensor]],
        inputs: Mapping[str, Array],
        grad_inputs: Iterable[str] = (),
        root: str = "root",
        seed: Array | None = None,
    ) -> "CapturedGraph":
        """Run ``build`` eagerly under a recorder and freeze the graph.

        Args:
            build: receives ``{name: Tensor}`` leaves and returns named
                output tensors, one of which (``root``) is the backward
                root.
            inputs: example input arrays; their shapes/dtypes define the
                plan signature.
            grad_inputs: input names whose gradients callers will read.
                These are traced with ``requires_grad=True`` regardless
                of whether the triggering call wants gradients, so one
                plan serves both modes.
            seed: upstream gradient for the trace backward (defaults to
                ones) — pass the triggering call's seed so the trace
                result doubles as that call's answer.
        """
        grad_names = tuple(grad_inputs)
        recorder = GraphRecorder()
        tensors = {
            name: Tensor(value, requires_grad=name in grad_names)
            for name, value in inputs.items()
        }
        with recording(recorder):
            outputs = build(dict(tensors))
        root_t = outputs[root]
        if grad_names:
            root_t.backward(seed, retain_graph=True)
        return cls(tensors, outputs, root_t, recorder)

    # ------------------------------------------------------------------
    def replay(
        self,
        values: Mapping[str, Array],
        *,
        seed: Array | None = None,
        want_grad: bool = True,
    ) -> None:
        """Re-execute the captured pass on new input values, in place.

        Results are read from ``self.outputs[...].data`` / :meth:`grad`
        afterwards (copy before handing them out — the buffers belong to
        the plan and are overwritten by the next replay).
        """
        for name, tensor in self.inputs.items():
            value = values.get(name)
            if value is None:
                raise CaptureMiss(f"missing input {name!r}")
            value = np.asarray(value)
            if value.shape != tensor.data.shape:
                raise CaptureMiss(
                    f"input {name!r}: shape {value.shape} != traced {tensor.data.shape}"
                )
            np.copyto(tensor.data, value)
        for node in self._forward_nodes:
            node._replay()
        if want_grad:
            self._replay_backward(seed)
        else:
            # Invalidate gradients from earlier passes: they describe a
            # previous input, and :meth:`grad` promises None here.
            for node in self._btopo:
                node.grad = None

    def _replay_backward(self, seed: Array | None) -> None:
        root = self.root
        for node in self._btopo:
            node.grad = None
        if seed is None:
            seed_arr: Array = np.ones_like(root.data)
        else:
            seed_arr = np.asarray(seed, dtype=root.data.dtype)
            if seed_arr.shape != root.data.shape:
                raise CaptureMiss(
                    f"seed shape {seed_arr.shape} != root shape {root.data.shape}"
                )
        for p in self._params:
            p.requires_grad = False
        try:
            root._accumulate(seed_arr)
            for node in reversed(self._btopo):
                if node._backward is not None and node.grad is not None:
                    node._backward(node.grad)
        finally:
            for p in self._params:
                p.requires_grad = True

    # ------------------------------------------------------------------
    def grad(self, name: str) -> Array | None:
        """Copy of the latest gradient for input ``name`` (None if the
        last replay skipped backward)."""
        g = self.inputs[name].grad
        return None if g is None else g.copy()

    def output(self, name: str) -> Array:
        """Copy of the latest value of output ``name``."""
        return self.outputs[name].data.copy()
