"""Convolution, pooling and upsampling with autodiff (NCHW layout).

Forward passes and their adjoints all reduce to the two primitives of
:mod:`repro.nn.dispatch` (valid cross-correlation and its kernel-shaped
adjoint), which routes each call through the best of three backends —
im2col-einsum, FFT, or shifted matmul — selected per shape by a cached
plan.  Backward closures deliberately retain **no** padded-input copy:
the padded map and its windows are recomputed from ``x.data`` on demand,
so the forward graph of a deep network holds one set of activations, not
two.

Under graph capture the trade flips: padded/dilated scratch maps *are*
retained (they become arena workspaces whose zero borders never change),
and replay closures refresh only the interiors before re-running the
dispatcher with ``out=`` into the original output buffers.  Replays hit
the same plan-cache key as the trace, so the backend — and therefore the
bit pattern — is identical.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from . import dispatch
from .tensor import Array, Tensor, capture_recorder


def _check_4d(x: Tensor, name: str) -> None:
    if x.ndim != 4:
        raise ValueError(f"{name} must be 4-D (B, C, H, W), got shape {x.shape}")


def _pad_spatial(values: Array, padding: int) -> Array:
    if not padding:
        return values
    return np.pad(values, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def _dilate_pad(values: Array, kh: int, kw: int, stride: int) -> Array:
    """Stride-dilated, (k-1)-padded map — the shared core of every
    scatter-style conv adjoint/forward.

    Inserting ``stride - 1`` zeros between entries and padding by the
    kernel size minus one turns a strided scatter into a dense gather:
    correlating the result with the spatially flipped kernel reproduces
    ``out[p] += values[h] * W[i]`` for every ``p = h * stride + i``.
    """
    if stride == 1:
        dilated = values
    else:
        B, C, H, W = values.shape
        dilated = np.zeros(
            (B, C, (H - 1) * stride + 1, (W - 1) * stride + 1), dtype=values.dtype
        )
        dilated[:, :, ::stride, ::stride] = values
    return np.pad(dilated, ((0, 0), (0, 0), (kh - 1, kh - 1), (kw - 1, kw - 1)))


def _flip_transpose(weight: Array) -> Array:
    """``(O, C, kh, kw) -> (C, O, kh, kw)`` with both spatial axes flipped."""
    return np.ascontiguousarray(weight.transpose(1, 0, 2, 3)[:, :, ::-1, ::-1])


def _dilate_pad_into(values: Array, kh: int, kw: int, stride: int,
                     ws: dict | None, name: str) -> Array:
    """:func:`_dilate_pad` with a reusable destination under capture.

    The zero dilation lattice and the (k-1) border of the retained buffer
    never change; refreshing only the stride-spaced interior slots is
    value-identical to rebuilding the map from scratch.
    """
    if ws is None:
        return _dilate_pad(values, kh, kw, stride)
    buf = ws.get(name)
    if buf is None:
        buf = _dilate_pad(values, kh, kw, stride)
        ws[name] = buf
        return buf
    B, C, H, W = values.shape
    buf[:, :, kh - 1 : kh - 1 + (H - 1) * stride + 1 : stride,
        kw - 1 : kw - 1 + (W - 1) * stride + 1 : stride] = values
    return buf


def _flip_transpose_into(weight: Array, ws: dict | None, name: str) -> Array:
    """:func:`_flip_transpose` with a reusable destination under capture."""
    if ws is None:
        return _flip_transpose(weight)
    buf = ws.get(name)
    if buf is None:
        buf = _flip_transpose(weight)
        ws[name] = buf
    else:
        np.copyto(buf, weight.transpose(1, 0, 2, 3)[:, :, ::-1, ::-1])
    return buf


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation: ``x (B,C,H,W) * weight (O,C,kh,kw)``."""
    _check_4d(x, "x")
    if weight.ndim != 4:
        raise ValueError(f"weight must be 4-D (O, C, kh, kw), got {weight.shape}")
    B, C, H, W = x.shape
    O, Cw, kh, kw = weight.shape
    if Cw != C:
        raise ValueError(f"channel mismatch: input {C}, weight expects {Cw}")
    if H + 2 * padding < kh or W + 2 * padding < kw:
        raise ValueError("kernel larger than padded input")

    recorder = capture_recorder()
    xp = _pad_spatial(x.data, padding)
    corr = dispatch.corr2d(xp, weight.data, stride, tag="fwd")
    if bias is not None:
        out_data = corr + bias.data[None, :, None, None]
    else:
        out_data = corr
    padded_shape = xp.shape
    if recorder is None:
        del xp  # recomputed on demand in backward; do not retain a copy

    parents = (x, weight) if bias is None else (x, weight, bias)
    out = Tensor(out_data, _parents=parents)
    bws = None if recorder is None else recorder.register_workspace({})

    def backward(grad: Array) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            weight._accumulate(
                dispatch.corr2d_weight_grad(
                    grad, _pad_spatial(x.data, padding), kh, kw, stride,
                    tag="bwd_weight",
                )
            )
        if x.requires_grad:
            # Input gradient as a full correlation of the dilated upstream
            # gradient with the flipped, channel-transposed kernel.
            gfull = dispatch.corr2d(
                _dilate_pad_into(grad, kh, kw, stride, bws, "gdp"),
                _flip_transpose_into(weight.data, bws, "fw"),
                1, tag="bwd_input",
                out=None if bws is None else bws.get("gfull"),
                workspace=bws,
            )
            if bws is not None:
                bws["gfull"] = gfull
            if gfull.shape == padded_shape:
                gxp = gfull
            else:
                # Trailing rows/cols of the padded input that no window
                # covers (when (H - kh) % stride != 0) get zero gradient.
                # Under capture the zero tail of the retained buffer is
                # never written, so refilling the head is equivalent.
                gxp = None if bws is None else bws.get("gxp")
                if gxp is None:
                    gxp = np.zeros(padded_shape, dtype=gfull.dtype)
                    if bws is not None:
                        bws["gxp"] = gxp
                gxp[:, :, : gfull.shape[2], : gfull.shape[3]] = gfull
            if padding:
                gxp = gxp[:, :, padding:-padding or None, padding:-padding or None]
            x._accumulate(gxp)

    out._backward = backward
    if recorder is not None:
        recorder.note_workspace(
            (xp.nbytes if padding else 0) + (corr.nbytes if bias is not None else 0)
        )
        fws = recorder.register_workspace({})

        def replay() -> None:
            if padding:
                np.copyto(xp[:, :, padding : padding + H, padding : padding + W],
                          x.data)
                src = xp
            else:
                src = x.data
            if bias is None:
                dispatch.corr2d(src, weight.data, stride, tag="fwd",
                                out=out.data, workspace=fws)
            else:
                dispatch.corr2d(src, weight.data, stride, tag="fwd", out=corr,
                                workspace=fws)
                np.add(corr, bias.data[None, :, None, None], out=out.data)

        out._replay = replay
    return out


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 2,
) -> Tensor:
    """Transposed convolution (a.k.a. up-convolution).

    ``x (B,C,H,W)``, ``weight (C,O,kh,kw)`` — torch's ConvTranspose2d
    convention — producing ``(B, O, (H-1)*stride + kh, ...)``.
    """
    _check_4d(x, "x")
    B, C, H, W = x.shape
    Cw, O, kh, kw = weight.shape
    if Cw != C:
        raise ValueError(f"channel mismatch: input {C}, weight expects {Cw}")

    # Scatter as a dense gather: correlate the dilated input with the
    # flipped kernel, (C, O) transposed into corr2d's (out, in) order.
    recorder = capture_recorder()
    dp = _dilate_pad(x.data, kh, kw, stride)
    fw = _flip_transpose(weight.data)
    corr = dispatch.corr2d(dp, fw, 1, tag="fwd")
    if bias is not None:
        out_data = corr + bias.data[None, :, None, None]
    else:
        out_data = corr
    if recorder is None:
        del dp, fw

    parents = (x, weight) if bias is None else (x, weight, bias)
    out = Tensor(out_data, _parents=parents)
    bws = None if recorder is None else recorder.register_workspace({})

    def backward(grad: Array) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            # gw[c, o, i, j] = sum_b,h,w x[b,c,h,w] grad[b,o,hs+i,ws+j]:
            # the weight-grad primitive with input and gradient roles
            # swapped returns the (C, O, kh, kw) layout directly.
            weight._accumulate(
                dispatch.corr2d_weight_grad(x.data, grad, kh, kw, stride,
                                            tag="bwd_weight")
            )
        if x.requires_grad:
            # Strided gather of the upstream gradient: a plain strided
            # correlation with the weight read as (out=C, in=O).
            gx = dispatch.corr2d(grad, weight.data, stride, tag="bwd_input",
                                 out=None if bws is None else bws.get("gx"),
                                 workspace=bws)
            if bws is not None:
                bws["gx"] = gx
            x._accumulate(gx)

    out._backward = backward
    if recorder is not None:
        recorder.note_workspace(
            dp.nbytes + fw.nbytes + (corr.nbytes if bias is not None else 0)
        )
        fws = recorder.register_workspace({})

        def replay() -> None:
            # Interior strided slots of the dilate-padded map; the zero
            # lattice between them never changes.
            dp[:, :, kh - 1 : kh - 1 + (H - 1) * stride + 1 : stride,
               kw - 1 : kw - 1 + (W - 1) * stride + 1 : stride] = x.data
            np.copyto(fw, weight.data.transpose(1, 0, 2, 3)[:, :, ::-1, ::-1])
            if bias is None:
                dispatch.corr2d(dp, fw, 1, tag="fwd", out=out.data,
                                workspace=fws)
            else:
                dispatch.corr2d(dp, fw, 1, tag="fwd", out=corr, workspace=fws)
                np.add(corr, bias.data[None, :, None, None], out=out.data)

        out._replay = replay
    return out


def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling; input H, W must be divisible by the kernel when
    ``stride == kernel`` (the only mode the UNet uses)."""
    _check_4d(x, "x")
    stride = kernel if stride is None else stride
    B, C, H, W = x.shape
    windows = sliding_window_view(x.data, (kernel, kernel), axis=(2, 3))[
        :, :, ::stride, ::stride
    ]
    Ho, Wo = windows.shape[2], windows.shape[3]
    flat = windows.reshape(B, C, Ho, Wo, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out = Tensor(np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0],
                 _parents=(x,))

    recorder = capture_recorder()
    bws = None if recorder is None else recorder.register_workspace({})

    def backward(grad: Array) -> None:
        if not x.requires_grad:
            return
        if bws is None:
            gx = np.zeros_like(x.data)
        else:
            gx = bws.get("gx")
            if gx is None:
                gx = np.zeros_like(x.data)
                bws["gx"] = gx
            else:
                gx.fill(0)
        bi, ci, hi, wi = np.ogrid[:B, :C, :Ho, :Wo]
        rows = hi * stride + arg // kernel
        cols = wi * stride + arg % kernel
        np.add.at(gx, (bi, ci, rows, cols), grad)
        x._accumulate(gx)

    out._backward = backward
    if recorder is not None:
        recorder.note_workspace(flat.nbytes + arg.nbytes)

        def replay() -> None:
            # `windows` is a strided view of x.data, so it tracks in-place
            # input updates; `flat` is its contiguous copy, refreshed here.
            np.copyto(flat.reshape(windows.shape), windows)
            flat.argmax(axis=-1, out=arg)
            # max == take_along_axis(flat, argmax): both return the same
            # window element exactly, so this is bitwise-equal and cheaper.
            flat.max(axis=-1, out=out.data)

        out._replay = replay
    return out


def upsample2x(x: Tensor) -> Tensor:
    """Nearest-neighbour 2x upsampling (UNet decoder path)."""
    _check_4d(x, "x")
    out = Tensor(x.data.repeat(2, axis=2).repeat(2, axis=3), _parents=(x,))
    B, C, H, W = x.shape

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad.reshape(B, C, H, 2, W, 2).sum(axis=(3, 5)))

    out._backward = backward
    if capture_recorder() is not None:

        def replay() -> None:
            out.data.reshape(B, C, H, 2, W, 2)[...] = x.data[:, :, :, None, :, None]

        out._replay = replay
    return out


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping average pooling."""
    _check_4d(x, "x")
    B, C, H, W = x.shape
    if H % kernel or W % kernel:
        raise ValueError(f"H, W must be divisible by {kernel}, got {H}x{W}")
    Ho, Wo = H // kernel, W // kernel
    out = Tensor(
        x.data.reshape(B, C, Ho, kernel, Wo, kernel).mean(axis=(3, 5)),
        _parents=(x,),
    )
    scale = 1.0 / (kernel * kernel)

    def backward(grad: Array) -> None:
        if x.requires_grad:
            g = np.repeat(np.repeat(grad, kernel, axis=2), kernel, axis=3) * scale
            x._accumulate(g)

    out._backward = backward
    if capture_recorder() is not None:

        def replay() -> None:
            np.mean(x.data.reshape(B, C, Ho, kernel, Wo, kernel), axis=(3, 5),
                    out=out.data)

        out._replay = replay
    return out
