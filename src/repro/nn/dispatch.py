"""Shape-aware kernel dispatch for the conv hot paths (plan once, reuse).

Every convolution in this code base — ``conv2d``/``conv_transpose2d``
forwards *and* their input/weight adjoints — reduces to two primitives:

* :func:`corr2d` — valid 2-D cross-correlation of a (pre-padded) input
  with a kernel stack;
* :func:`corr2d_weight_grad` — the correlation of an upstream gradient
  with the input windows that produces a kernel-shaped gradient.

Each primitive has three interchangeable backends:

``im2col``
    The original :func:`numpy.lib.stride_tricks.sliding_window_view` +
    ``einsum`` formulation.  Robust for every shape/stride; the parity
    reference the other backends are validated against.
``fft``
    ``rfft2`` pointwise products (stride 1 only).  Kernel transforms are
    cached per ``(kernel bytes, fft shape)``, so repeated calls — e.g.
    the tile loop of full-chip inference — pay the kernel FFT once.
    Wins by orders of magnitude for large kernels on large maps.
``matmul``
    Channels-last shifted-GEMM accumulation; degenerates to a single
    matmul for 1x1 kernels (the pointwise fast path).  Wins for
    single-image large-map 3x3 convs where the im2col window copy
    dominates.

Backend selection follows the cuDNN/FFTW idiom: the first call for a new
``(op, shape, kernel, stride, dtype)`` key above a size threshold runs a
one-shot micro-benchmark of every eligible backend, records the winner in
a plan cache (persisted to disk, see
:func:`repro.config.conv_plan_cache_path`), and every later call with the
same key dispatches straight to the winner.  Below the threshold a
deterministic heuristic applies (``matmul`` for 1x1 kernels and for
forward correlations with kernels up to 3x3, otherwise ``im2col``),
which keeps small-problem numerics bit-stable run to run.
``REPRO_CONV_BACKEND`` forces one backend globally (falling back to
``im2col`` when the forced backend does not support the call, e.g. FFT
with stride > 1).

Caveat: the kernel-FFT cache keys on the kernel's bytes, so it is exact
even if a weight array is mutated in place; entries are evicted FIFO to
bound memory (full-map transforms can be large).
"""

from __future__ import annotations

import json
import time
from typing import Callable

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..config import conv_backend_override, conv_plan_cache_path
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

Array = np.ndarray

#: Names of the selectable backends (parity-tested against each other).
BACKENDS: tuple[str, ...] = ("im2col", "fft", "matmul")

#: Padded-map cell count below which calibration is skipped and the
#: deterministic heuristic applies.  128x128 keeps every test-sized
#: problem on the bit-stable im2col path.
CALIBRATE_MIN_CELLS: int = 128 * 128

#: Maximum number of cached kernel FFTs (each can be full-map sized).
_KFFT_MAX_ENTRIES: int = 8

_PLAN_FILE_VERSION = 1

_plans: dict[str, dict] = {}
_persisted_loaded = False
_kernel_ffts: dict[tuple, Array] = {}


def _workspace_buffer(workspace: dict | None, name: str, shape: tuple,
                      dtype) -> Array:
    """Fetch-or-create a reusable scratch array in a caller-owned dict.

    Captured-graph replay closures (:mod:`repro.nn.capture` via
    :mod:`repro.nn.conv`) pass a per-call-site dict so hot repeated calls
    reuse their im2col/result scratch instead of reallocating it every
    iteration; eager calls pass None and allocate fresh.  Buffer shape,
    layout and dtype are identical either way, so results are bitwise
    equal.
    """
    if workspace is None:
        return np.empty(shape, dtype=dtype)
    buf = workspace.get(name)
    if buf is None or buf.shape != shape or buf.dtype != dtype:
        buf = np.empty(shape, dtype=dtype)
        workspace[name] = buf
    return buf


# ----------------------------------------------------------------------
# forward primitive: valid cross-correlation
#   out[b, o, h, w] = sum_{c,i,j} xp[b, c, h*s + i, w*s + j] * w[o, c, i, j]
# ----------------------------------------------------------------------
def _corr_im2col(xp: Array, w: Array, stride: int, out: Array | None = None,
                 workspace: dict | None = None) -> Array:
    kh, kw = w.shape[2:]
    win = sliding_window_view(xp, (kh, kw), axis=(2, 3))[:, :, ::stride, ::stride]
    return np.einsum("bchwij,ocij->bohw", win, w, optimize=True, out=out)


def _corr_matmul(xp: Array, w: Array, stride: int, out: Array | None = None,
                 workspace: dict | None = None) -> Array:
    O, C, kh, kw = w.shape
    B, _, H, W = xp.shape
    Ho = (H - kh) // stride + 1
    Wo = (W - kw) // stride + 1
    dtype = np.result_type(xp, w)
    if kh == 1 and kw == 1:
        x = xp[:, :, ::stride, ::stride] if stride > 1 else xp
        res = np.tensordot(w[:, :, 0, 0], x, axes=([1], [1]))  # (O, B, Ho, Wo)
        if out is not None:
            np.copyto(out, res.transpose(1, 0, 2, 3))
            return out
        return np.ascontiguousarray(res.transpose(1, 0, 2, 3))
    # Channels-last copy of the input; each kernel tap is then a strided
    # view feeding one GEMM.  Buffer layouts (and therefore the GEMM
    # accumulation order and bit patterns) are identical with and without
    # a workspace.
    xs = _workspace_buffer(workspace, "mm_xs", (B, H, W, C), xp.dtype)
    np.copyto(xs, xp.transpose(0, 2, 3, 1))
    wt = _workspace_buffer(workspace, "mm_wt", (kh, kw, C, O), w.dtype)
    np.copyto(wt, w.transpose(2, 3, 1, 0))
    acc = _workspace_buffer(workspace, "mm_acc", (B, Ho, Wo, O), dtype)
    blk = _workspace_buffer(workspace, "mm_blk", (B, Ho, Wo, O), dtype)
    for i in range(kh):
        for j in range(kw):
            tap = xs[:, i : i + (Ho - 1) * stride + 1 : stride,
                     j : j + (Wo - 1) * stride + 1 : stride, :]
            np.matmul(tap, wt[i, j], out=acc if (i, j) == (0, 0) else blk)
            if (i, j) != (0, 0):
                np.add(acc, blk, out=acc)
    acc_t = acc.transpose(0, 3, 1, 2)
    if out is not None:
        np.copyto(out, acc_t)
        return out
    # Never hand a workspace-backed view to the caller.
    return acc_t.copy() if workspace is not None else np.ascontiguousarray(acc_t)


def _kernel_rfft2(w: Array, fft_shape: tuple[int, int], conj: bool) -> Array:
    w = np.ascontiguousarray(w)
    key = (w.tobytes(), w.shape, str(w.dtype), fft_shape, conj)
    hit = _kernel_ffts.get(key)
    if hit is not None:
        return hit
    fw = np.fft.rfft2(w, s=fft_shape)
    if conj:
        np.conj(fw, out=fw)
    while len(_kernel_ffts) >= _KFFT_MAX_ENTRIES:
        _kernel_ffts.pop(next(iter(_kernel_ffts)))
    _kernel_ffts[key] = fw
    return fw


def _corr_fft(xp: Array, w: Array, stride: int, out: Array | None = None,
              workspace: dict | None = None) -> Array:
    if stride != 1:
        raise ValueError("fft backend supports stride 1 only")
    B, C, H, W = xp.shape
    O, _, kh, kw = w.shape
    fx = np.fft.rfft2(xp)
    fw = _kernel_rfft2(w, (H, W), conj=True)
    fy = np.einsum("bchw,ochw->bohw", fx, fw, optimize=True)
    res = np.fft.irfft2(fy, s=(H, W))[:, :, : H - kh + 1, : W - kw + 1]
    if out is not None:
        np.copyto(out, res)
        return out
    return np.ascontiguousarray(res.astype(xp.dtype, copy=False))


# ----------------------------------------------------------------------
# weight-gradient primitive
#   gw[o, c, i, j] = sum_{b,h,w} g[b, o, h, w] * xp[b, c, h*s + i, w*s + j]
# ----------------------------------------------------------------------
def _wgrad_im2col(g: Array, xp: Array, kh: int, kw: int, stride: int,
                  out: Array | None = None,
                  workspace: dict | None = None) -> Array:
    win = sliding_window_view(xp, (kh, kw), axis=(2, 3))[:, :, ::stride, ::stride]
    return np.einsum("bohw,bchwij->ocij", g, win, optimize=True, out=out)


def _wgrad_matmul(g: Array, xp: Array, kh: int, kw: int, stride: int,
                  out: Array | None = None,
                  workspace: dict | None = None) -> Array:
    B, O, Ho, Wo = g.shape
    C = xp.shape[1]
    gw = out if out is not None else np.empty(
        (O, C, kh, kw), dtype=np.result_type(g, xp)
    )
    for i in range(kh):
        for j in range(kw):
            tap = xp[:, :, i : i + (Ho - 1) * stride + 1 : stride,
                     j : j + (Wo - 1) * stride + 1 : stride]
            gw[:, :, i, j] = np.tensordot(g, tap, axes=([0, 2, 3], [0, 2, 3]))
    return gw


def _wgrad_fft(g: Array, xp: Array, kh: int, kw: int, stride: int,
               out: Array | None = None,
               workspace: dict | None = None) -> Array:
    if stride != 1:
        raise ValueError("fft backend supports stride 1 only")
    H, W = xp.shape[2:]
    fx = np.fft.rfft2(xp)
    fg = np.conj(np.fft.rfft2(g, s=(H, W)))
    fw = np.einsum("bchw,bohw->ochw", fx, fg, optimize=True)
    gw = np.fft.irfft2(fw, s=(H, W))[:, :, :kh, :kw]
    if out is not None:
        np.copyto(out, gw)
        return out
    return np.ascontiguousarray(gw.astype(xp.dtype, copy=False))


_CORR_BACKENDS: dict[str, Callable[..., Array]] = {
    "im2col": _corr_im2col,
    "matmul": _corr_matmul,
    "fft": _corr_fft,
}
_WGRAD_BACKENDS: dict[str, Callable[..., Array]] = {
    "im2col": _wgrad_im2col,
    "matmul": _wgrad_matmul,
    "fft": _wgrad_fft,
}


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------
_key_memo: dict[tuple, str] = {}


def _plan_key(op: str, B: int, C: int, H: int, W: int, O: int,
              kh: int, kw: int, stride: int, dtype) -> str:
    memo = (op, B, C, H, W, O, kh, kw, stride, dtype)
    key = _key_memo.get(memo)
    if key is None:
        key = f"{op}|b{B}c{C}h{H}w{W}o{O}k{kh}x{kw}s{stride}|{dtype}"
        _key_memo[memo] = key
    return key


def _heuristic(op: str, kh: int, kw: int) -> str:
    # Forward correlations: the shifted-GEMM backend beats im2col's
    # window materialisation for small kernels (one GEMM per tap, no
    # column copy), and degenerates to a single matmul for 1x1.  The
    # weight-grad adjoint contracts over the batch *and* both spatial
    # axes, which the einsum formulation handles in one fused pass, so
    # it stays on im2col except for pointwise kernels.
    if kh == 1 and kw == 1:
        return "matmul"
    if op == "corr" and kh * kw <= 9:
        return "matmul"
    return "im2col"


def _eligible(stride: int) -> tuple[str, ...]:
    return BACKENDS if stride == 1 else ("im2col", "matmul")


def _load_persisted() -> None:
    global _persisted_loaded
    if _persisted_loaded:
        return
    _persisted_loaded = True
    path = conv_plan_cache_path()
    if path is None or not path.exists():
        return
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return
    # Timings shift across numpy/BLAS builds; stale plans are dropped.
    if data.get("version") != _PLAN_FILE_VERSION or data.get("numpy") != np.__version__:
        return
    for key, plan in data.get("plans", {}).items():
        if plan.get("backend") in BACKENDS and key not in _plans:
            _plans[key] = {**plan, "source": "persisted"}


def _save_persisted() -> None:
    path = conv_plan_cache_path()
    if path is None:
        return
    payload = {
        "version": _PLAN_FILE_VERSION,
        "numpy": np.__version__,
        "plans": {
            key: {k: v for k, v in plan.items() if k != "source"}
            for key, plan in _plans.items()
            if plan.get("source") in ("calibrated", "persisted")
        },
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=1) + "\n")
        tmp.replace(path)
    except OSError:
        pass


def _calibrate(key: str, eligible: tuple[str, ...],
               run: Callable[[str], Array]) -> tuple[str, Array]:
    """Run every eligible backend once on the live call, keep the winner."""
    timings: dict[str, float] = {}
    results: dict[str, Array] = {}
    for name in eligible:
        t0 = time.perf_counter()
        results[name] = run(name)
        timings[name] = time.perf_counter() - t0
    best = min(timings, key=timings.get)
    reference = results["im2col"]
    max_dev = max(
        float(np.max(np.abs(results[name] - reference))) if name != "im2col" else 0.0
        for name in eligible
    )
    _plans[key] = {
        "backend": best,
        "timings_ms": {k: round(v * 1e3, 4) for k, v in timings.items()},
        "max_abs_dev": max_dev,
        "source": "calibrated",
    }
    _save_persisted()
    return best, results[best]


def _run_observed(op: str, tag: str, key: str, backend: str,
                  run: Callable[[str], Array]) -> Array:
    """Execute ``run(backend)``; when obs is enabled, time it and record
    a per-op span plus aggregate call counts / latency.

    The disabled path is the plain call — :func:`_dispatch` only routes
    through here after checking ``obs_trace.active()``, so tracing off
    costs nothing and perturbs nothing (timing adds no arithmetic to the
    conv result either way).
    """
    tracer = obs_trace.active()
    if tracer is None:
        return run(backend)
    t0 = time.perf_counter()
    out = run(backend)
    dur = time.perf_counter() - t0
    name = f"nn.{op}.{tag}" if tag else f"nn.{op}"
    tracer.record_span(name, "nn", dur, backend=backend, key=key)
    registry = obs_metrics.registry()
    registry.incr(f"{name}.calls")
    registry.record_latency(name, dur)
    return out


def _dispatch(op: str, key: str, cells: int, kh: int, kw: int, stride: int,
              run: Callable[[str, Array | None], Array], tag: str = "",
              out: Array | None = None) -> Array:
    if obs_trace.active() is not None:
        inner = run
        run = lambda backend, dst: _run_observed(
            op, tag, key, backend, lambda name: inner(name, dst)
        )
    override = conv_backend_override()
    if override is not None:
        if override not in _eligible(stride):
            override = "im2col"
        return run(override, out)
    _load_persisted()
    plan = _plans.get(key)
    if plan is not None:
        return run(plan["backend"], out)
    if cells < CALIBRATE_MIN_CELLS:
        backend = _heuristic(op, kh, kw)
        _plans[key] = {"backend": backend, "source": "heuristic"}
        return run(backend, out)
    # Calibration runs every backend; each must get its own result array,
    # so `out` is only filled from the winner afterwards.
    _, result = _calibrate(key, _eligible(stride), lambda name: run(name, None))
    if out is not None:
        np.copyto(out, result)
        return out
    return result


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def corr2d(xp: Array, w: Array, stride: int = 1, tag: str = "",
           out: Array | None = None, workspace: dict | None = None) -> Array:
    """Valid cross-correlation ``xp (B,C,H,W) * w (O,C,kh,kw)``.

    ``xp`` must already carry any zero padding; the selected backend is
    shape-planned (see module docstring).  ``tag`` labels the call for
    observability only (``"fwd"`` / ``"bwd_input"`` from the conv
    layers); it never affects dispatch or numerics.  ``out`` receives the
    result in place and ``workspace`` (a caller-owned dict) preserves the
    im2col scratch across calls (captured-graph replay); values are
    bitwise identical either way — backends that cannot write in place
    compute normally and copy, backends without scratch ignore the dict.
    """
    B, C, H, W = xp.shape
    O, _, kh, kw = w.shape
    key = _plan_key("corr", B, C, H, W, O, kh, kw, stride, xp.dtype)
    return _dispatch(
        "corr", key, H * W, kh, kw, stride,
        lambda name, dst: _CORR_BACKENDS[name](xp, w, stride, out=dst,
                                               workspace=workspace),
        tag=tag, out=out,
    )


def corr2d_weight_grad(g: Array, xp: Array, kh: int, kw: int,
                       stride: int = 1, tag: str = "",
                       out: Array | None = None,
                       workspace: dict | None = None) -> Array:
    """Kernel-shaped adjoint ``gw[o,c,i,j] = sum g[b,o,h,w] xp[b,c,hs+i,ws+j]``."""
    B, C, H, W = xp.shape
    O = g.shape[1]
    key = _plan_key("wgrad", B, C, H, W, O, kh, kw, stride, xp.dtype)
    return _dispatch(
        "wgrad", key, H * W, kh, kw, stride,
        lambda name, dst: _WGRAD_BACKENDS[name](g, xp, kh, kw, stride, out=dst,
                                                workspace=workspace),
        tag=tag, out=out,
    )


def plan_table() -> dict[str, dict]:
    """A copy of the in-memory plan cache (for benches and tests)."""
    return {key: dict(plan) for key, plan in _plans.items()}


def warm_plan_cache() -> int:
    """Eagerly load persisted dispatch plans; returns the plan count.

    Called at the start of forked serve worker processes so children
    reuse the plans the parent (or a previous run) already calibrated
    instead of re-benchmarking every backend once per fork.  A no-op
    when plans were already loaded (fork inherits the parent's table).
    """
    _load_persisted()
    return len(_plans)


def clear_caches(reload_persisted: bool = True) -> None:
    """Drop in-memory plans and cached kernel FFTs.

    Args:
        reload_persisted: when True (default), the on-disk plan file is
            re-read lazily on the next dispatch; pass False to also skip
            that (fully cold state, used by tests).
    """
    global _persisted_loaded
    _plans.clear()
    _kernel_ffts.clear()
    _key_memo.clear()
    _persisted_loaded = not reload_persisted
