"""Functional ops on :class:`~repro.nn.tensor.Tensor`.

These mirror the torch functions the paper names in Eq. 10 — ``VAR``,
``SUM``, ``ABS``, ``MEAN``, ``ONES``, ``SIGMOID`` — plus the activations
and tensor surgery (concat, pad) the UNet needs.

Under graph capture (:mod:`repro.nn.capture`) each op additionally
installs a ``_replay`` closure that recomputes its output — and any
state its backward closure captured (masks, gate arrays) — in place via
``out=`` ufuncs.  Every closure applies the same ufuncs to the same
operands as the eager path, so replayed values are bitwise identical.
Scratch buffers the closures need are allocated once at trace time and
reported to the recorder for arena accounting.
"""

from __future__ import annotations

import numpy as np

from .tensor import Array, Tensor, capture_recorder


def _note(*buffers: np.ndarray) -> None:
    recorder = capture_recorder()
    if recorder is not None:
        recorder.note_workspace(sum(b.nbytes for b in buffers))


def relu(x: Tensor) -> Tensor:
    out = Tensor(np.maximum(x.data, 0.0), _parents=(x,))
    mask = x.data > 0

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    out._backward = backward
    if capture_recorder() is not None:

        def replay() -> None:
            np.maximum(x.data, 0.0, out=out.data)
            np.greater(x.data, 0, out=mask)

        out._replay = replay
    return out


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    scale = np.where(x.data > 0, 1.0, negative_slope)
    out = Tensor(x.data * scale, _parents=(x,))

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * scale)

    out._backward = backward
    if capture_recorder() is not None:
        mask = np.empty(x.data.shape, dtype=bool)
        _note(mask)

        def replay() -> None:
            np.greater(x.data, 0, out=mask)
            np.copyto(scale, negative_slope)
            np.copyto(scale, 1.0, where=mask)
            np.multiply(x.data, scale, out=out.data)

        out._replay = replay
    return out


def sigmoid(x: Tensor) -> Tensor:
    value = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60.0, 60.0)))
    out = Tensor(value, _parents=(x,))

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * value * (1.0 - value))

    out._backward = backward
    if capture_recorder() is not None:
        tmp = np.empty_like(value)
        _note(tmp)

        def replay() -> None:
            # `value` is out.data (same-dtype construction), so refreshing
            # the output also refreshes the backward state.
            np.clip(x.data, -60.0, 60.0, out=tmp)
            np.negative(tmp, out=tmp)
            np.exp(tmp, out=tmp)
            np.add(1.0, tmp, out=tmp)
            np.divide(1.0, tmp, out=value)

        out._replay = replay
    return out


def tanh(x: Tensor) -> Tensor:
    value = np.tanh(x.data)
    out = Tensor(value, _parents=(x,))

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - value**2))

    out._backward = backward
    if capture_recorder() is not None:
        out._replay = lambda: np.tanh(x.data, out=value)
    return out


def softplus(x: Tensor, beta: float = 1.0) -> Tensor:
    """Numerically stable ``log(1 + exp(beta x)) / beta``."""
    z = beta * x.data
    value = np.where(z > 30, z, np.log1p(np.exp(np.minimum(z, 30)))) / beta
    out = Tensor(value, _parents=(x,))
    sig = 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * sig)

    out._backward = backward
    if capture_recorder() is not None:
        branch = np.empty_like(z)
        high = np.empty(z.shape, dtype=bool)
        _note(z, branch, high, sig)

        def replay() -> None:
            np.multiply(beta, x.data, out=z)
            np.minimum(z, 30, out=branch)
            np.exp(branch, out=branch)
            np.log1p(branch, out=branch)
            np.greater(z, 30, out=high)
            np.copyto(branch, z, where=high)
            np.divide(branch, beta, out=value)
            np.clip(z, -60.0, 60.0, out=branch)
            np.negative(branch, out=branch)
            np.exp(branch, out=branch)
            np.add(1.0, branch, out=branch)
            np.divide(1.0, branch, out=sig)

        out._replay = replay
    return out


def maximum(x: Tensor, other) -> Tensor:
    """Elementwise max; ties route the gradient to ``x`` (subgradient)."""
    other = Tensor._lift(other)
    out = Tensor(np.maximum(x.data, other.data), _parents=(x, other))
    # asarray: comparing 0-d operands yields a numpy scalar, which cannot
    # serve as the ``out=`` target of the replay refresh below.
    take_x = np.asarray(x.data >= other.data)

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * take_x)
        if other.requires_grad:
            other._accumulate(grad * ~take_x)

    out._backward = backward
    if capture_recorder() is not None:

        def replay() -> None:
            np.maximum(x.data, other.data, out=out.data)
            np.greater_equal(x.data, other.data, out=take_x)

        out._replay = replay
    return out


def minimum(x: Tensor, other) -> Tensor:
    other = Tensor._lift(other)
    out = Tensor(np.minimum(x.data, other.data), _parents=(x, other))
    take_x = np.asarray(x.data <= other.data)

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * take_x)
        if other.requires_grad:
            other._accumulate(grad * ~take_x)

    out._backward = backward
    if capture_recorder() is not None:

        def replay() -> None:
            np.minimum(x.data, other.data, out=out.data)
            np.less_equal(x.data, other.data, out=take_x)

        out._replay = replay
    return out


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    """Clamp with pass-through gradient inside the interval."""
    out = Tensor(np.clip(x.data, lo, hi), _parents=(x,))
    inside = np.asarray((x.data >= lo) & (x.data <= hi))

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * inside)

    out._backward = backward
    if capture_recorder() is not None:
        below = np.empty(x.data.shape, dtype=bool)
        _note(below)

        def replay() -> None:
            np.clip(x.data, lo, hi, out=out.data)
            np.greater_equal(x.data, lo, out=inside)
            np.less_equal(x.data, hi, out=below)
            np.logical_and(inside, below, out=inside)

        out._replay = replay
    return out


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along ``axis`` (the UNet skip-connection join)."""
    if not tensors:
        raise ValueError("concat of an empty list")
    out = Tensor(
        np.concatenate([t.data for t in tensors], axis=axis), _parents=tuple(tensors)
    )
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: Array) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    out._backward = backward
    if capture_recorder() is not None:
        slots = []
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * out.ndim
            index[axis] = slice(int(start), int(stop))
            slots.append((tuple(index), t))

        def replay() -> None:
            for index, t in slots:
                np.copyto(out.data[index], t.data)

        out._replay = replay
    return out


def pad2d(x: Tensor, pad: tuple[int, int, int, int]) -> Tensor:
    """Zero-pad the last two dims by ``(top, bottom, left, right)``."""
    top, bottom, left, right = pad
    if min(pad) < 0:
        raise ValueError(f"negative padding: {pad}")
    widths = [(0, 0)] * (x.ndim - 2) + [(top, bottom), (left, right)]
    out = Tensor(np.pad(x.data, widths), _parents=(x,))
    h, w = x.data.shape[-2:]

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad[..., top : top + h, left : left + w])

    out._backward = backward
    if capture_recorder() is not None:
        # The zero border never changes; only the interior is refreshed.
        out._replay = lambda: np.copyto(
            out.data[..., top : top + h, left : left + w], x.data
        )
    return out


def mean_over(x: Tensor, axis, keepdims: bool = False) -> Tensor:
    """Alias for :meth:`Tensor.mean` (parity with the paper's MEAN)."""
    return x.mean(axis=axis, keepdims=keepdims)


def ones(shape) -> Tensor:
    """Constant ones tensor (the paper's ONES helper)."""
    return Tensor(np.ones(shape))
