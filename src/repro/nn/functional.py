"""Functional ops on :class:`~repro.nn.tensor.Tensor`.

These mirror the torch functions the paper names in Eq. 10 — ``VAR``,
``SUM``, ``ABS``, ``MEAN``, ``ONES``, ``SIGMOID`` — plus the activations
and tensor surgery (concat, pad) the UNet needs.
"""

from __future__ import annotations

import numpy as np

from .tensor import Array, Tensor


def relu(x: Tensor) -> Tensor:
    out = Tensor(np.maximum(x.data, 0.0), _parents=(x,))
    mask = x.data > 0

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    out._backward = backward
    return out


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    scale = np.where(x.data > 0, 1.0, negative_slope)
    out = Tensor(x.data * scale, _parents=(x,))

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * scale)

    out._backward = backward
    return out


def sigmoid(x: Tensor) -> Tensor:
    value = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60.0, 60.0)))
    out = Tensor(value, _parents=(x,))

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * value * (1.0 - value))

    out._backward = backward
    return out


def tanh(x: Tensor) -> Tensor:
    value = np.tanh(x.data)
    out = Tensor(value, _parents=(x,))

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - value**2))

    out._backward = backward
    return out


def softplus(x: Tensor, beta: float = 1.0) -> Tensor:
    """Numerically stable ``log(1 + exp(beta x)) / beta``."""
    z = beta * x.data
    value = np.where(z > 30, z, np.log1p(np.exp(np.minimum(z, 30)))) / beta
    out = Tensor(value, _parents=(x,))
    sig = 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * sig)

    out._backward = backward
    return out


def maximum(x: Tensor, other) -> Tensor:
    """Elementwise max; ties route the gradient to ``x`` (subgradient)."""
    other = Tensor._lift(other)
    out = Tensor(np.maximum(x.data, other.data), _parents=(x, other))
    take_x = x.data >= other.data

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * take_x)
        if other.requires_grad:
            other._accumulate(grad * ~take_x)

    out._backward = backward
    return out


def minimum(x: Tensor, other) -> Tensor:
    other = Tensor._lift(other)
    out = Tensor(np.minimum(x.data, other.data), _parents=(x, other))
    take_x = x.data <= other.data

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * take_x)
        if other.requires_grad:
            other._accumulate(grad * ~take_x)

    out._backward = backward
    return out


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    """Clamp with pass-through gradient inside the interval."""
    out = Tensor(np.clip(x.data, lo, hi), _parents=(x,))
    inside = (x.data >= lo) & (x.data <= hi)

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad * inside)

    out._backward = backward
    return out


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along ``axis`` (the UNet skip-connection join)."""
    if not tensors:
        raise ValueError("concat of an empty list")
    out = Tensor(
        np.concatenate([t.data for t in tensors], axis=axis), _parents=tuple(tensors)
    )
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: Array) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    out._backward = backward
    return out


def pad2d(x: Tensor, pad: tuple[int, int, int, int]) -> Tensor:
    """Zero-pad the last two dims by ``(top, bottom, left, right)``."""
    top, bottom, left, right = pad
    if min(pad) < 0:
        raise ValueError(f"negative padding: {pad}")
    widths = [(0, 0)] * (x.ndim - 2) + [(top, bottom), (left, right)]
    out = Tensor(np.pad(x.data, widths), _parents=(x,))
    h, w = x.data.shape[-2:]

    def backward(grad: Array) -> None:
        if x.requires_grad:
            x._accumulate(grad[..., top : top + h, left : left + w])

    out._backward = backward
    return out


def mean_over(x: Tensor, axis, keepdims: bool = False) -> Tensor:
    """Alias for :meth:`Tensor.mean` (parity with the paper's MEAN)."""
    return x.mean(axis=axis, keepdims=keepdims)


def ones(shape) -> Tensor:
    """Constant ones tensor (the paper's ONES helper)."""
    return Tensor(np.ones(shape))
