"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

from ..config import rng_from_seed


def kaiming_normal(shape: tuple[int, ...], fan_in: int,
                   rng: np.random.Generator | int | None = None) -> np.ndarray:
    """He initialisation for ReLU networks: ``N(0, sqrt(2 / fan_in))``."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    rng = rng_from_seed(rng)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def xavier_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Glorot uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fans must be positive")
    rng = rng_from_seed(rng)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)
