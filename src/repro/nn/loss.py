"""Loss functions for surrogate pre-training."""

from __future__ import annotations

from .tensor import Tensor


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error — the paper's pre-training objective (Eq. 20)."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")
    diff = pred - target
    return (diff * diff).mean()


def l1_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")
    return (pred - target).abs().mean()


def relative_l2_loss(pred: Tensor, target: Tensor, eps: float = 1e-8) -> Tensor:
    """MSE normalised by the target energy; scale-free training signal."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")
    diff = pred - target
    denom = (target * target).mean().item() + eps
    return (diff * diff).mean() * (1.0 / denom)
