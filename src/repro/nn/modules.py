"""Layer/module system: a compact torch.nn equivalent.

Modules own parameter tensors and optional numpy buffers (running
statistics).  Parameter discovery walks attributes recursively, so plain
attribute assignment (``self.conv = Conv2d(...)``) and lists of modules
both work without explicit registration.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .conv import conv2d, conv_transpose2d, max_pool2d, upsample2x
from .init import kaiming_normal
from .tensor import Tensor


class Module:
    """Base class: parameter traversal, train/eval mode, state dict."""

    def __init__(self):
        self.training = True
        #: Bumped whenever parameter/buffer *objects* are re-bound
        #: (``load_state_dict``, ``to_dtype``).  Captured-graph plans key
        #: on it: replay closures read parameter arrays live, so in-place
        #: value updates are safe, but a re-bind swaps the array object a
        #: traced view aliases and must invalidate the plan.
        self._state_version = 0

    # -- forward ---------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- traversal -------------------------------------------------------
    def _children(self):
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for k, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{k}", item

    def named_parameters(self, prefix: str = ""):
        """Yield ``(dotted_name, Tensor)`` for every parameter."""
        for name, value in vars(self).items():
            if isinstance(value, Tensor) and value.requires_grad:
                yield (f"{prefix}{name}", value)
        for name, child in self._children():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = ""):
        """Yield ``(dotted_name, ndarray)`` for every registered buffer."""
        for name in getattr(self, "_buffer_names", ()):
            yield (f"{prefix}{name}", getattr(self, name))
        for name, child in self._children():
            yield from child.named_buffers(prefix=f"{prefix}{name}.")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        setattr(self, name, value)
        names = list(getattr(self, "_buffer_names", ()))
        if name not in names:
            names.append(name)
        self._buffer_names = tuple(names)

    # -- modes -----------------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for _, child in self._children():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for _, child in self._children():
            child.eval()
        return self

    # -- state -----------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({f"buffer:{n}": b.copy() for n, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        expected = set(params) | {f"buffer:{n}" for n in buffers}
        if set(state) != expected:
            missing = expected - set(state)
            extra = set(state) - expected
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} extra={sorted(extra)}")
        for name, p in params.items():
            if p.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}")
            p.data = state[name].astype(np.float64).copy()
        for name, buf in buffers.items():
            buf[...] = state[f"buffer:{name}"]
        self._state_version += 1

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter and buffer to ``dtype`` in place.

        Pair with :func:`repro.nn.tensor.compute_dtype` for the opt-in
        float32 compute mode: casting the weights up front avoids a mixed
        float32/float64 promotion (and the implied copy) in every op.
        """
        dtype = np.dtype(dtype)
        for name, value in vars(self).items():
            if isinstance(value, Tensor) and value.requires_grad:
                value.data = value.data.astype(dtype)
                value.grad = None
        for name in getattr(self, "_buffer_names", ()):
            setattr(self, name, getattr(self, name).astype(dtype))
        for _, child in self._children():
            child.to_dtype(dtype)
        self._state_version += 1
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


class Conv2d(Module):
    """2-D convolution layer with He-initialised weights."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng=None):
        super().__init__()
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            kaiming_normal((out_channels, in_channels, kernel_size, kernel_size),
                           fan_in, rng),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True) if bias else None
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    @property
    def receptive_radius(self) -> int:
        """One-sided spatial reach in input cells (``(k - 1) // 2``)."""
        return (self.kernel_size - 1) // 2

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride,
                      padding=self.padding)


class ConvTranspose2d(Module):
    """Transposed convolution (stride-2 up-convolution by default)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 2,
                 stride: int = 2, bias: bool = True, rng=None):
        super().__init__()
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Tensor(
            kaiming_normal((in_channels, out_channels, kernel_size, kernel_size),
                           fan_in, rng),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True) if bias else None
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return conv_transpose2d(x, self.weight, self.bias, stride=self.stride)


class Linear(Module):
    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        self.weight = Tensor(
            kaiming_normal((in_features, out_features), in_features, rng),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class BatchNorm2d(Module):
    """Batch normalisation over (B, H, W) per channel with running stats."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.gamma = Tensor(np.ones(num_features), requires_grad=True)
        self.beta = Tensor(np.zeros(num_features), requires_grad=True)
        self.eps = eps
        self.momentum = momentum
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects 4-D input, got {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self.running_mean[...] = (1 - m) * self.running_mean + m * mean.data.ravel()
            self.running_var[...] = (1 - m) * self.running_var + m * var.data.ravel()
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        xn = (x - mean) / ((var + self.eps) ** 0.5)
        return xn * self.gamma.reshape(1, -1, 1, 1) + self.beta.reshape(1, -1, 1, 1)


class GroupNorm(Module):
    """Group normalisation (Wu & He 2018): batch-size independent.

    Preferable to BatchNorm when the surrogate is evaluated one layout at
    a time inside an optimizer — statistics never depend on what else is
    in the batch, so train and inference behaviour coincide exactly.
    """

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"{num_channels} channels not divisible by {num_groups} groups"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.gamma = Tensor(np.ones(num_channels), requires_grad=True)
        self.beta = Tensor(np.zeros(num_channels), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"GroupNorm expects 4-D input, got {x.shape}")
        B, C, H, W = x.shape
        if C != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {C}")
        g = self.num_groups
        grouped = x.reshape(B, g, C // g, H, W)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        var = grouped.var(axis=(2, 3, 4), keepdims=True)
        normed = (grouped - mean) / ((var + self.eps) ** 0.5)
        out = normed.reshape(B, C, H, W)
        return out * self.gamma.reshape(1, -1, 1, 1) + self.beta.reshape(1, -1, 1, 1)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class MaxPool2d(Module):
    def __init__(self, kernel: int = 2):
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel)


class Upsample2x(Module):
    def forward(self, x: Tensor) -> Tensor:
        return upsample2x(x)


class Sequential(Module):
    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]
