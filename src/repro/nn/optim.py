"""First-order optimizers for network training (SGD with momentum, Adam),
learning-rate schedulers and gradient clipping."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm (useful for logging divergence).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad * p.grad))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm


class Optimizer:
    """Base optimizer over a list of parameter tensors."""

    def __init__(self, params: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v += g
            p.data = p.data - self.lr * v


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, params: list[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0 <= b1 < 1 and 0 <= b2 < 1):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """One Adam update, written with in-place numpy ops.

        Per parameter the loop reuses a persistent scratch buffer, so a
        step allocates nothing beyond the optional weight-decay blend —
        the textbook expression allocates five temporaries per parameter,
        which dominates small-batch ``train_unet`` steps.
        """
        self._t += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v, s in zip(self.params, self._m, self._v, self._scratch):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            np.multiply(m, b1, out=m)
            np.multiply(g, 1.0 - b1, out=s)
            m += s
            np.multiply(v, b2, out=v)
            np.multiply(g, g, out=s)
            s *= 1.0 - b2
            v += s
            np.divide(v, bc2, out=s)
            np.sqrt(s, out=s)
            s += self.eps
            np.divide(m, s, out=s)
            s *= self.lr / bc1
            p.data -= s


class LrScheduler:
    """Base learning-rate scheduler; call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)
        return self.optimizer.lr

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LrScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LrScheduler):
    """Cosine annealing from the base rate to ``min_lr`` over ``t_max``."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.min_lr = min_lr

    def _lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * progress)
        )
