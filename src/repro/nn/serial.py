"""Checkpointing: save/load module state dicts as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .modules import Module


def save_module(module: Module, path: str | Path) -> None:
    """Write all parameters and buffers of ``module`` to ``path``."""
    path = Path(path)
    state = module.state_dict()
    # npz keys cannot be empty; dots and colons are fine.
    np.savez(path, **state)


def load_module(module: Module, path: str | Path) -> Module:
    """Restore ``module`` in place from :func:`save_module` output."""
    path = Path(path)
    with np.load(path if path.suffix else path.with_suffix(".npz")) as archive:
        state = {k: archive[k] for k in archive.files}
    module.load_state_dict(state)
    return module
