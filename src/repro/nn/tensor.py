"""Reverse-mode automatic differentiation on numpy arrays.

This is the reproduction's stand-in for PyTorch's autograd: the paper's
central move is to express the CMP model as a network so that gradients
come from *backward propagation* (Eqs. 7-9) instead of thousands of
finite-difference simulator calls.  :class:`Tensor` records the compute
graph during the forward pass; :meth:`Tensor.backward` walks it once in
reverse topological order, giving the exact gradient at roughly the cost
of one extra forward pass.

Only the ops the CMP network needs are implemented, but they are
implemented generally (full numpy broadcasting, arbitrary shapes).
Convolution and pooling live in :mod:`repro.nn.conv`; additional
activations and reductions in :mod:`repro.nn.functional`.

Graph capture (:mod:`repro.nn.capture`)
---------------------------------------
While a recorder is installed via :func:`recording`, every op attaches a
``_replay`` closure to its output that recomputes ``out.data`` **in
place** (``out=``-style ufuncs) from the parents' live ``.data`` arrays
and refreshes any state the backward closure captured (masks, argmax
indices).  The retained eager graph then doubles as a preallocated
workspace arena: re-running the closures in topological order replays
the identical forward pass with zero graph construction and zero new
intermediate arrays, bitwise equal to eager because every closure uses
the same ufunc on the same operands.  Ops whose output is a numpy *view*
of a parent (reshape/transpose/basic slicing) need no closure at all —
in-place parent updates propagate through the view.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

Array = np.ndarray

#: Dtype every Tensor is materialised in.  float64 by default; switch to
#: float32 (via :func:`set_default_dtype` / :func:`compute_dtype`) to halve
#: the memory traffic of large batched forward/backward passes at the cost
#: of ~1e-6 relative accuracy.
_DEFAULT_DTYPE = np.dtype(np.float64)
_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def set_default_dtype(dtype) -> None:
    """Set the dtype new tensors are created with (float32 or float64)."""
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in _SUPPORTED_DTYPES:
        raise ValueError(f"unsupported compute dtype {dtype}; use float32 or float64")
    _DEFAULT_DTYPE = dtype


def get_default_dtype() -> np.dtype:
    """The dtype currently used for tensor construction."""
    return _DEFAULT_DTYPE


@contextmanager
def compute_dtype(dtype) -> Iterator[None]:
    """Scoped compute-precision switch, e.g. ``with compute_dtype("float32"):``.

    Every tensor built inside the block (including op intermediates) is
    stored in ``dtype``; the previous default is restored on exit.  Cast
    module parameters with :meth:`repro.nn.modules.Module.to_dtype` to
    avoid repeated float64 -> float32 round trips through mixed-dtype ops.
    """
    previous = _DEFAULT_DTYPE
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


# ----------------------------------------------------------------------
# graph capture hook (consumed by repro.nn.capture)
# ----------------------------------------------------------------------
_TRACE = threading.local()


def capture_recorder():
    """This thread's active graph recorder, or ``None`` in eager mode.

    Ops consult it to decide whether to attach ``_replay`` closures; the
    recorder itself only needs to expose ``note_workspace(nbytes)`` (for
    arena accounting of op-private scratch buffers).
    """
    return getattr(_TRACE, "recorder", None)


@contextmanager
def recording(recorder) -> Iterator[None]:
    """Install ``recorder`` as this thread's capture recorder."""
    previous = getattr(_TRACE, "recorder", None)
    _TRACE.recorder = recorder
    try:
        yield
    finally:
        _TRACE.recorder = previous


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _as_array(value) -> Array:
    arr = np.asarray(value, dtype=_DEFAULT_DTYPE)
    return arr


def _pow_value(base: Array, exponent: float, out: Array | None = None) -> Array:
    """Scalar power with explicit fast paths, shared by the eager forward
    and the capture replay so both are bitwise identical by construction
    (numpy's ``**`` fast-path set would otherwise be an implementation
    detail the replay could diverge from)."""
    if out is None:
        out = np.empty_like(base)
    if exponent == 2.0:
        np.square(base, out=out)
    elif exponent == 0.5:
        np.sqrt(base, out=out)
    elif exponent == 1.0:
        np.copyto(out, base)
    elif exponent == -1.0:
        np.reciprocal(base, out=out)
    else:
        np.power(base, exponent, out=out)
    return out


class Tensor:
    """A numpy array with an optional gradient and autodiff history.

    Attributes:
        data: the underlying numpy array (:func:`get_default_dtype` at
            construction time; ``float64`` unless the opt-in float32
            compute mode is active).
        grad: accumulated gradient (same shape as ``data``) after
            :meth:`backward`, else ``None``.
        requires_grad: whether this tensor participates in autodiff.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_replay", "_grad_buf", "__weakref__")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Callable[[Array], None] | None = None,
    ):
        self.data = _as_array(data)
        self.grad: Array | None = None
        self.requires_grad = bool(requires_grad) or any(
            p.requires_grad for p in _parents
        )
        self._parents = tuple(_parents)
        self._backward = _backward
        #: In-place forward recomputation installed under capture tracing
        #: (None in eager mode and for view/leaf nodes).
        self._replay: Callable[[], None] | None = None
        #: Gradient arena slot assigned by a captured plan; when set,
        #: :meth:`_accumulate` reuses it instead of allocating.
        self._grad_buf: Array | None = None

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> Array:
        """The raw array (shared, do not mutate)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # graph construction helpers
    # ------------------------------------------------------------------
    def _accumulate(self, grad: Array) -> None:
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            buf = self._grad_buf
            if buf is None:
                self.grad = grad.copy()
            else:
                np.copyto(buf, grad)
                self.grad = buf
        elif self.grad is self._grad_buf:
            np.add(self.grad, grad, out=self.grad)
        else:
            self.grad = self.grad + grad

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out = Tensor(self.data + other.data, _parents=(self, other))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        out._backward = backward
        if capture_recorder() is not None:
            out._replay = lambda: np.add(self.data, other.data, out=out.data)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, _parents=(self,))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        out._backward = backward
        if capture_recorder() is not None:
            out._replay = lambda: np.negative(self.data, out=out.data)
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out = Tensor(self.data * other.data, _parents=(self, other))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        out._backward = backward
        if capture_recorder() is not None:
            out._replay = lambda: np.multiply(self.data, other.data, out=out.data)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out = Tensor(self.data / other.data, _parents=(self, other))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        out._backward = backward
        if capture_recorder() is not None:
            out._replay = lambda: np.divide(self.data, other.data, out=out.data)
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        exponent = float(exponent)
        out = Tensor(_pow_value(self.data, exponent), _parents=(self,))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        out._backward = backward
        if capture_recorder() is not None:
            out._replay = lambda: _pow_value(self.data, exponent, out=out.data)
        return out

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        if self.ndim < 2 or other.ndim < 2:
            raise ValueError("matmul requires tensors with ndim >= 2")
        out = Tensor(self.data @ other.data, _parents=(self, other))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape)
                )
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape)
                )

        out._backward = backward
        if capture_recorder() is not None:
            out._replay = lambda: np.matmul(self.data, other.data, out=out.data)
        return out

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(self.data.reshape(shape), _parents=(self,))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        out._backward = backward
        if capture_recorder() is not None and not np.may_share_memory(
            out.data, self.data
        ):
            # Copy-reshape (non-contiguous source): refresh the C-order
            # copy in place.  View outputs need no closure at all.
            out._replay = lambda: np.copyto(
                out.data.reshape(self.data.shape), self.data
            )
        return out

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = Tensor(self.data.transpose(axes), _parents=(self,))
        inverse = np.argsort(axes)

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        out._backward = backward
        if capture_recorder() is not None and not np.may_share_memory(
            out.data, self.data
        ):
            out._replay = lambda: np.copyto(out.data, self.data.transpose(axes))
        return out

    def __getitem__(self, key) -> "Tensor":
        out = Tensor(self.data[key], _parents=(self,))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        out._backward = backward
        if capture_recorder() is not None and not np.may_share_memory(
            out.data, self.data
        ):
            out._replay = lambda: np.copyto(out.data, self.data[key])
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor(self.data.sum(axis=axis, keepdims=keepdims), _parents=(self,))

        def backward(grad: Array) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        out._backward = backward
        if capture_recorder() is not None:
            out._replay = lambda: np.sum(
                self.data, axis=axis, keepdims=keepdims, out=out.data
            )
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        centred = self - self.mean(axis=axis, keepdims=True)
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # elementwise nonlinearities (core set; more in functional.py)
    # ------------------------------------------------------------------
    def abs(self) -> "Tensor":
        out = Tensor(np.abs(self.data), _parents=(self,))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        out._backward = backward
        if capture_recorder() is not None:
            out._replay = lambda: np.absolute(self.data, out=out.data)
        return out

    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = Tensor(value, _parents=(self,))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self._accumulate(grad * value)

        out._backward = backward
        if capture_recorder() is not None:
            # `value` is out.data (same dtype => _as_array kept the array),
            # so the in-place refresh also updates the backward state.
            out._replay = lambda: np.exp(self.data, out=out.data)
        return out

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data), _parents=(self,))

        def backward(grad: Array) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        out._backward = backward
        if capture_recorder() is not None:
            out._replay = lambda: np.log(self.data, out=out.data)
        return out

    def sqrt(self) -> "Tensor":
        return self**0.5

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Array | None = None,
                 retain_graph: bool = False) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Args:
            grad: upstream gradient; defaults to ones (i.e. ``d self /
                d self = 1``), the usual choice for scalar losses.
            retain_graph: keep ``_parents``/``_backward`` references after
                the sweep.  By default they are dropped so a long-lived
                result tensor no longer pins every intermediate of its
                forward graph in memory; pass True to backpropagate
                through the same graph again (graph capture does).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        topo = topo_sort(self)

        seed = np.ones_like(self.data) if grad is None else _as_array(grad)
        if seed.shape != self.data.shape:
            raise ValueError(f"grad shape {seed.shape} != tensor shape {self.data.shape}")
        self._accumulate(seed)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
        if not retain_graph:
            for node in topo:
                node._backward = None
                node._parents = ()


def topo_sort(root: Tensor) -> list[Tensor]:
    """Topological order of ``root``'s gradient-requiring ancestry.

    Exactly the order :meth:`Tensor.backward` sweeps (parents before
    children; the reverse sweep visits children first).  Shared with the
    capture executor so a replayed backward pass walks the identical
    node sequence — and therefore accumulates gradients in the identical
    floating-point order — as the eager pass it traced.
    """
    topo: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited and parent.requires_grad:
                stack.append((parent, False))
    return topo


def parameters_of(tensors: Iterable[Tensor]) -> list[Tensor]:
    """Filter an iterable down to tensors that require gradients."""
    return [t for t in tensors if t.requires_grad]
