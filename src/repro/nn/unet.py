"""UNet (Ronneberger et al. [20]) — the paper's CMP surrogate backbone.

A down-sampling path captures multi-window context (the pad's
planarization neighbourhood), the up-sampling path restores per-window
resolution, and skip connections keep local pattern detail — the same
encoder/decoder sketch as the paper's Fig. 4.

Input sizes need not be multiples of ``2**depth``; the forward pass
zero-pads to the next multiple and crops the output back (the paper
instead fixes the input at 100x100 windows and tiles smaller layouts —
:func:`repro.layout.assembly.tile_to_size` provides that behaviour when
exact parity is wanted).
"""

from __future__ import annotations

import numpy as np

from ..config import rng_from_seed
from . import functional as F
from .conv import max_pool2d, upsample2x
from .modules import BatchNorm2d, Conv2d, Module, ReLU, Sequential
from .tensor import Tensor


class DoubleConv(Module):
    """(conv3x3 -> BN -> ReLU) x 2, the standard UNet block."""

    def __init__(self, in_channels: int, out_channels: int, rng=None,
                 batch_norm: bool = True):
        super().__init__()
        def block(cin: int, cout: int) -> list[Module]:
            layers: list[Module] = [Conv2d(cin, cout, 3, padding=1, rng=rng)]
            if batch_norm:
                layers.append(BatchNorm2d(cout))
            layers.append(ReLU())
            return layers

        self.body = Sequential(*block(in_channels, out_channels),
                               *block(out_channels, out_channels))

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)

    def receptive_radius(self) -> int:
        """Summed one-sided reach of the block's convolutions (in cells)."""
        return sum(layer.receptive_radius for layer in self.body.layers
                   if isinstance(layer, Conv2d))


class UNet(Module):
    """Configurable-depth UNet mapping layout parameters to a height map.

    Args:
        in_channels: number of layout parameter planes (matrix **L**).
        out_channels: output planes (1: the height profile ``H_n``).
        base_channels: channels of the first encoder block; each deeper
            level doubles it.
        depth: number of down/up-sampling stages.
        rng: seed or generator for weight init (deterministic if given).
        batch_norm: include BatchNorm2d in conv blocks.
        up_mode: decoder upsampling — ``"upsample"`` (nearest-neighbour +
            3x3 conv, artefact-free default) or ``"transpose"`` (stride-2
            transposed convolution, the original Ronneberger
            up-convolution).
    """

    def __init__(self, in_channels: int, out_channels: int = 1,
                 base_channels: int = 8, depth: int = 2, rng=None,
                 batch_norm: bool = True, up_mode: str = "upsample"):
        super().__init__()
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if up_mode not in ("upsample", "transpose"):
            raise ValueError(f"unknown up_mode {up_mode!r}")
        rng = rng_from_seed(rng)
        self.depth = depth
        self.up_mode = up_mode

        chans = [base_channels * (2**i) for i in range(depth + 1)]
        self.encoders = [
            DoubleConv(in_channels if i == 0 else chans[i - 1], chans[i],
                       rng=rng, batch_norm=batch_norm)
            for i in range(depth)
        ]
        self.bottleneck = DoubleConv(chans[depth - 1], chans[depth],
                                     rng=rng, batch_norm=batch_norm)
        # Decoder: upsample, reduce channels, concat skip, double conv.
        if up_mode == "transpose":
            from .modules import ConvTranspose2d
            self.up_convs = [
                ConvTranspose2d(chans[i + 1], chans[i], kernel_size=2,
                                stride=2, rng=rng)
                for i in reversed(range(depth))
            ]
        else:
            self.up_convs = [
                Conv2d(chans[i + 1], chans[i], 3, padding=1, rng=rng)
                for i in reversed(range(depth))
            ]
        self.decoders = [
            DoubleConv(2 * chans[i], chans[i], rng=rng, batch_norm=batch_norm)
            for i in reversed(range(depth))
        ]
        self.head = Conv2d(chans[0], out_channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"UNet expects (B, C, H, W), got {x.shape}")
        B, C, H, W = x.shape
        multiple = 2**self.depth
        pad_h = (-H) % multiple
        pad_w = (-W) % multiple
        if pad_h or pad_w:
            x = F.pad2d(x, (0, pad_h, 0, pad_w))

        skips = []
        for encoder in self.encoders:
            x = encoder(x)
            skips.append(x)
            x = max_pool2d(x, 2)
        x = self.bottleneck(x)
        for up_conv, decoder, skip in zip(self.up_convs, self.decoders,
                                          reversed(skips)):
            if self.up_mode == "transpose":
                x = up_conv(x)
            else:
                x = up_conv(upsample2x(x))
            x = decoder(F.concat([skip, x], axis=1))
        x = self.head(x)

        if pad_h or pad_w:
            x = x[:, :, :H, :W]
        return x

    def receptive_field(self) -> int:
        """Approximate receptive field in windows (for locality checks)."""
        # Each DoubleConv adds 4 to the field at its scale; scales stack.
        field = 4
        for i in range(self.depth):
            field = field * 2 + 8
        return field

    @property
    def alignment(self) -> int:
        """Tile offsets must be multiples of this (the pooling grid pitch)."""
        return 2 ** self.depth

    def receptive_field_radius(self) -> int:
        """Exact one-sided receptive-field radius in input windows.

        Computed from the per-block kernel metadata with the standard
        span recursion ``R = 1 + sum (k_l - 1) * jump_l`` (jump = product
        of strides before layer ``l``), then halved and rounded up to
        absorb the half-cell asymmetry of the 2x pool/upsample pair.
        Overlap-tiled inference with a halo of at least this many windows
        (rounded up to :attr:`alignment`) reproduces the monolithic
        forward exactly — see
        :meth:`repro.surrogate.network.CmpNeuralNetwork.predict_heights_tiled`.
        """
        span = 0  # R - 1
        jump = 1
        for encoder in self.encoders:
            span += 2 * jump * encoder.receptive_radius()
            span += jump  # max-pool, kernel 2
            jump *= 2
        span += 2 * jump * self.bottleneck.receptive_radius()
        for up_conv, decoder in zip(self.up_convs, self.decoders):
            jump //= 2
            if self.up_mode == "upsample":
                span += 2 * jump * up_conv.receptive_radius
            # transpose mode: kernel == stride == 2 maps each output to
            # exactly one input, adding no reach.
            span += 2 * jump * decoder.receptive_radius()
        return (span + 1) // 2
