"""Unified observability for the NeurFill reproduction.

``repro.obs`` is a dependency-free tracing / metrics / profiling layer
shared by every subsystem:

* :mod:`repro.obs.trace` — monotonic-clock span tracer with per-thread
  nested contexts, bounded record storage, JSONL export
  (``repro-trace/1`` schema) and validation.
* :mod:`repro.obs.metrics` — bounded counter / histogram / latency
  registry (the fixed extraction of the old ``repro.serve.stats``
  internals; the serve stats endpoint is now one view of this data).
* :mod:`repro.obs.summary` — the human-readable aggregation printed by
  ``repro trace <cmd>`` and ``repro --profile <cmd>``.

Instrumented call-sites use the module-level helpers::

    from repro.obs import trace

    with trace.span("cmp.simulate", cat="cmp", layers=3):
        ...
    trace.event("train.epoch", cat="train", epoch=5, loss=0.01)

When no tracer is active (the default) these return shared no-op
singletons — one global load and ``None`` check, no allocation — so
instrumentation is zero-cost and results are bitwise identical whether
or not the calls are present.  Enable tracing for a scope with
:func:`repro.obs.trace.capture`, or process-wide with
:func:`repro.obs.trace.activate`.
"""

from __future__ import annotations

from . import metrics, summary, trace
from .metrics import Histogram, LatencyTracker, MetricsRegistry
from .summary import format_summary
from .trace import (
    TRACE_SCHEMA,
    Tracer,
    capture,
    validate_trace_lines,
    validate_trace_path,
)

__all__ = [
    "Histogram",
    "LatencyTracker",
    "MetricsRegistry",
    "TRACE_SCHEMA",
    "Tracer",
    "capture",
    "format_summary",
    "metrics",
    "summary",
    "trace",
    "validate_trace_lines",
    "validate_trace_path",
]
