"""Bounded counter / histogram / latency registry.

Extracted from ``repro.serve.stats`` (PR 3) with the two correctness
bugs of that version fixed, so every subsystem shares one implementation
and one set of semantics:

* **Windowed mean** — the original ``LatencyTracker.snapshot`` reported
  a *lifetime* mean next to *sliding-window* percentiles, so a
  long-lived server showed internally inconsistent latency numbers
  (e.g. a p99 far below the mean after a slow warm-up).  ``mean_ms`` is
  now computed over exactly the same sample window as p50/p95/p99; the
  lifetime sample count survives as ``count_total``.
* **Percentile index** — the original nearest-rank index used Python's
  ``round()``, which applies banker's rounding (``round(9.5) == 10``
  but ``round(8.5) == 8``), making adjacent quantiles grab
  inconsistent ranks.  The tracker now uses the textbook nearest-rank
  formula ``ceil(q / 100 * n)`` (1-indexed), which involves no rounding
  ties at all: for 100 samples, p50 is the 50th smallest, p99 the 99th.

Everything here is O(1) per event, bounded in memory, and thread-safe —
the registry takes one lock per operation, and trackers created through
a registry rely on that lock (standalone use is single-thread safe by
virtue of CPython atomicity for the deque append; guard externally for
concurrent writers).
"""

from __future__ import annotations

import math
import threading
from collections import Counter as _Counter
from collections import deque

#: Default sliding-window length for latency percentiles.
DEFAULT_WINDOW = 2048

#: Default cap on distinct metric names per registry.
DEFAULT_MAX_METRICS = 1024

#: Default cap on distinct histogram keys.
DEFAULT_MAX_BUCKETS = 512

#: Catch-all histogram bucket once ``max_buckets`` distinct keys exist.
OVERFLOW_BUCKET = "overflow"


def nearest_rank_index(q: float, n: int) -> int:
    """0-based nearest-rank index of the ``q``-th percentile in ``n``
    sorted samples: ``ceil(q / 100 * n) - 1``, clamped to the window.

    Free of banker's rounding (no ``round()``), monotone in ``q``, and
    exact on round counts: ``q=50, n=100`` -> index 49 (the 50th
    smallest sample).
    """
    if n <= 0:
        raise ValueError("need at least one sample")
    return min(n - 1, max(0, math.ceil(q / 100.0 * n) - 1))


class LatencyTracker:
    """Sliding-window latency statistics for one pipeline stage.

    ``snapshot`` reports, in milliseconds, the mean and the p50/p95/p99
    over the *same* window of the most recent ``window`` samples, plus
    ``count`` (samples currently in the window) and ``count_total``
    (lifetime samples — the only unbounded quantity, an integer).
    """

    __slots__ = ("_samples", "_count_total")

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError("window must be positive")
        self._samples: deque[float] = deque(maxlen=window)
        self._count_total = 0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self._count_total += 1

    def snapshot(self) -> dict:
        """Windowed mean + percentiles (ms); lifetime ``count_total``."""
        out: dict = {"count": len(self._samples),
                     "count_total": self._count_total}
        if self._samples:
            ordered = sorted(self._samples)
            n = len(ordered)
            out["mean_ms"] = round(sum(ordered) / n * 1e3, 3)
            for q in (50, 95, 99):
                idx = nearest_rank_index(q, n)
                out[f"p{q}_ms"] = round(ordered[idx] * 1e3, 3)
        return out


class Histogram:
    """Bounded counting histogram with explicit, stable serialisation.

    Keys are recorded as given (typically integers, e.g. micro-batch
    sizes).  ``snapshot`` *always* returns string keys sorted by their
    numeric value, so the JSON any client receives is deterministic:
    ``{"2": 10, "10": 3}`` — never a mix of int and str keys, never
    lexicographic ``"10" < "2"`` surprises.  Once ``max_buckets``
    distinct keys exist, further new keys aggregate under
    ``"overflow"`` to bound memory.
    """

    __slots__ = ("_buckets", "_max_buckets")

    def __init__(self, max_buckets: int = DEFAULT_MAX_BUCKETS):
        if max_buckets < 1:
            raise ValueError("max_buckets must be positive")
        self._buckets: _Counter = _Counter()
        self._max_buckets = max_buckets

    def record(self, key, n: int = 1) -> None:
        if key not in self._buckets and len(self._buckets) >= self._max_buckets:
            key = OVERFLOW_BUCKET
        self._buckets[key] += n

    def snapshot(self) -> dict:
        def sort_key(item):
            key = item[0]
            if isinstance(key, bool):  # bool is an int subclass; keep last
                return (1, str(key))
            if isinstance(key, (int, float)):
                return (0, key)
            return (1, str(key))

        return {str(key): count
                for key, count in sorted(self._buckets.items(), key=sort_key)}


class MetricsRegistry:
    """Thread-safe, bounded get-or-create store of named metrics.

    One registry instance backs one subsystem view (the serve stats
    endpoint owns one; ``repro.obs`` keeps a global one for profiling).
    The name space is capped at ``max_metrics`` distinct names; events
    against names beyond the cap are counted in the ``dropped_metrics``
    counter instead of growing memory forever.
    """

    def __init__(self, window: int = DEFAULT_WINDOW,
                 max_metrics: int = DEFAULT_MAX_METRICS):
        self._lock = threading.Lock()
        self._window = window
        self._max_metrics = max_metrics
        self._counters: _Counter = _Counter()
        self._histograms: dict[str, Histogram] = {}
        self._latencies: dict[str, LatencyTracker] = {}
        self._gauges: dict[str, float] = {}
        self._dropped = 0

    def _room_for(self, name: str, table: dict) -> bool:
        """Lock held.  True if ``name`` exists or may be created."""
        if name in table:
            return True
        total = (len(self._counters) + len(self._histograms)
                 + len(self._latencies) + len(self._gauges))
        if total >= self._max_metrics:
            self._dropped += 1
            return False
        return True

    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            if self._room_for(name, self._counters):
                self._counters[name] += n

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time quantity (queue
        depth, per-shard outstanding jobs, ...).  Last write wins —
        gauges report state, not events, so there is no windowing."""
        with self._lock:
            if self._room_for(name, self._gauges):
                self._gauges[name] = value

    def observe(self, name: str, key, n: int = 1) -> None:
        """Record ``key`` into the histogram called ``name``."""
        with self._lock:
            if not self._room_for(name, self._histograms):
                return
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.record(key, n)

    def record_latency(self, name: str, seconds: float) -> None:
        with self._lock:
            tracker = self._latencies.get(name)
            if tracker is None:
                if not self._room_for(name, self._latencies):
                    return
                tracker = self._latencies[name] = LatencyTracker(self._window)
            tracker.record(seconds)

    def ensure_latency(self, name: str) -> None:
        """Pre-create a latency tracker so it appears in snapshots even
        before the first sample (the serve stats contract)."""
        with self._lock:
            if name not in self._latencies \
                    and self._room_for(name, self._latencies):
                self._latencies[name] = LatencyTracker(self._window)

    def snapshot(self) -> dict:
        with self._lock:
            out = {
                "counters": dict(self._counters),
                "histograms": {name: histogram.snapshot()
                               for name, histogram in self._histograms.items()},
                "latency": {name: tracker.snapshot()
                            for name, tracker in self._latencies.items()},
            }
            if self._gauges:
                out["gauges"] = dict(self._gauges)
            if self._dropped:
                out["dropped_metrics"] = self._dropped
            return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self._latencies.clear()
            self._gauges.clear()
            self._dropped = 0


# ----------------------------------------------------------------------
# Global registry (profiling hooks record here when obs is enabled)
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global metrics registry used by profiling hooks."""
    return _registry


def reset() -> None:
    """Clear the global registry (test isolation)."""
    _registry.reset()
