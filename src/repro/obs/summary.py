"""Human-readable aggregation of a trace: the ``repro trace`` summary.

Aggregates finished spans by name (count, total/mean/max duration) and
folds in the global metrics registry, producing the table ``repro trace
<cmd>`` and ``repro --profile <cmd>`` print to stderr.  The JSONL file
holds the raw records; this is the at-a-glance view.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .trace import Tracer


def aggregate_spans(tracer: Tracer) -> list[dict]:
    """Per-name span statistics, sorted by total duration descending."""
    stats: dict[str, dict] = {}
    for record in tracer.records(kind="span"):
        entry = stats.get(record["name"])
        if entry is None:
            entry = stats[record["name"]] = {
                "name": record["name"], "cat": record["cat"],
                "count": 0, "total_us": 0, "max_us": 0,
            }
        entry["count"] += 1
        entry["total_us"] += record["dur_us"]
        entry["max_us"] = max(entry["max_us"], record["dur_us"])
    rows = sorted(stats.values(), key=lambda e: -e["total_us"])
    for row in rows:
        row["mean_us"] = row["total_us"] // row["count"]
    return rows


def format_summary(tracer: Tracer,
                   registry: MetricsRegistry | None = None) -> str:
    """The human summary: span table + event counts + counters."""
    lines = ["== repro trace summary =="]
    rows = aggregate_spans(tracer)
    if rows:
        lines.append(f"{'span':<40} {'count':>7} {'total_ms':>10} "
                     f"{'mean_ms':>10} {'max_ms':>10}")
        for row in rows:
            lines.append(
                f"{row['name']:<40} {row['count']:>7} "
                f"{row['total_us'] / 1e3:>10.2f} "
                f"{row['mean_us'] / 1e3:>10.3f} "
                f"{row['max_us'] / 1e3:>10.3f}")
    else:
        lines.append("(no spans recorded)")

    events: dict[str, int] = {}
    for record in tracer.records(kind="event"):
        events[record["name"]] = events.get(record["name"], 0) + 1
    if events:
        lines.append("")
        lines.append("events: " + "  ".join(
            f"{name}={count}" for name, count in sorted(events.items())))

    if tracer.dropped:
        lines.append(f"(dropped {tracer.dropped} records past the "
                     f"{tracer.max_records}-record cap)")

    if registry is not None:
        snapshot = registry.snapshot()
        if snapshot["counters"]:
            lines.append("")
            lines.append("counters: " + "  ".join(
                f"{name}={value}"
                for name, value in sorted(snapshot["counters"].items())))
        for name, tracker in sorted(snapshot["latency"].items()):
            if tracker.get("count"):
                lines.append(
                    f"latency {name}: n={tracker['count']} "
                    f"mean={tracker['mean_ms']}ms p50={tracker['p50_ms']}ms "
                    f"p95={tracker['p95_ms']}ms p99={tracker['p99_ms']}ms")
    return "\n".join(lines)
