"""Monotonic-clock span tracer with nested contexts and JSONL export.

The tracer is the event backbone of :mod:`repro.obs`: instrumented code
opens *spans* (named, timed, attributed regions that nest per thread)
and emits *events* (instant records).  Everything is measured with
``time.perf_counter()`` — the monotonic high-resolution clock — never
wall-clock time, so spans are immune to NTP steps and DST.

Design constraints (see DESIGN.md "Observability"):

* **Zero-cost when disabled.**  The module keeps one global
  ``_active`` tracer reference.  When it is ``None`` (the default),
  :func:`span` returns a shared no-op singleton and :func:`event`
  returns immediately — one attribute load and one ``is None`` check on
  the hot path, no allocation, no arithmetic.  Instrumentation therefore
  cannot perturb numerical results: enabled or not, the traced code runs
  the identical FLOPs in the identical order.
* **Thread-safe.**  Serve workers and the micro-batcher record
  concurrently.  Span nesting state lives in ``threading.local`` (each
  thread has its own open-span stack); the finished-record list and the
  id counter are guarded by one lock held only for an append.
* **Bounded.**  A long-lived server must not accumulate unbounded
  state: finished records are capped (``max_records``); overflow is
  dropped and counted, and the drop count lands in the exported
  metadata so a truncated trace is self-describing.

JSONL schema (``repro-trace/1``) — one object per line:

* line 1 — ``{"type": "meta", "schema": "repro-trace/1",
  "clock": "perf_counter", "version": <repro version>,
  "spans": N, "events": M, "dropped": D}``
* spans — ``{"type": "span", "name": str, "cat": str, "id": int,
  "parent": int | null, "thread": int, "t0_us": int, "dur_us": int,
  "attrs": {...}}``
* events — same minus ``dur_us``.

``t0_us`` is microseconds since the tracer was created (a relative
monotonic origin — traces from different processes are not comparable).
``parent`` points at the enclosing span's ``id``; because spans are
recorded on *exit*, a parent's record appears after its children.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Iterator

TRACE_SCHEMA = "repro-trace/1"

#: Default cap on retained finished records (spans + events).
DEFAULT_MAX_RECORDS = 100_000


class _NoopSpan:
    """Shared do-nothing span returned whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """One open region; records itself to the tracer on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "attrs", "span_id", "parent_id",
                 "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id: int | None = None
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        dur = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer._record(
            "span", self.name, self.cat, self.span_id, self.parent_id,
            self._t0, dur, self.attrs,
        )
        return False


class Tracer:
    """Collects finished spans and events, thread-safely and bounded."""

    def __init__(self, max_records: int = DEFAULT_MAX_RECORDS):
        if max_records < 1:
            raise ValueError("max_records must be positive")
        self.max_records = max_records
        self._origin = time.perf_counter()
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._dropped = 0
        self._ids = 0
        self._local = threading.local()

    # -- internal plumbing -------------------------------------------------
    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._ids += 1
            return self._ids

    def _record(self, kind: str, name: str, cat: str, span_id: int,
                parent_id: int | None, t0: float, dur: float | None,
                attrs: dict) -> None:
        record = {
            "type": kind,
            "name": name,
            "cat": cat,
            "id": span_id,
            "parent": parent_id,
            "thread": threading.get_ident(),
            "t0_us": int((t0 - self._origin) * 1e6),
        }
        if dur is not None:
            record["dur_us"] = int(dur * 1e6)
        if attrs:
            record["attrs"] = attrs
        with self._lock:
            if len(self._records) >= self.max_records:
                self._dropped += 1
            else:
                self._records.append(record)

    # -- recording API -----------------------------------------------------
    def span(self, name: str, cat: str = "app", **attrs) -> Span:
        """An open span context manager (records itself on exit)."""
        return Span(self, name, cat, attrs)

    def event(self, name: str, cat: str = "app", **attrs) -> None:
        """An instant record, parented to the enclosing open span."""
        stack = self._stack()
        self._record("event", name, cat, self._next_id(),
                     stack[-1] if stack else None,
                     time.perf_counter(), None, attrs)

    def record_span(self, name: str, cat: str, dur_s: float,
                    t0_s: float | None = None, **attrs) -> None:
        """Record a pre-measured span (e.g. an accumulated stage total)."""
        stack = self._stack()
        self._record("span", name, cat, self._next_id(),
                     stack[-1] if stack else None,
                     time.perf_counter() if t0_s is None else t0_s,
                     dur_s, attrs)

    # -- inspection / export -----------------------------------------------
    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def records(self, kind: str | None = None) -> list[dict]:
        """A snapshot copy of the finished records, in completion order."""
        with self._lock:
            records = list(self._records)
        if kind is not None:
            records = [r for r in records if r["type"] == kind]
        return records

    def meta(self) -> dict:
        from .. import __version__
        with self._lock:
            spans = sum(1 for r in self._records if r["type"] == "span")
            events = len(self._records) - spans
            dropped = self._dropped
        return {
            "type": "meta",
            "schema": TRACE_SCHEMA,
            "clock": "perf_counter",
            "version": __version__,
            "spans": spans,
            "events": events,
            "dropped": dropped,
        }

    def iter_jsonl(self) -> Iterator[str]:
        yield json.dumps(self.meta(), sort_keys=True)
        for record in self.records():
            yield json.dumps(record, sort_keys=True, default=_json_default)

    def write_jsonl(self, path) -> None:
        """Export the trace: one meta line, then one line per record."""
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.iter_jsonl():
                fh.write(line + "\n")


def _json_default(value):
    """Numpy scalars appear in attrs; coerce instead of crashing."""
    import numpy as np

    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


# ----------------------------------------------------------------------
# Global activation (the module-level no-op fast path)
# ----------------------------------------------------------------------
_active: Tracer | None = None
_activation_lock = threading.Lock()


def active() -> Tracer | None:
    """The currently installed tracer, or ``None`` when disabled."""
    return _active


def is_active() -> bool:
    return _active is not None


def activate(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the global tracer."""
    global _active
    with _activation_lock:
        _active = tracer if tracer is not None else Tracer()
        return _active


def deactivate() -> Tracer | None:
    """Remove the global tracer; returns the one that was active."""
    global _active
    with _activation_lock:
        tracer, _active = _active, None
        return tracer


class _Capture:
    """Context manager installing a tracer and restoring the previous one."""

    def __init__(self, tracer: Tracer | None, path):
        self._tracer = tracer if tracer is not None else Tracer()
        self._path = path
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        global _active
        with _activation_lock:
            self._previous = _active
            _active = self._tracer
        return self._tracer

    def __exit__(self, *exc) -> bool:
        global _active
        with _activation_lock:
            _active = self._previous
        if self._path is not None:
            self._tracer.write_jsonl(self._path)
        return False


def capture(path=None, tracer: Tracer | None = None) -> _Capture:
    """``with capture("t.jsonl") as tracer:`` — scoped tracing.

    Restores whatever tracer (or ``None``) was active before, so nested
    captures and test isolation behave; writes the JSONL on exit when a
    path is given.
    """
    return _Capture(tracer, path)


# ----------------------------------------------------------------------
# Hot-path helpers: the only calls instrumented code should make
# ----------------------------------------------------------------------
def span(name: str, cat: str = "app", **attrs):
    """A span against the global tracer, or the shared no-op when off."""
    tracer = _active
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, cat, **attrs)


def event(name: str, cat: str = "app", **attrs) -> None:
    """An event against the global tracer; no-op when tracing is off."""
    tracer = _active
    if tracer is not None:
        tracer.event(name, cat, **attrs)


# ----------------------------------------------------------------------
# Stage accumulation: many tiny measurements, few records
# ----------------------------------------------------------------------
class _NoopStages:
    """Disabled-path stage timer: every method is a cheap no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopStages":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def measure(self, stage: str) -> _NoopSpan:
        return NOOP_SPAN

    def set(self, **attrs) -> "_NoopStages":
        return self


NOOP_STAGES = _NoopStages()


class _StageMeasure:
    """Reusable context accumulating one stage's total duration."""

    __slots__ = ("totals", "counts", "stage", "_t0")

    def __init__(self, totals: dict, counts: dict, stage: str):
        self.totals = totals
        self.counts = counts
        self.stage = stage
        self._t0 = 0.0

    def __enter__(self) -> "_StageMeasure":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.totals[self.stage] += time.perf_counter() - self._t0
        self.counts[self.stage] += 1
        return False


class StageTimer:
    """Accumulates named sub-stage durations inside one parent span.

    Tight loops (the CMP polish loop runs its three stages hundreds of
    times) would flood the trace with per-iteration spans.  A
    ``StageTimer`` instead accumulates per-stage totals and, when the
    parent scope closes, records the parent span plus **one** child span
    per stage carrying the accumulated duration and call count.
    """

    def __init__(self, tracer: Tracer, name: str, cat: str, attrs: dict):
        self._tracer = tracer
        self._span = Span(tracer, name, cat, attrs)
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._measures: dict[str, _StageMeasure] = {}

    def __enter__(self) -> "StageTimer":
        self._span.__enter__()
        return self

    def __exit__(self, *exc) -> bool:
        for stage, total in self._totals.items():
            self._tracer._record(
                "span", f"{self._span.name}.{stage}", self._span.cat,
                self._tracer._next_id(), self._span.span_id,
                time.perf_counter(), total,
                {"calls": self._counts[stage]},
            )
        return self._span.__exit__(*exc)

    def measure(self, stage: str) -> _StageMeasure:
        measure = self._measures.get(stage)
        if measure is None:
            self._totals[stage] = 0.0
            self._counts[stage] = 0
            measure = _StageMeasure(self._totals, self._counts, stage)
            self._measures[stage] = measure
        return measure

    def set(self, **attrs) -> "StageTimer":
        self._span.set(**attrs)
        return self


def stages(name: str, cat: str = "app", **attrs):
    """A :class:`StageTimer` against the global tracer, or the no-op."""
    tracer = _active
    if tracer is None:
        return NOOP_STAGES
    return StageTimer(tracer, name, cat, attrs)


# ----------------------------------------------------------------------
# Schema validation (used by tests and the CI trace smoke step)
# ----------------------------------------------------------------------
_REQUIRED_SPAN_KEYS = ("type", "name", "cat", "id", "parent", "thread",
                       "t0_us", "dur_us")
_REQUIRED_EVENT_KEYS = ("type", "name", "cat", "id", "parent", "thread",
                        "t0_us")


def validate_trace_lines(lines) -> list[dict]:
    """Validate JSONL trace lines against the ``repro-trace/1`` schema.

    Returns the parsed records (meta line first).  Raises ``ValueError``
    with a line-numbered message on the first violation.
    """
    records: list[dict] = []
    span_ids: set[int] = set()
    parents: list[tuple[int, int]] = []
    for number, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            record = json.loads(raw)
        except ValueError as exc:
            raise ValueError(f"trace line {number}: not valid JSON: {exc}")
        if not isinstance(record, dict):
            raise ValueError(f"trace line {number}: expected an object")
        if number == 1:
            if record.get("type") != "meta":
                raise ValueError("trace line 1: expected the meta record")
            if record.get("schema") != TRACE_SCHEMA:
                raise ValueError(
                    f"trace line 1: schema {record.get('schema')!r} != "
                    f"{TRACE_SCHEMA!r}")
            records.append(record)
            continue
        kind = record.get("type")
        if kind == "span":
            required = _REQUIRED_SPAN_KEYS
        elif kind == "event":
            required = _REQUIRED_EVENT_KEYS
        else:
            raise ValueError(f"trace line {number}: unknown type {kind!r}")
        for key in required:
            if key not in record:
                raise ValueError(
                    f"trace line {number}: {kind} record missing {key!r}")
        for key in ("id", "thread", "t0_us"):
            if not isinstance(record[key], int):
                raise ValueError(
                    f"trace line {number}: {key} must be an integer")
        if kind == "span":
            if not isinstance(record["dur_us"], int) or record["dur_us"] < 0:
                raise ValueError(
                    f"trace line {number}: dur_us must be a non-negative "
                    f"integer")
            span_ids.add(record["id"])
        if record["parent"] is not None:
            if not isinstance(record["parent"], int):
                raise ValueError(
                    f"trace line {number}: parent must be an integer or null")
            parents.append((number, record["parent"]))
        if not isinstance(record["name"], str) or not record["name"]:
            raise ValueError(
                f"trace line {number}: name must be a non-empty string")
        if not isinstance(record.get("cat"), str):
            raise ValueError(f"trace line {number}: cat must be a string")
        records.append(record)
    if not records:
        raise ValueError("empty trace: missing meta line")
    for number, parent in parents:
        if parent not in span_ids:
            raise ValueError(
                f"trace line {number}: parent {parent} is not a span id")
    return records


def validate_trace_path(path) -> list[dict]:
    """Validate a JSONL trace file; see :func:`validate_trace_lines`."""
    with open(path, "r", encoding="utf-8") as fh:
        return validate_trace_lines(fh)
