"""Optimization substrate: box QP, SQP, NMMSO, multi-start helpers."""

from .boxqp import BoxQpResult, solve_box_qp
from .linesearch import projected_armijo, projected_armijo_steps
from .multistart import (
    best_result,
    random_starting_points,
    random_starting_points_stacked,
    refine_starting_points,
    refine_starting_points_batched,
)
from .nmmso import LocalOptimum, Nmmso, NmmsoResult
from .sqp import SqpOptimizer, SqpResult, projected_gradient_norm

__all__ = [
    "BoxQpResult",
    "LocalOptimum",
    "Nmmso",
    "NmmsoResult",
    "SqpOptimizer",
    "SqpResult",
    "best_result",
    "projected_armijo",
    "projected_armijo_steps",
    "projected_gradient_norm",
    "random_starting_points",
    "random_starting_points_stacked",
    "refine_starting_points",
    "refine_starting_points_batched",
    "solve_box_qp",
]
