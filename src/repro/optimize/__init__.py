"""Optimization substrate: box QP, SQP, NMMSO, multi-start helpers."""

from .boxqp import BoxQpResult, solve_box_qp
from .linesearch import projected_armijo
from .multistart import best_result, random_starting_points, refine_starting_points
from .nmmso import LocalOptimum, Nmmso, NmmsoResult
from .sqp import SqpOptimizer, SqpResult, projected_gradient_norm

__all__ = [
    "BoxQpResult",
    "LocalOptimum",
    "Nmmso",
    "NmmsoResult",
    "SqpOptimizer",
    "SqpResult",
    "best_result",
    "projected_armijo",
    "projected_gradient_norm",
    "random_starting_points",
    "refine_starting_points",
    "solve_box_qp",
]
