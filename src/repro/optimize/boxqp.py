"""Dense box-constrained quadratic programming (the SQP subproblem).

Solves

.. math:: \\min_d \\; \\tfrac12 d^T B d + g^T d
          \\quad \\text{s.t.} \\quad lo \\le d \\le hi

with a primal active-set method: repeatedly solve the equality-constrained
reduced system on the free variables, take the longest feasible step along
the resulting direction, and release bound constraints whose KKT
multipliers have the wrong sign.  Intended for the *dense, small* QP
subproblems (tests, toy layouts); the production SQP path uses a
limited-memory formulation instead (see :mod:`repro.optimize.sqp`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BoxQpResult:
    x: np.ndarray
    value: float
    iterations: int
    converged: bool


def _objective(B: np.ndarray, g: np.ndarray, d: np.ndarray) -> float:
    return float(0.5 * d @ B @ d + g @ d)


def solve_box_qp(
    B: np.ndarray,
    g: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    x0: np.ndarray | None = None,
    max_iter: int = 200,
    tol: float = 1e-10,
) -> BoxQpResult:
    """Minimise a convex box-constrained quadratic.

    Args:
        B: symmetric positive-(semi)definite ``(n, n)`` Hessian.  A small
            diagonal shift is applied if the reduced systems are singular.
        g: linear term, shape ``(n,)``.
        lower / upper: elementwise bounds (must satisfy ``lower <= upper``).
        x0: feasible start (clipped if necessary); default is the clipped
            unconstrained stationary point heuristic ``clip(0)``.
        max_iter: outer active-set iterations.
        tol: KKT tolerance.

    Returns:
        :class:`BoxQpResult` with the minimiser and objective value.
    """
    n = g.shape[0]
    if B.shape != (n, n):
        raise ValueError(f"B shape {B.shape} incompatible with g ({n},)")
    if np.any(lower > upper):
        raise ValueError("lower bound exceeds upper bound")
    x = np.clip(np.zeros(n) if x0 is None else x0, lower, upper).astype(float)

    # Working set: -1 fixed at lower, +1 fixed at upper, 0 free.
    working = np.zeros(n, dtype=int)
    working[x <= lower + 1e-14] = -1
    working[x >= upper - 1e-14] = +1
    working[np.isclose(lower, upper)] = -1  # degenerate: permanently fixed

    for it in range(1, max_iter + 1):
        grad = B @ x + g
        free = working == 0

        step_free = np.zeros(0)
        if np.any(free):
            Bff = B[np.ix_(free, free)]
            try:
                step_free = np.linalg.solve(
                    Bff + 1e-12 * np.eye(Bff.shape[0]), -grad[free]
                )
            except np.linalg.LinAlgError:
                step_free = -grad[free]

        if step_free.size == 0 or np.linalg.norm(step_free, ord=np.inf) <= tol:
            # Minimiser on the current working set: check multipliers.
            # At lower the multiplier is grad_i (needs >= 0); at upper it
            # is -grad_i (needs >= 0, i.e. grad_i <= 0).
            violation = np.where(
                working == -1, -grad, np.where(working == +1, grad, 0.0)
            )
            violation[np.isclose(lower, upper)] = 0.0
            worst = int(np.argmax(violation))
            if violation[worst] <= tol:
                return BoxQpResult(x, _objective(B, g, x), it, True)
            working[worst] = 0  # release and continue
            continue

        direction = np.zeros(n)
        direction[free] = step_free

        # Longest feasible step along the direction; record the blocker.
        alpha = 1.0
        blocker = -1
        blocker_side = 0
        pos = np.where(direction > 0)[0]
        neg = np.where(direction < 0)[0]
        for idx in pos:
            a = (upper[idx] - x[idx]) / direction[idx]
            if a < alpha:
                alpha, blocker, blocker_side = a, idx, +1
        for idx in neg:
            a = (lower[idx] - x[idx]) / direction[idx]
            if a < alpha:
                alpha, blocker, blocker_side = a, idx, -1
        alpha = max(alpha, 0.0)
        x = np.clip(x + alpha * direction, lower, upper)
        if blocker >= 0:
            working[blocker] = blocker_side

    return BoxQpResult(x, _objective(B, g, x), max_iter, False)
