"""Backtracking Armijo line search along a projected path."""

from __future__ import annotations

from typing import Callable

import numpy as np


def projected_armijo(
    objective: Callable[[np.ndarray], float],
    x: np.ndarray,
    direction: np.ndarray,
    f0: float,
    g0: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    alpha0: float = 1.0,
    c1: float = 1e-4,
    shrink: float = 0.5,
    max_steps: int = 25,
) -> tuple[np.ndarray, float, float, int]:
    """Armijo backtracking on the projected arc ``P(x + a d)``.

    ``objective`` is *minimised*.  The sufficient-decrease test uses the
    actual projected displacement, which is the standard adaptation of
    Armijo to bound constraints (Bertsekas' projection arc).

    Args:
        objective: scalar function to minimise.
        x: current iterate (feasible).
        direction: search direction (descent for the unconstrained model).
        f0: objective at ``x``.
        g0: gradient at ``x``.
        lower/upper: box bounds.
        alpha0: initial trial step.
        c1: sufficient-decrease constant.
        shrink: backtracking factor in (0, 1).
        max_steps: maximum halvings.

    Returns:
        ``(x_new, f_new, alpha, n_evals)``.  If no step satisfies the
        test, the best trial seen is returned (possibly ``x`` itself).
    """
    if not 0 < shrink < 1:
        raise ValueError(f"shrink must be in (0, 1), got {shrink}")
    alpha = alpha0
    best = (x, f0, 0.0)
    evals = 0
    for _ in range(max_steps):
        trial = np.clip(x + alpha * direction, lower, upper)
        displacement = trial - x
        if not np.any(displacement):
            alpha *= shrink
            continue
        f_trial = objective(trial)
        evals += 1
        if f_trial < best[1]:
            best = (trial, f_trial, alpha)
        # Armijo with projected displacement.
        if f_trial <= f0 + c1 * float(g0.ravel() @ displacement.ravel()):
            return trial, f_trial, alpha, evals
        alpha *= shrink
    return best[0], best[1], best[2], evals
