"""Backtracking Armijo line search along a projected path.

Two entry points share one implementation:

* :func:`projected_armijo` — classic callable form: give it an objective
  and it evaluates trial points itself.
* :func:`projected_armijo_steps` — inverted-control generator form: it
  *yields* each trial point and is *sent* the objective value back.  This
  lets an outer driver decide how evaluations happen — in particular the
  lockstep multi-start broker batches the trial points of many concurrent
  line searches into one network forward pass (see
  :func:`repro.optimize.multistart.refine_starting_points_batched`).

Both produce bit-identical iterates for the same inputs: the callable
form is a thin driver over the generator.
"""

from __future__ import annotations

from typing import Callable, Generator

import numpy as np

#: Generator protocol: yields trial points, receives objective values,
#: returns ``(x_new, f_new, alpha, n_evals)``.
ArmijoSteps = Generator[np.ndarray, float, tuple[np.ndarray, float, float, int]]


def projected_armijo_steps(
    x: np.ndarray,
    direction: np.ndarray,
    f0: float,
    g0: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    alpha0: float = 1.0,
    c1: float = 1e-4,
    shrink: float = 0.5,
    max_steps: int = 25,
) -> ArmijoSteps:
    """Armijo backtracking on the projected arc ``P(x + a d)``.

    The objective is *minimised*.  The sufficient-decrease test uses the
    actual projected displacement, which is the standard adaptation of
    Armijo to bound constraints (Bertsekas' projection arc).

    Args:
        x: current iterate (feasible).
        direction: search direction (descent for the unconstrained model).
        f0: objective at ``x``.
        g0: gradient at ``x``.
        lower/upper: box bounds.
        alpha0: initial trial step.
        c1: sufficient-decrease constant.
        shrink: backtracking factor in (0, 1).
        max_steps: maximum halvings.

    Returns (as the generator's return value):
        ``(x_new, f_new, alpha, n_evals)``.  If no step satisfies the
        test, the best trial seen is returned (possibly ``x`` itself).
    """
    if not 0 < shrink < 1:
        raise ValueError(f"shrink must be in (0, 1), got {shrink}")
    alpha = alpha0
    best = (x, f0, 0.0)
    evals = 0
    for _ in range(max_steps):
        trial = np.clip(x + alpha * direction, lower, upper)
        displacement = trial - x
        if not np.any(displacement):
            alpha *= shrink
            continue
        f_trial = yield trial
        evals += 1
        if f_trial < best[1]:
            best = (trial, f_trial, alpha)
        # Armijo with projected displacement.
        if f_trial <= f0 + c1 * float(g0.ravel() @ displacement.ravel()):
            return trial, f_trial, alpha, evals
        alpha *= shrink
    return best[0], best[1], best[2], evals


def projected_armijo(
    objective: Callable[[np.ndarray], float],
    x: np.ndarray,
    direction: np.ndarray,
    f0: float,
    g0: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    alpha0: float = 1.0,
    c1: float = 1e-4,
    shrink: float = 0.5,
    max_steps: int = 25,
) -> tuple[np.ndarray, float, float, int]:
    """Callable-objective form of :func:`projected_armijo_steps`.

    Args:
        objective: scalar function to minimise; all other arguments as in
            :func:`projected_armijo_steps`.

    Returns:
        ``(x_new, f_new, alpha, n_evals)``.
    """
    steps = projected_armijo_steps(
        x, direction, f0, g0, lower, upper,
        alpha0=alpha0, c1=c1, shrink=shrink, max_steps=max_steps,
    )
    reply: float | None = None
    while True:
        try:
            trial = steps.send(reply)
        except StopIteration as done:
            return done.value
        reply = objective(trial)
