"""Multi-start utilities shared by the MSP-SQP framework."""

from __future__ import annotations

import numpy as np

from ..config import rng_from_seed
from .sqp import SqpOptimizer, SqpResult, ValueAndGrad


def random_starting_points(
    lower: np.ndarray,
    upper: np.ndarray,
    count: int,
    seed: int | np.random.Generator | None = 0,
) -> list[np.ndarray]:
    """Uniform random feasible points in the box."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = rng_from_seed(seed)
    return [lower + rng.random(lower.shape) * (upper - lower) for _ in range(count)]


def refine_starting_points(
    fun: ValueAndGrad,
    starts: list[np.ndarray],
    lower: np.ndarray,
    upper: np.ndarray,
    optimizer: SqpOptimizer | None = None,
) -> list[SqpResult]:
    """Run SQP from every start; results keep the input order."""
    if not starts:
        raise ValueError("no starting points supplied")
    optimizer = optimizer or SqpOptimizer()
    return [optimizer.maximize(fun, s, lower, upper) for s in starts]


def best_result(results: list[SqpResult]) -> SqpResult:
    """Highest-value result of a multi-start batch."""
    if not results:
        raise ValueError("empty result list")
    return max(results, key=lambda r: r.value)
