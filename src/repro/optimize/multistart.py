"""Multi-start utilities shared by the MSP-SQP framework.

Two refinement drivers share the exact same per-start SQP mathematics
(:meth:`~repro.optimize.sqp.SqpOptimizer.maximize_steps`):

* :func:`refine_starting_points` — one start after another, classic.
* :func:`refine_starting_points_batched` — all starts advance in
  lockstep; each round gathers every live start's pending evaluation
  request and services them with ONE batched oracle call.  With a neural
  surrogate this turns K single-sample network passes per iteration into
  one K-sample pass — the "gradients are cheap, so run many starts"
  promise of the MSP framework made real on the hardware.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..config import rng_from_seed
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .sqp import SqpOptimizer, SqpResult, ValueAndGrad

#: Batched oracle: ``(points (k, *shape), need_grad (k,) bool) ->
#: (values (k,), grads (k, *shape))``.  Rows of ``grads`` where
#: ``need_grad`` is False may be zero (they are never read).
BatchValueAndGrad = Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]


def random_starting_points_stacked(
    lower: np.ndarray,
    upper: np.ndarray,
    count: int,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Uniform random feasible points, stacked as ``(count, *shape)``.

    One contiguous array, ready for :func:`refine_starting_points_batched`
    or :meth:`~repro.surrogate.network.CmpNeuralNetwork.evaluate_batch`
    without per-call re-stacking.  The draw consumes the RNG stream in the
    same order as ``count`` sequential per-start draws, so the historical
    list API (:func:`random_starting_points`) returns identical points.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    rng = rng_from_seed(seed)
    return lower + rng.random((count, *lower.shape)) * (upper - lower)


def random_starting_points(
    lower: np.ndarray,
    upper: np.ndarray,
    count: int,
    seed: int | np.random.Generator | None = 0,
) -> list[np.ndarray]:
    """Uniform random feasible points in the box (list API).

    Thin wrapper over :func:`random_starting_points_stacked`; the returned
    list holds views into one stacked array.
    """
    return list(random_starting_points_stacked(lower, upper, count, seed=seed))


def refine_starting_points(
    fun: ValueAndGrad,
    starts: list[np.ndarray],
    lower: np.ndarray,
    upper: np.ndarray,
    optimizer: SqpOptimizer | None = None,
) -> list[SqpResult]:
    """Run SQP from every start; results keep the input order."""
    if len(starts) == 0:
        raise ValueError("no starting points supplied")
    optimizer = optimizer or SqpOptimizer()
    with obs_trace.span("opt.multistart", cat="opt", starts=len(starts),
                        driver="sequential"):
        results = []
        for index, start in enumerate(starts):
            with obs_trace.span("opt.start", cat="opt", index=index):
                results.append(optimizer.maximize(fun, start, lower, upper))
        return results


def refine_starting_points_batched(
    fun_batch: BatchValueAndGrad,
    starts: list[np.ndarray] | np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    optimizer: SqpOptimizer | None = None,
) -> list[SqpResult]:
    """Lockstep multi-start SQP: every iteration advances all live starts
    with a single batched oracle call.

    Each start owns a :meth:`~repro.optimize.sqp.SqpOptimizer.maximize_steps`
    generator.  Per round, the pending request of every unfinished start is
    collected — a mix of gradient requests (major iterations) and value-only
    requests (line-search trials) — and serviced together: one stacked
    forward pass for the values, one masked backward pass for exactly the
    gradients requested.  Converged starts simply drop out of the batch.

    Because the per-start mathematics is byte-for-byte the sequential
    implementation, results are identical to :func:`refine_starting_points`
    whenever ``fun_batch`` row ``k`` equals the sequential oracle at that
    point — only the wall clock changes.

    Args:
        fun_batch: batched oracle ``(points, need_grad) -> (values, grads)``;
            see :data:`BatchValueAndGrad`.
        starts: K starting points (list, or stacked ``(K, *shape)`` array).
        lower / upper: box bounds (broadcastable to one start).
        optimizer: SQP configuration shared by all starts.

    Returns:
        Per-start :class:`~repro.optimize.sqp.SqpResult` in input order.
    """
    if len(starts) == 0:
        raise ValueError("no starting points supplied")
    optimizer = optimizer or SqpOptimizer()
    generators = [
        optimizer.maximize_steps(np.asarray(s, dtype=float), lower, upper)
        for s in starts
    ]
    K = len(generators)
    results: list[SqpResult | None] = [None] * K
    pending: dict[int, tuple[str, np.ndarray]] = {}

    def advance(i: int, reply: object) -> None:
        try:
            pending[i] = generators[i].send(reply)
        except StopIteration as done:
            results[i] = done.value
            pending.pop(i, None)

    observing = obs_trace.active() is not None
    rounds = 0
    oracle_rows = 0
    with obs_trace.span("opt.multistart", cat="opt", starts=K,
                        driver="batched") as span:
        for i in range(K):
            advance(i, None)
        while pending:
            live = sorted(pending)
            points = np.stack([pending[i][1] for i in live])
            need_grad = np.array([pending[i][0] == "grad" for i in live])
            if observing:
                rounds += 1
                oracle_rows += len(live)
                # Lockstep health metric: how wide each batched oracle
                # call is — the whole point of the batched driver.
                obs_metrics.registry().observe("opt.batch_width", len(live))
            values, grads = fun_batch(points, need_grad)
            for row, i in enumerate(live):
                if need_grad[row]:
                    advance(i, (float(values[row]),
                                np.asarray(grads[row], dtype=float)))
                else:
                    advance(i, float(values[row]))
        if observing:
            span.set(rounds=rounds, oracle_rows=oracle_rows)
    return results  # type: ignore[return-value]


def best_result(results: list[SqpResult]) -> SqpResult:
    """Highest-value result of a multi-start batch."""
    if not results:
        raise ValueError("empty result list")
    return max(results, key=lambda r: r.value)
