"""Niching Migratory Multi-Swarm Optimiser (Fieldsend, CEC 2014 [22]).

The paper uses NMMSO to *locate all peak regions* of the quality score
(Eq. 19, Fig. 6); each located optimum then seeds an SQP refinement in
the MSP-SQP framework.

This implementation keeps the algorithm's defining mechanics:

* a population of independent particle swarms, each tracking one peak;
* **merging** of swarms that sit on the same peak, detected by seed
  proximity or by the midpoint test (if the midpoint between two swarm
  bests is fitter than the worse best, the region between them has no
  valley, so they share a peak);
* PSO dynamics with inertia and cognitive/social pulls inside each swarm;
* **migration**: fresh randomly-seeded swarms are injected continuously so
  undiscovered basins keep receiving probes.

The search runs in the normalised unit box; degenerate dimensions
(``lower == upper``) are pinned and excluded from distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import rng_from_seed

Objective = Callable[[np.ndarray], float]


@dataclass
class LocalOptimum:
    """One peak estimate returned by the search."""

    x: np.ndarray
    value: float


@dataclass
class _Swarm:
    positions: np.ndarray  # (k, n) in unit coordinates
    velocities: np.ndarray
    pbest_pos: np.ndarray
    pbest_val: np.ndarray
    gbest_pos: np.ndarray = field(default=None)  # type: ignore[assignment]
    gbest_val: float = -np.inf

    def refresh_gbest(self) -> None:
        k = int(np.argmax(self.pbest_val))
        self.gbest_pos = self.pbest_pos[k].copy()
        self.gbest_val = float(self.pbest_val[k])

    @property
    def size(self) -> int:
        return self.positions.shape[0]


@dataclass
class NmmsoResult:
    optima: list[LocalOptimum]
    evaluations: int
    iterations: int

    @property
    def best(self) -> LocalOptimum:
        return max(self.optima, key=lambda o: o.value)


class Nmmso:
    """Multi-modal maximisation over a box.

    Args:
        fun: objective to maximise (physical coordinates).
        lower / upper: box bounds (arrays of equal shape).
        max_evaluations: total objective evaluation budget.
        swarm_size: particle cap per swarm.
        merge_distance: normalised seed distance below which two swarms
            merge outright.
        inertia / cognitive / social: PSO coefficients.
        seed: RNG seed.
    """

    def __init__(
        self,
        fun: Objective,
        lower: np.ndarray,
        upper: np.ndarray,
        max_evaluations: int = 2000,
        swarm_size: int = 8,
        merge_distance: float = 0.1,
        inertia: float = 0.6,
        cognitive: float = 1.6,
        social: float = 1.6,
        seed: int | np.random.Generator | None = 0,
    ):
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        if lower.shape != upper.shape:
            raise ValueError("bound shapes differ")
        if np.any(lower > upper):
            raise ValueError("infeasible box")
        if max_evaluations <= 0:
            raise ValueError("max_evaluations must be positive")
        self._fun = fun
        self._shape = lower.shape
        self._lo = lower.ravel()
        self._span = (upper - lower).ravel()
        self._active = self._span > 0
        if not np.any(self._active):
            raise ValueError("all dimensions are degenerate (lower == upper)")
        self.max_evaluations = max_evaluations
        self.swarm_size = swarm_size
        self.merge_distance = merge_distance
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self._rng = rng_from_seed(seed)
        self.evaluations = 0

    # ------------------------------------------------------------------
    def _evaluate(self, u: np.ndarray) -> float:
        self.evaluations += 1
        x = self._lo + np.clip(u, 0.0, 1.0) * self._span
        return float(self._fun(x.reshape(self._shape)))

    def _distance(self, a: np.ndarray, b: np.ndarray) -> float:
        d = (a - b)[self._active]
        return float(np.sqrt(np.mean(d * d)))

    def _new_swarm(self, position: np.ndarray | None = None) -> _Swarm:
        n = self._lo.size
        u = self._rng.random(n) if position is None else position
        u[~self._active] = 0.0
        value = self._evaluate(u)
        swarm = _Swarm(
            positions=u[None, :].copy(),
            velocities=np.zeros((1, n)),
            pbest_pos=u[None, :].copy(),
            pbest_val=np.array([value]),
        )
        swarm.refresh_gbest()
        return swarm

    # ------------------------------------------------------------------
    def run(self, max_iterations: int = 10_000) -> NmmsoResult:
        """Search until the evaluation budget (or iteration cap) is spent."""
        swarms = [self._new_swarm()]
        iteration = 0
        while self.evaluations < self.max_evaluations and iteration < max_iterations:
            iteration += 1
            swarms = self._merge_swarms(swarms)
            for swarm in swarms:
                if self.evaluations >= self.max_evaluations:
                    break
                self._grow_or_step(swarm)
            # Migration: continuously probe unexplored space.
            if self.evaluations < self.max_evaluations:
                swarms.append(self._new_swarm())
        swarms = self._merge_swarms(swarms)
        optima = [
            LocalOptimum(
                x=(self._lo + s.gbest_pos * self._span).reshape(self._shape),
                value=s.gbest_val,
            )
            for s in swarms
        ]
        optima.sort(key=lambda o: o.value, reverse=True)
        return NmmsoResult(optima=optima, evaluations=self.evaluations,
                           iterations=iteration)

    # ------------------------------------------------------------------
    def _merge_swarms(self, swarms: list[_Swarm]) -> list[_Swarm]:
        """Collapse swarms that demonstrably share a peak."""
        merged: list[_Swarm] = []
        for swarm in sorted(swarms, key=lambda s: s.gbest_val, reverse=True):
            host = None
            for existing in merged:
                dist = self._distance(swarm.gbest_pos, existing.gbest_pos)
                if dist < self.merge_distance:
                    host = existing
                    break
                if dist < 4 * self.merge_distance and (
                    self.evaluations < self.max_evaluations
                ):
                    mid = 0.5 * (swarm.gbest_pos + existing.gbest_pos)
                    mid_val = self._evaluate(mid)
                    if mid_val >= min(swarm.gbest_val, existing.gbest_val):
                        host = existing  # no valley between them
                        break
            if host is None:
                merged.append(swarm)
            else:
                host_k = host.size
                keep = min(self.swarm_size - host_k, swarm.size)
                if keep > 0:
                    order = np.argsort(swarm.pbest_val)[::-1][:keep]
                    host.positions = np.vstack([host.positions, swarm.positions[order]])
                    host.velocities = np.vstack([host.velocities, swarm.velocities[order]])
                    host.pbest_pos = np.vstack([host.pbest_pos, swarm.pbest_pos[order]])
                    host.pbest_val = np.concatenate([host.pbest_val, swarm.pbest_val[order]])
                if swarm.gbest_val > host.gbest_val:
                    host.gbest_pos = swarm.gbest_pos.copy()
                    host.gbest_val = swarm.gbest_val
        return merged

    def _grow_or_step(self, swarm: _Swarm) -> None:
        """Add a particle while under-populated, else one PSO step."""
        n = self._lo.size
        if swarm.size < self.swarm_size:
            spread = 0.5 * self.merge_distance
            u = swarm.gbest_pos + self._rng.normal(0.0, spread, size=n)
            u = np.clip(u, 0.0, 1.0)
            u[~self._active] = 0.0
            value = self._evaluate(u)
            swarm.positions = np.vstack([swarm.positions, u])
            swarm.velocities = np.vstack([swarm.velocities, np.zeros(n)])
            swarm.pbest_pos = np.vstack([swarm.pbest_pos, u])
            swarm.pbest_val = np.concatenate([swarm.pbest_val, [value]])
            if value > swarm.gbest_val:
                swarm.gbest_pos = u.copy()
                swarm.gbest_val = value
            return

        r1 = self._rng.random(swarm.positions.shape)
        r2 = self._rng.random(swarm.positions.shape)
        swarm.velocities = (
            self.inertia * swarm.velocities
            + self.cognitive * r1 * (swarm.pbest_pos - swarm.positions)
            + self.social * r2 * (swarm.gbest_pos[None, :] - swarm.positions)
        )
        swarm.positions = np.clip(swarm.positions + swarm.velocities, 0.0, 1.0)
        swarm.positions[:, ~self._active] = 0.0
        for k in range(swarm.size):
            if self.evaluations >= self.max_evaluations:
                break
            value = self._evaluate(swarm.positions[k])
            if value > swarm.pbest_val[k]:
                swarm.pbest_val[k] = value
                swarm.pbest_pos[k] = swarm.positions[k].copy()
                if value > swarm.gbest_val:
                    swarm.gbest_val = value
                    swarm.gbest_pos = swarm.positions[k].copy()
