"""SQP solver for box-constrained maximisation (Boggs & Tolle [19]).

The filling problem (Eq. 5) has only simple bounds ``0 <= x <= s``, so
each SQP iteration's quadratic subproblem

.. math:: \\max_d \\; g^T d - \\tfrac12 d^T B d \\quad
          \\text{s.t.} \\; lo \\le x + d \\le hi

can be solved in one of two ways, both provided here:

* ``hessian="dense"`` — maintain a dense damped-BFGS approximation and
  solve the subproblem exactly with the active-set box-QP solver.  Exact
  but O(n^2) memory; right for small problems and for validating the
  limited-memory path.
* ``hessian="lbfgs"`` (default) — limited-memory BFGS two-loop direction
  with bound projection (the subproblem solution collapses to a projected
  quasi-Newton step).  Scales to the thousands of windows of a full chip.

A projected-Armijo line search globalises both variants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator

import numpy as np

from ..obs import trace as obs_trace
from .boxqp import solve_box_qp
from .linesearch import projected_armijo_steps

#: Signature: x -> (value, gradient); the solver MAXIMISES value.
ValueAndGrad = Callable[[np.ndarray], tuple[float, np.ndarray]]

#: One evaluation request from :meth:`SqpOptimizer.maximize_steps`:
#: ``("grad", x)`` expects ``(value, gradient)`` sent back, ``("value", x)``
#: expects a float.  ``x`` always has the caller's original shape.
EvalRequest = tuple[str, np.ndarray]

SqpSteps = Generator[EvalRequest, object, "SqpResult"]


@dataclass
class SqpResult:
    """Outcome of one SQP run."""

    x: np.ndarray
    value: float
    iterations: int
    evaluations: int
    converged: bool
    history: list[float] = field(default_factory=list)


def projected_gradient_norm(x: np.ndarray, grad: np.ndarray,
                            lower: np.ndarray, upper: np.ndarray) -> float:
    """Infinity norm of the projected (ascent) gradient — the first-order
    optimality measure for bound-constrained maximisation."""
    step = np.clip(x + grad, lower, upper) - x
    return float(np.max(np.abs(step))) if step.size else 0.0


class SqpOptimizer:
    """Box-constrained SQP maximiser.

    Args:
        max_iter: maximum major iterations.
        tol: projected-gradient convergence tolerance (in the units of
            ``x``; fills are um^2, so ~1e-3 is tight).
        memory: number of (s, y) pairs for the L-BFGS variant.
        hessian: ``"lbfgs"`` (scalable, default) or ``"dense"`` (exact
            subproblem via active-set box QP).
        step_scale: initial line-search step.
        max_step_fraction: caps the first trial displacement of every line
            search at this fraction of the box span, so an SQP refinement
            stays inside the basin of its starting point (essential for
            the MSP framework: each start must converge to *its* local
            optimum, not hop to a neighbouring one).
    """

    def __init__(self, max_iter: int = 60, tol: float = 1e-3,
                 memory: int = 10, hessian: str = "lbfgs",
                 step_scale: float = 1.0, max_step_fraction: float = 0.15):
        if hessian not in ("lbfgs", "dense"):
            raise ValueError(f"unknown hessian mode {hessian!r}")
        if max_iter <= 0:
            raise ValueError("max_iter must be positive")
        self.max_iter = max_iter
        self.tol = tol
        self.memory = memory
        self.hessian = hessian
        self.step_scale = step_scale
        self.max_step_fraction = max_step_fraction

    # ------------------------------------------------------------------
    def maximize(self, fun: ValueAndGrad, x0: np.ndarray,
                 lower: np.ndarray, upper: np.ndarray,
                 fun_value: Callable[[np.ndarray], float] | None = None) -> SqpResult:
        """Run SQP from ``x0`` (clipped into the box if needed).

        Args:
            fun: value-and-gradient oracle (maximised).
            x0: starting point.
            lower / upper: box bounds (broadcastable to ``x0``).
            fun_value: optional cheap value-only oracle used inside the
                line search.  Essential when the gradient is expensive
                (finite differences through a simulator) and a useful
                saving when backpropagation costs as much as a forward
                pass.  Defaults to calling ``fun`` and discarding the
                gradient.
        """
        steps = self.maximize_steps(x0, lower, upper)
        reply: object = None
        while True:
            try:
                kind, point = steps.send(reply)
            except StopIteration as done:
                return done.value
            if kind == "grad":
                value, grad = fun(point)
                reply = (float(value), np.asarray(grad, dtype=float))
            elif fun_value is None:
                reply = float(fun(point)[0])
            else:
                reply = float(fun_value(point))

    def maximize_steps(self, x0: np.ndarray, lower: np.ndarray,
                       upper: np.ndarray) -> SqpSteps:
        """Inverted-control core of :meth:`maximize`.

        A generator that *yields* evaluation requests — ``("grad", x)``
        expecting ``(value, gradient)`` sent back, ``("value", x)``
        expecting a float — and returns the :class:`SqpResult` when done.
        All SQP math (L-BFGS/BFGS state, bound handling, line search)
        lives here; who computes the oracle answers is the driver's
        business.  :meth:`maximize` drives it with plain callables;
        :func:`repro.optimize.multistart.refine_starting_points_batched`
        drives many instances in lockstep and services each round's
        requests with one batched network pass — same iterates either
        way, because this is the only implementation.
        """
        lower = np.broadcast_to(lower, x0.shape).astype(float)
        upper = np.broadcast_to(upper, x0.shape).astype(float)
        if np.any(lower > upper):
            raise ValueError("infeasible box: lower > upper")
        shape = x0.shape
        x = np.clip(x0, lower, upper).ravel().copy()
        lo, hi = lower.ravel(), upper.ravel()

        evals = 0
        grad_evals = 0
        linesearch_trials = 0
        qp_iterations = 0

        def request_grad(z: np.ndarray) -> EvalRequest:
            return ("grad", z.reshape(shape))

        value, grad_full = yield request_grad(x)
        evals += 1
        grad_evals += 1
        f, g = float(value), np.asarray(grad_full, dtype=float).ravel()
        history = [f]
        n = x.size
        memory: deque[tuple[np.ndarray, np.ndarray]] = deque(maxlen=self.memory)
        B = np.eye(n) if self.hessian == "dense" else None
        have_curvature = False

        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            if projected_gradient_norm(x, g, lo, hi) <= self.tol:
                converged = True
                break

            if self.hessian == "dense":
                qp = solve_box_qp(B, -g, lo - x, hi - x)
                qp_iterations += qp.iterations
                direction = qp.x
            else:
                direction = self._lbfgs_direction(g, memory)
                # Zero components pushing into an active bound.
                at_lo = (x <= lo + 1e-14) & (direction < 0)
                at_hi = (x >= hi - 1e-14) & (direction > 0)
                direction[at_lo | at_hi] = 0.0
            if not np.any(direction):
                converged = True
                break

            # Scale the first trial displacement to a fixed fraction of
            # the box span while no curvature information exists (a raw
            # score gradient can be ~1e-7 in um^2 units, or huge — either
            # way its magnitude is meaningless as a step).  Once (s, y)
            # pairs are in, the quasi-Newton direction is well-sized and
            # only the upper cap remains, keeping refinement basin-local.
            span = np.max(hi - lo)
            dir_norm = float(np.max(np.abs(direction)))
            alpha0 = self.step_scale
            if span > 0 and dir_norm > 0:
                natural = self.max_step_fraction * span / dir_norm
                alpha0 = natural if not have_curvature else min(alpha0, natural)

            # Line search minimises -f along the projected arc; its trial
            # points surface as "value" requests so a batched driver can
            # evaluate many concurrent line searches at once.
            search = projected_armijo_steps(
                x=x, direction=direction, f0=-f, g0=-g,
                lower=lo, upper=hi, alpha0=alpha0,
            )
            trial_value: float | None = None
            while True:
                try:
                    trial = search.send(trial_value)
                except StopIteration as done:
                    x_new = done.value[0]
                    break
                raw = yield ("value", trial.reshape(shape))
                evals += 1
                linesearch_trials += 1
                trial_value = -float(raw)
            if not np.any(x_new != x):
                converged = True
                break
            value, grad_full = yield request_grad(x_new)
            evals += 1
            grad_evals += 1
            f_new, g_new = float(value), np.asarray(grad_full, dtype=float).ravel()

            s = x_new - x
            y = g_new - g  # gradient of f (ascent); curvature uses -y
            sy = float(s @ -y)
            if sy > 1e-12:
                have_curvature = True
                if self.hessian == "dense":
                    B = self._bfgs_update(B, s, -y)
                else:
                    memory.append((s, -y))
            x, f, g = x_new, f_new, g_new
            history.append(f)

        # Observability: one event per completed SQP run carrying the
        # objective curve and the iteration-level counters (line-search
        # trials, gradient evaluations, dense-QP inner iterations).  An
        # event — not a span — because under the lockstep batched driver
        # many generators interleave on one thread, so wall-clock
        # nesting would be meaningless.  No-op when tracing is off.
        if obs_trace.active() is not None:
            obs_trace.event(
                "opt.sqp", cat="opt", iterations=iteration,
                evaluations=evals, grad_evals=grad_evals,
                linesearch_trials=linesearch_trials,
                qp_iterations=qp_iterations, hessian=self.hessian,
                converged=converged, value=f, history=list(history),
            )
        return SqpResult(
            x=x.reshape(shape), value=f, iterations=iteration,
            evaluations=evals, converged=converged, history=history,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _lbfgs_direction(g: np.ndarray,
                         memory: deque[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        """Two-loop recursion: ascent direction ``H * g`` for maximisation.

        Memory pairs are ``(s, y)`` of the *minimisation* problem
        (``y = -(g_{k+1} - g_k)``), so the recursion is the textbook one.
        """
        q = g.copy()
        if not memory:
            return q
        alphas = []
        rhos = []
        for s, y in reversed(memory):
            rho = 1.0 / float(y @ s)
            alpha = rho * float(s @ q)
            q -= alpha * y
            alphas.append(alpha)
            rhos.append(rho)
        s_last, y_last = memory[-1]
        gamma = float(s_last @ y_last) / float(y_last @ y_last)
        q *= gamma
        for (s, y), alpha, rho in zip(memory, reversed(alphas), reversed(rhos)):
            beta = rho * float(y @ q)
            q += (alpha - beta) * s
        return q

    @staticmethod
    def _bfgs_update(B: np.ndarray, s: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Damped BFGS (Powell) update keeping B positive definite."""
        Bs = B @ s
        sBs = float(s @ Bs)
        sy = float(s @ y)
        if sy < 0.2 * sBs:
            theta = 0.8 * sBs / (sBs - sy)
            y = theta * y + (1 - theta) * Bs
            sy = float(s @ y)
        if sy <= 1e-14 or sBs <= 1e-14:
            return B
        return B - np.outer(Bs, Bs) / sBs + np.outer(y, y) / sy
