"""``repro.serve``: a resident, batching fill-synthesis service.

The one-shot CLI re-pays model loading, conv-plan warmup and score
calibration on every invocation.  This subsystem keeps surrogates
resident (model registry), admits work through a bounded priority queue
with backpressure, coalesces concurrent surrogate evaluations into
dynamic micro-batches (the PR 1 ``evaluate_batch`` primitive), and
survives crashes via an accept/done journal.  Execution scales past the
GIL with ``worker_mode=process`` (a :class:`ProcessWorkerPool` of
long-lived forked children) and past one process's caches with
``--shards N`` (a :class:`ShardRouter` fleet routing jobs to shard
processes by layout fingerprint).  See DESIGN.md "Serving" and
"Process-based serving" for the micro-batching policy, its
numerical-fidelity contract, and the crash-containment model.
"""

from .batcher import CoalescedNetwork, MicroBatcher, SimulateBatcher
from .client import ServeClient, ServeError
from .executor import FILL_METHODS, JobExecutor, validate_job
from .jobqueue import BoundedJobQueue, Job, JobState
from .journal import JobJournal
from .procpool import (
    ProcessWorkerPool,
    RemoteJobError,
    WorkerDiedError,
    WorkerSpec,
)
from .protocol import (
    JOB_OPS,
    OPS,
    ProtocolError,
    Request,
    decode,
    encode,
    parse_request,
    response,
)
from .registry import (
    ModelRegistry,
    RegisteredModel,
    layout_fingerprint,
    parse_model_spec,
)
from .router import ShardRouter, rendezvous_shard, routing_key
from .server import FillServer, ServeConfig, serve_pipe, serve_tcp
from .stats import LatencyTracker, ServeStats

__all__ = [
    "BoundedJobQueue",
    "CoalescedNetwork",
    "FILL_METHODS",
    "FillServer",
    "JOB_OPS",
    "Job",
    "JobExecutor",
    "JobJournal",
    "JobState",
    "LatencyTracker",
    "MicroBatcher",
    "ModelRegistry",
    "OPS",
    "ProcessWorkerPool",
    "ProtocolError",
    "RegisteredModel",
    "RemoteJobError",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeStats",
    "ShardRouter",
    "SimulateBatcher",
    "WorkerDiedError",
    "WorkerSpec",
    "decode",
    "encode",
    "layout_fingerprint",
    "parse_model_spec",
    "parse_request",
    "rendezvous_shard",
    "response",
    "routing_key",
    "serve_pipe",
    "serve_tcp",
    "validate_job",
]
