"""``repro.serve``: a resident, batching fill-synthesis service.

The one-shot CLI re-pays model loading, conv-plan warmup and score
calibration on every invocation.  This subsystem keeps surrogates
resident (model registry), admits work through a bounded priority queue
with backpressure, coalesces concurrent surrogate evaluations into
dynamic micro-batches (the PR 1 ``evaluate_batch`` primitive), and
survives crashes via an accept/done journal.  See DESIGN.md "Serving"
for the micro-batching policy and its numerical-fidelity contract.
"""

from .batcher import CoalescedNetwork, MicroBatcher, SimulateBatcher
from .client import ServeClient, ServeError
from .jobqueue import BoundedJobQueue, Job, JobState
from .journal import JobJournal
from .protocol import (
    JOB_OPS,
    OPS,
    ProtocolError,
    Request,
    decode,
    encode,
    parse_request,
    response,
)
from .registry import ModelRegistry, RegisteredModel, layout_fingerprint
from .server import FillServer, ServeConfig, serve_pipe, serve_tcp
from .stats import LatencyTracker, ServeStats

__all__ = [
    "BoundedJobQueue",
    "CoalescedNetwork",
    "FillServer",
    "JOB_OPS",
    "Job",
    "JobJournal",
    "JobState",
    "LatencyTracker",
    "MicroBatcher",
    "ModelRegistry",
    "OPS",
    "ProtocolError",
    "RegisteredModel",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeStats",
    "SimulateBatcher",
    "decode",
    "encode",
    "layout_fingerprint",
    "parse_request",
    "response",
    "serve_pipe",
    "serve_tcp",
]
