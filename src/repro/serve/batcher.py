"""Dynamic micro-batching of concurrent surrogate evaluations.

Concurrent jobs against the same bound surrogate each drive their own
SQP refinement, which issues one network forward/backward at a time.
Run naively, W worker threads make W independent single-fill passes and
the network's batch axis — exactly what PR 1's batched MSP-SQP exploits
*within* one job — sits idle *across* jobs.

:class:`MicroBatcher` closes that gap.  Worker threads call
:meth:`evaluate`; the call parks until either ``max_batch`` requests
have gathered or the oldest request has waited ``max_delay_s`` (the
max-latency flush knob), then one flusher thread runs the whole group
through :meth:`CmpNeuralNetwork.evaluate_batch
<repro.surrogate.network.CmpNeuralNetwork.evaluate_batch>` — the same
stacked-pass primitive batched MSP-SQP is built on — and scatters the
per-request results.

:class:`SimulateBatcher` applies the same idea to raw ``simulate`` jobs:
concurrent requests sharing one process calibration and grid coalesce
into a single :meth:`CmpSimulator.simulate_batch
<repro.cmp.simulator.CmpSimulator.simulate_batch>` polish, which is
bitwise identical to running them one by one.

Fidelity contract (see DESIGN.md "Serving"): a coalesced group of K
requests returns **bitwise** what ``evaluate_batch`` returns for those K
fills stacked — coalescing adds no arithmetic of its own.  A singleton
flush (K = 1) is in turn bitwise-identical to the sequential
``evaluate`` path, because the stacked ``(1·L, C, N, M)`` pass runs the
identical computation; for K > 1 the repo-wide batched-evaluation
contract applies (equal up to BLAS contraction order at the last ulp,
observed ≤ 1e-10).  Requests only coalesce when they share the bound
network *and* the planarity weights, so different layouts/models/designs
never mix.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np

from ..cmp.simulator import CmpResult, CmpSimulator
from ..layout.layout import FeatureStack, stack_features
from ..obs import trace as obs_trace
from ..surrogate.network import CmpNeuralNetwork, PlanarityEvaluation
from ..surrogate.objectives import PlanarityWeights
from .stats import ServeStats


class _PendingEval:
    """One parked evaluation awaiting a flush."""

    __slots__ = ("fill", "want_grad", "enqueued_at", "event", "result",
                 "error")

    def __init__(self, fill: np.ndarray, want_grad: bool):
        self.fill = fill
        self.want_grad = want_grad
        self.enqueued_at = time.monotonic()
        self.event = threading.Event()
        self.result: PlanarityEvaluation | None = None
        self.error: BaseException | None = None


class MicroBatcher:
    """Coalesces single-fill evaluations against one bound network.

    Args:
        network: the bound :class:`CmpNeuralNetwork` to evaluate on.
        max_batch: flush as soon as this many requests are parked;
            ``1`` disables coalescing (calls pass straight through).
        max_delay_s: flush the oldest request after waiting this long
            even if the batch is not full — bounds added latency.
        stats: optional sink for the batch-size histogram.
    """

    def __init__(self, network: CmpNeuralNetwork, max_batch: int = 16,
                 max_delay_s: float = 0.004,
                 stats: ServeStats | None = None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.network = network
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.stats = stats
        self._pending: dict[tuple, list[_PendingEval]] = {}
        self._cond = threading.Condition()
        self._closed = False
        self._thread: threading.Thread | None = None
        if max_batch > 1:
            self._thread = threading.Thread(
                target=self._flush_loop, name="repro-serve-batcher",
                daemon=True,
            )
            self._thread.start()

    # ------------------------------------------------------------------
    def evaluate(self, fill: np.ndarray, weights: PlanarityWeights,
                 want_grad: bool = True) -> PlanarityEvaluation:
        """Drop-in for ``network.evaluate``, transparently coalesced."""
        if self.max_batch <= 1:
            return self.network.evaluate(fill, weights, want_grad=want_grad)
        pending = _PendingEval(np.asarray(fill, dtype=float), want_grad)
        key = dataclasses.astuple(weights)
        with self._cond:
            if self._closed:  # flusher may already have drained and exited
                parked = False
            else:
                self._pending.setdefault(key, []).append(pending)
                parked = True
                self._cond.notify_all()
        if not parked:
            return self.network.evaluate(fill, weights, want_grad=want_grad)
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def close(self) -> None:
        """Stop the flusher after draining every parked request."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    # ------------------------------------------------------------------
    def _take_group(self) -> tuple[tuple, list[_PendingEval]] | None:
        """Pop the most urgent flushable group, or ``None`` to keep waiting.

        Must be called with the condition held.  A group flushes when it
        is full or its oldest member exceeded ``max_delay_s`` (always,
        when the batcher is closing).
        """
        now = time.monotonic()
        best_key, best_age = None, -1.0
        for key, group in self._pending.items():
            age = now - group[0].enqueued_at
            if len(group) >= self.max_batch or self._closed \
                    or age >= self.max_delay_s:
                if age > best_age:
                    best_key, best_age = key, age
        if best_key is None:
            return None
        group = self._pending[best_key]
        take, rest = group[:self.max_batch], group[self.max_batch:]
        if rest:
            self._pending[best_key] = rest
        else:
            del self._pending[best_key]
        return best_key, take

    def _next_deadline(self) -> float | None:
        """Monotonic time of the earliest pending flush (cond held)."""
        oldest = None
        for group in self._pending.values():
            t = group[0].enqueued_at
            if oldest is None or t < oldest:
                oldest = t
        return None if oldest is None else oldest + self.max_delay_s

    def _flush_loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    taken = self._take_group()
                    if taken is not None:
                        break
                    if self._closed and not self._pending:
                        return
                    deadline = self._next_deadline()
                    timeout = (None if deadline is None
                               else max(0.0, deadline - time.monotonic()))
                    self._cond.wait(timeout)
            key, group = taken
            self._run_group(key, group)

    def _run_group(self, key: tuple, group: list[_PendingEval]) -> None:
        weights = PlanarityWeights(*key)
        try:
            with obs_trace.span("serve.batch_flush", cat="serve",
                                size=len(group)):
                fills = np.stack([p.fill for p in group])
                mask = np.array([p.want_grad for p in group], dtype=bool)
                batch = self.network.evaluate_batch(fills, weights,
                                                    grad_mask=mask)
                for k, p in enumerate(group):
                    gradient = None
                    if p.want_grad and batch.gradient is not None:
                        gradient = batch.gradient[k].copy()
                    p.result = PlanarityEvaluation(
                        s_plan=float(batch.s_plan[k]),
                        breakdown=batch.breakdowns[k],
                        heights=batch.heights[k].copy(),
                        gradient=gradient,
                    )
        except BaseException as exc:  # propagate into every waiter
            for p in group:
                p.error = exc
        finally:
            if self.stats is not None:
                self.stats.record_batch(len(group))
            for p in group:
                p.event.set()


class _PendingSim:
    """One parked simulation awaiting a flush."""

    __slots__ = ("features", "simulator", "enqueued_at", "event", "result",
                 "error")

    def __init__(self, features: FeatureStack, simulator: CmpSimulator):
        self.features = features
        self.simulator = simulator
        self.enqueued_at = time.monotonic()
        self.event = threading.Event()
        self.result: CmpResult | None = None
        self.error: BaseException | None = None


class SimulateBatcher:
    """Coalesces concurrent ``simulate`` jobs into batched polishes.

    The simulate-side twin of :class:`MicroBatcher`: worker threads call
    :meth:`simulate`; the call parks until ``max_batch`` requests have
    gathered or the oldest has waited ``max_delay_s``, then the flusher
    runs the group through :meth:`CmpSimulator.simulate_batch
    <repro.cmp.simulator.CmpSimulator.simulate_batch>` and scatters the
    per-layout results.

    Requests coalesce only when they share the process calibration,
    window size, compute dtype and feature-stack shape — different
    layouts on one grid stack fine; different physics never mix.  The
    fidelity contract is *stronger* than the network batcher's: the
    batched simulator is **bitwise identical** to looping ``simulate``,
    so coalescing can never change a job's reported numbers.

    Args:
        max_batch: flush as soon as this many requests are parked;
            ``1`` disables coalescing (calls pass straight through).
        max_delay_s: flush the oldest request after waiting this long
            even if the batch is not full — bounds added latency.
        stats: optional sink for the simulate-batch-size histogram.
    """

    def __init__(self, max_batch: int = 16, max_delay_s: float = 0.004,
                 stats: ServeStats | None = None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.stats = stats
        self._pending: dict[tuple, list[_PendingSim]] = {}
        self._cond = threading.Condition()
        self._closed = False
        self._thread: threading.Thread | None = None
        if max_batch > 1:
            self._thread = threading.Thread(
                target=self._flush_loop, name="repro-serve-sim-batcher",
                daemon=True,
            )
            self._thread.start()

    # ------------------------------------------------------------------
    def simulate(self, features: FeatureStack,
                 simulator: CmpSimulator) -> CmpResult:
        """Drop-in for ``simulator.simulate``, transparently coalesced."""
        if self.max_batch <= 1:
            return simulator.simulate(features)
        pending = _PendingSim(features, simulator)
        # ProcessParams is a frozen dataclass, so the physics coalesces
        # by value: two jobs with the same polish-time override share a
        # group even though each built its own simulator instance.
        key = (simulator.params, simulator.window_um, simulator.dtype,
               features.shape)
        with self._cond:
            if self._closed:  # flusher may already have drained and exited
                parked = False
            else:
                self._pending.setdefault(key, []).append(pending)
                parked = True
                self._cond.notify_all()
        if not parked:
            return simulator.simulate(features)
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def close(self) -> None:
        """Stop the flusher after draining every parked request."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    # ------------------------------------------------------------------
    def _take_group(self) -> tuple[tuple, list[_PendingSim]] | None:
        """Pop the most urgent flushable group (condition held)."""
        now = time.monotonic()
        best_key, best_age = None, -1.0
        for key, group in self._pending.items():
            age = now - group[0].enqueued_at
            if len(group) >= self.max_batch or self._closed \
                    or age >= self.max_delay_s:
                if age > best_age:
                    best_key, best_age = key, age
        if best_key is None:
            return None
        group = self._pending[best_key]
        take, rest = group[:self.max_batch], group[self.max_batch:]
        if rest:
            self._pending[best_key] = rest
        else:
            del self._pending[best_key]
        return best_key, take

    def _next_deadline(self) -> float | None:
        """Monotonic time of the earliest pending flush (cond held)."""
        oldest = None
        for group in self._pending.values():
            t = group[0].enqueued_at
            if oldest is None or t < oldest:
                oldest = t
        return None if oldest is None else oldest + self.max_delay_s

    def _flush_loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    taken = self._take_group()
                    if taken is not None:
                        break
                    if self._closed and not self._pending:
                        return
                    deadline = self._next_deadline()
                    timeout = (None if deadline is None
                               else max(0.0, deadline - time.monotonic()))
                    self._cond.wait(timeout)
            _, group = taken
            self._run_group(group)

    def _run_group(self, group: list[_PendingSim]) -> None:
        # Every member shares the group key, so any member's simulator
        # carries the group's physics.
        simulator = group[0].simulator
        try:
            with obs_trace.span("serve.sim_flush", cat="serve",
                                size=len(group)):
                if len(group) == 1:
                    group[0].result = simulator.simulate(group[0].features)
                else:
                    batch = simulator.simulate_batch(
                        stack_features([p.features for p in group]))
                    for k, p in enumerate(group):
                        p.result = batch.entry(k)
        except BaseException as exc:  # propagate into every waiter
            for p in group:
                p.error = exc
        finally:
            if self.stats is not None:
                self.stats.record_sim_batch(len(group))
            for p in group:
                p.event.set()


class CoalescedNetwork:
    """A :class:`CmpNeuralNetwork` facade routing single evaluations
    through a shared :class:`MicroBatcher`.

    Hands ``evaluate`` to the batcher and delegates everything else
    (``layout``, ``evaluate_batch``, ``predict_heights``, ...) to the
    wrapped network, so :class:`repro.core.msp_sqp.QualityModel` and
    :class:`repro.core.neurfill.NeurFill` work unmodified.  In-job
    stacked passes (batched MSP-SQP) are already batched and pass
    through untouched.
    """

    def __init__(self, network: CmpNeuralNetwork, batcher: MicroBatcher):
        self._network = network
        self._batcher = batcher

    def evaluate(self, fill: np.ndarray, weights: PlanarityWeights,
                 want_grad: bool = True) -> PlanarityEvaluation:
        return self._batcher.evaluate(fill, weights, want_grad=want_grad)

    def __getattr__(self, name: str):
        return getattr(self._network, name)
