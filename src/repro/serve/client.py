"""Client helper for ``repro serve`` (pipe and TCP transports).

A :class:`ServeClient` owns one connection, demultiplexes responses by
request id on a background reader thread, and exposes blocking helpers::

    with ServeClient.pipe() as client:          # spawns `repro serve --pipe`
        client.ping()
        done = client.fill(layout_path="a.json", method="lin",
                           return_fill=True)
        print(done["result"]["quality"])
        client.shutdown()

    client = ServeClient.connect("127.0.0.1", 7421)   # running TCP server

Because responses are routed by id, many jobs can be in flight at once
from one connection: ``submit_fill`` returns after the accept ack and
``wait`` blocks for the terminal response.
"""

from __future__ import annotations

import itertools
import os
import socket
import subprocess
import sys
import threading
import time
from collections import deque

from .protocol import TERMINAL_STATUSES, decode, encode


class ServeError(RuntimeError):
    """A request ended in a failure status; carries the full response."""

    def __init__(self, response: dict):
        self.response = response
        super().__init__(
            f"{response.get('status', 'error')}: "
            f"{response.get('error', 'no error message')}"
        )


class ServeClient:
    """One protocol connection with id-demultiplexed responses."""

    _instances = itertools.count(1)

    def __init__(self, reader, writer, *, proc: subprocess.Popen | None = None,
                 sock: socket.socket | None = None):
        self._reader = reader
        self._writer = writer
        self._proc = proc
        self._sock = sock
        # Job ids are server-global (cancel targets them), so prefix with
        # pid + connection number: concurrent clients must never collide.
        self._prefix = f"c{os.getpid()}-{next(self._instances)}"
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._inbox: dict[str | None, deque[dict]] = {}
        self._closed = False
        self._thread = threading.Thread(
            target=self._read_loop, name="repro-serve-client", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    @classmethod
    def pipe(cls, argv: list[str] | None = None,
             cwd: str | None = None, env: dict | None = None) -> "ServeClient":
        """Spawn ``repro serve --pipe`` as a child and connect to it.

        Args:
            argv: extra server flags (e.g. ``["--model", "pkb=ckpt"]``).
        """
        cmd = [sys.executable, "-m", "repro", "serve", "--pipe"]
        cmd += list(argv or [])
        proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True, cwd=cwd, env=env,
        )
        return cls(proc.stdout, proc.stdin, proc=proc)

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: float = 10.0) -> "ServeClient":
        """Connect to a TCP server, retrying until ``timeout``."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                sock = socket.create_connection((host, port), timeout=timeout)
                sock.settimeout(None)  # blocking reads; close() unblocks them
                stream = sock.makefile("rw", encoding="utf-8", newline="\n")
                return cls(stream, stream, sock=sock)
            except OSError as exc:
                last = exc
                time.sleep(0.05)
        raise ConnectionError(
            f"could not connect to {host}:{port} within {timeout}s: {last}")

    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        try:
            for line in self._reader:
                if not line.strip():
                    continue
                try:
                    message = decode(line)
                except ValueError:
                    continue
                with self._cond:
                    self._inbox.setdefault(
                        message.get("id"), deque()).append(message)
                    self._cond.notify_all()
        except (OSError, ValueError):
            pass
        finally:
            with self._cond:
                self._closed = True
                self._cond.notify_all()

    def _send(self, message: dict) -> None:
        line = encode(message) + "\n"
        with self._lock:
            if self._closed:
                raise ConnectionError("connection to repro serve is closed")
        self._writer.write(line)
        self._writer.flush()

    # ------------------------------------------------------------------
    def request(self, op: str, params: dict | None = None,
                priority: int = 0, timeout_s: float | None = None,
                request_id: str | None = None) -> str:
        """Send one request; returns its id (no waiting)."""
        rid = request_id or f"{self._prefix}-{next(self._ids)}"
        message: dict = {"id": rid, "op": op}
        if params:
            message["params"] = params
        if priority:
            message["priority"] = priority
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        self._send(message)
        return rid

    def recv(self, request_id: str, timeout: float | None = None) -> dict:
        """Next response for ``request_id`` (ack or terminal), in order."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                box = self._inbox.get(request_id)
                if box:
                    message = box.popleft()
                    if not box:
                        del self._inbox[request_id]
                    return message
                if self._closed:
                    raise ConnectionError(
                        "connection closed while waiting for "
                        f"response to {request_id!r}")
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"no response to {request_id!r} within {timeout}s")
                self._cond.wait(remaining)

    def wait(self, request_id: str, timeout: float | None = None) -> dict:
        """Block until a terminal response; raise on failure statuses."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            message = self.recv(request_id, timeout=remaining)
            if message.get("status") in TERMINAL_STATUSES:
                if not message.get("ok"):
                    raise ServeError(message)
                return message

    def call(self, op: str, params: dict | None = None,
             priority: int = 0, timeout_s: float | None = None,
             timeout: float | None = None) -> dict:
        """Send and wait for the terminal response (skipping the ack)."""
        rid = self.request(op, params, priority=priority, timeout_s=timeout_s)
        return self.wait(rid, timeout=timeout)

    # ------------------------------------------------------------------
    def submit_fill(self, *, priority: int = 0,
                    timeout_s: float | None = None, **params) -> str:
        """Submit a fill job; returns its id once accepted.

        Raises:
            ServeError: immediate rejection (backpressure, bad method).
        """
        rid = self.request("fill", params, priority=priority,
                           timeout_s=timeout_s)
        ack = self.recv(rid)
        if ack.get("status") != "accepted":
            raise ServeError(ack)
        return rid

    def fill(self, *, priority: int = 0, timeout_s: float | None = None,
             timeout: float | None = None, **params) -> dict:
        """Submit a fill job and wait for its terminal response."""
        return self.call("fill", params, priority=priority,
                         timeout_s=timeout_s, timeout=timeout)

    def eco(self, *, priority: int = 0, timeout_s: float | None = None,
            timeout: float | None = None, **params) -> dict:
        """Incremental refill of an edited layout against a parent solve.

        Pass the ``layout_fingerprint`` from the parent fill's done
        payload as ``parent_fingerprint`` so the job lands on the shard/
        worker holding the parent's cached solution, or supply
        ``parent_fill`` + ``parent_layout`` explicitly.
        """
        return self.call("eco", params, priority=priority,
                         timeout_s=timeout_s, timeout=timeout)

    def simulate(self, *, timeout: float | None = None, **params) -> dict:
        return self.call("simulate", params, timeout=timeout)

    def stats(self, timeout: float | None = None) -> dict:
        return self.call("stats", timeout=timeout)["result"]

    def models(self, timeout: float | None = None) -> dict:
        return self.call("models", timeout=timeout)["result"]["models"]

    def ping(self, timeout: float | None = None) -> bool:
        return bool(self.call("ping", timeout=timeout)["result"]["pong"])

    def lifecycle(self, timeout: float | None = None) -> dict:
        """Drift/retrain/generation status of the server or fleet."""
        return self.call("lifecycle", timeout=timeout)["result"]

    def swap(self, model: str, directory: str,
             generation: int | None = None,
             timeout: float | None = None) -> int:
        """Hot-swap ``model`` to the checkpoint in ``directory``.

        Returns the new generation.  In-flight jobs finish on the old
        checkpoint; jobs admitted after this returns bind the new one.
        """
        params: dict = {"model": model, "directory": directory}
        if generation is not None:
            params["generation"] = int(generation)
        result = self.call("swap", params, timeout=timeout)
        return int(result["result"]["generation"])

    def cancel(self, job_id: str, timeout: float | None = None) -> bool:
        result = self.call("cancel", {"job_id": job_id}, timeout=timeout)
        return bool(result["result"]["cancelled"])

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> dict:
        return self.call("shutdown", {"drain": drain}, timeout=timeout)

    # ------------------------------------------------------------------
    def close(self, wait_proc: bool = True, timeout: float = 10.0) -> int | None:
        """Close the connection; returns the child's exit code (pipe mode)."""
        with self._lock:
            self._closed = True
        if self._sock is not None:
            # Unblock the reader thread *before* closing the shared file
            # object: file.close() waits for the buffer lock a blocked
            # read holds, but shutdown makes that read return EOF now.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        try:
            self._writer.close()
        except OSError:
            pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        code: int | None = None
        if self._proc is not None and wait_proc:
            try:
                code = self._proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                code = self._proc.wait()
        self._thread.join(timeout=5.0)
        return code

    def kill(self) -> None:
        """Hard-kill the child server (crash simulation; pipe mode only)."""
        if self._proc is not None:
            self._proc.kill()
            self._proc.wait()
        self.close(wait_proc=False)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
