"""The job execution engine, shared by thread workers and forked workers.

:class:`JobExecutor` owns everything one ``fill``/``eco``/``simulate`` job needs
after admission: layout loading (with an mtime-validated LRU cache),
score-coefficient calibration (cached per layout content), surrogate
binding through the :class:`~repro.serve.registry.ModelRegistry`, the
micro-batchers, and the MSP-SQP fill itself.  It is deliberately free of
queueing, journaling and transport concerns so the same code runs

* inside :class:`~repro.serve.server.FillServer` worker **threads**
  (``worker_mode=thread``), where the batchers coalesce evaluations
  *across* concurrent jobs, and
* inside long-lived forked worker **processes**
  (:mod:`repro.serve.procpool`, ``worker_mode=process``), where each
  child owns a private warm executor and cross-job coalescing is
  disabled (``max_batch=1``) because a child runs one job at a time —
  parallelism across jobs comes from the processes themselves.

All three per-executor caches are true LRUs: hits refresh recency
(``move_to_end``) and eviction removes the least-recently-*used* entry,
matching :class:`ModelRegistry`'s bound-network cache.  (The PR 3
versions of the layout and coefficient caches evicted FIFO — a hot
layout could be evicted while cold ones survived.)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..baselines import cai_fill, lin_fill, tao_fill
from ..cmp.simulator import CmpSimulator
from ..core import (
    FillProblem,
    FillResult,
    NeurFill,
    ScoreCoefficients,
    eco_refill,
    evaluate_solution,
)
from ..core.scoring import planarity_metrics
from ..layout.io import layout_from_dict, load_layout
from ..layout.layout import Layout, apply_fill
from ..obs import trace as obs_trace
from ..optimize.sqp import SqpOptimizer
from ..surrogate import TrainConfig, pretrain_surrogate
from .batcher import CoalescedNetwork, MicroBatcher, SimulateBatcher
from .protocol import Request
from .registry import ModelRegistry, layout_fingerprint
from .stats import ServeStats

FILL_METHODS = ("lin", "tao", "cai", "neurfill-pkb", "neurfill-mm")


def validate_job(request: Request, allow_train: bool = True) -> str | None:
    """Cheap admission-time validation (full errors surface at run).

    Shared by the in-process server and the shard router so a bad job is
    rejected at the front end instead of travelling to a shard first.
    """
    params = request.params
    if "layout" not in params and "layout_path" not in params:
        return "params must include 'layout' or 'layout_path'"
    if request.op == "fill":
        method = params.get("method", "neurfill-pkb")
        if method not in FILL_METHODS:
            return (f"unknown method {method!r}; "
                    f"expected one of {FILL_METHODS}")
        if method.startswith("neurfill") and "model" not in params \
                and not allow_train:
            return ("no 'model' given and inline training is "
                    "disabled on this server")
    if request.op == "eco":
        if "model" not in params and not allow_train:
            return ("no 'model' given and inline training is "
                    "disabled on this server")
        if not any(key in params for key in
                   ("parent_fingerprint", "parent_fill", "parent_fill_path")):
            return ("eco params need 'parent_fingerprint' (a cached parent "
                    "solution) or an explicit 'parent_fill'/'parent_fill_path'")
        if ("parent_fill" in params or "parent_fill_path" in params) \
                and "parent_layout" not in params \
                and "parent_layout_path" not in params:
            return ("an explicit parent fill needs 'parent_layout' or "
                    "'parent_layout_path' to diff against")
    return None


class JobExecutor:
    """Executes admitted jobs with warm per-executor caches.

    Args:
        registry: model registry the executor binds surrogates from.
        simulator: shared simulator (default physics) for calibration,
            scoring and ``simulate`` jobs.
        stats: optional event sink for batch-size histograms.
        beta_runtime: calibrated-score knob, matching the one-shot CLI.
        allow_train: permit inline surrogate training for neurfill jobs
            without a registered model.
        max_bound_networks: bound-network/batcher cache entries; layout
            and coefficient cache sizes scale off this as in PR 3.
        max_batch / flush_ms: cross-job micro-batching knobs; pass
            ``max_batch=1`` to disable coalescing (the process-worker
            configuration — a child executor never sees concurrency).
        shard_id: tag added to ``serve.*`` job spans when this executor
            lives inside a shard of a :class:`~repro.serve.router.ShardRouter`.
        shadow: optional :class:`~repro.lifecycle.ShadowExecutor`; every
            registered-model fill is offered to it (it samples).  ``None``
            — the default — keeps the fill path exactly the
            pre-lifecycle one: no sampling counter, no extra branches
            beyond one ``is None`` check.
    """

    def __init__(self, registry: ModelRegistry | None = None, *,
                 simulator: CmpSimulator | None = None,
                 stats: ServeStats | None = None,
                 beta_runtime: float = 60.0,
                 allow_train: bool = True,
                 max_bound_networks: int = 8,
                 max_batch: int = 1,
                 flush_ms: float = 0.0,
                 shard_id: int | None = None,
                 shadow=None):
        self.registry = registry or ModelRegistry()
        self.simulator = simulator or CmpSimulator()
        self.stats = stats
        self.beta_runtime = beta_runtime
        self.allow_train = allow_train
        self.max_bound_networks = max_bound_networks
        self.max_batch = max_batch
        self.flush_ms = flush_ms
        self.shard_id = shard_id
        self.shadow = shadow
        self._layout_cache: OrderedDict[str, tuple[tuple, Layout, str]] = \
            OrderedDict()
        self._coeff_cache: OrderedDict[str, ScoreCoefficients] = OrderedDict()
        self._batchers: OrderedDict[tuple[str, str],
                                    tuple[CoalescedNetwork, MicroBatcher]] = \
            OrderedDict()
        self._sim_batcher = SimulateBatcher(
            max_batch=max_batch, max_delay_s=flush_ms / 1e3, stats=stats)
        # Parent solutions for incremental (eco) jobs, keyed by layout
        # fingerprint: every completed fill/eco deposits its result here
        # so a later edit of that layout can warm-start from it.
        self._solutions: OrderedDict[str, tuple[Layout, FillResult]] = \
            OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def execute(self, request: Request) -> dict:
        attrs: dict = {"job_id": request.id}
        if self.shard_id is not None:
            attrs["shard"] = self.shard_id
        with obs_trace.span(f"serve.{request.op}", cat="serve", **attrs):
            if request.op == "simulate":
                return self._simulate_job(request.params)
            if request.op == "eco":
                return self._eco_job(request.params, job_id=request.id)
            return self._fill_job(request.params, job_id=request.id)

    def close(self) -> None:
        """Drain and stop every flusher thread owned by this executor."""
        with self._lock:
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for _, batcher in batchers:
            batcher.close()
        self._sim_batcher.close()

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def _load_layout(self, params: dict) -> tuple[Layout, str]:
        if "layout" in params:
            layout = layout_from_dict(params["layout"])
            return layout, layout_fingerprint(layout)
        path = params.get("layout_path")
        if not isinstance(path, str) or not path:
            raise ValueError("params must include 'layout' or 'layout_path'")
        stat = Path(path).stat()
        stamp = (stat.st_mtime_ns, stat.st_size)
        with self._lock:
            cached = self._layout_cache.get(path)
            if cached is not None and cached[0] == stamp:
                self._layout_cache.move_to_end(path)
                return cached[1], cached[2]
        layout = load_layout(path)
        fingerprint = layout_fingerprint(layout)
        with self._lock:
            self._layout_cache[path] = (stamp, layout, fingerprint)
            self._layout_cache.move_to_end(path)
            while len(self._layout_cache) > 4 * self.max_bound_networks:
                self._layout_cache.popitem(last=False)
        return layout, fingerprint

    def _coefficients(self, layout: Layout,
                      fingerprint: str) -> ScoreCoefficients:
        """Calibrated coefficients, cached per layout content.

        Calibration runs one unfilled simulation; it is deterministic, so
        the cached value is bitwise what the one-shot CLI recomputes.
        """
        with self._lock:
            cached = self._coeff_cache.get(fingerprint)
            if cached is not None:
                self._coeff_cache.move_to_end(fingerprint)
                return cached
        coefficients = ScoreCoefficients.calibrated(
            layout, self.simulator, beta_runtime=self.beta_runtime)
        with self._lock:
            self._coeff_cache[fingerprint] = coefficients
            self._coeff_cache.move_to_end(fingerprint)
            while len(self._coeff_cache) > 8 * self.max_bound_networks:
                self._coeff_cache.popitem(last=False)
        return coefficients

    def _coalesced_network(self, model_name: str, layout: Layout,
                           fingerprint: str):
        """(coalesced network, model snapshot) for a registered model.

        Batchers are keyed by *(model, fingerprint, generation, stamp)*
        so a hot swap never coalesces old- and new-generation
        evaluations in one batch; when a new generation's batcher is
        installed, stale same-model entries are evicted.  Closing an
        evicted batcher is safe for in-flight jobs still holding its
        coalesced wrapper: a closed batcher falls back to direct
        evaluation, so those jobs finish on the old generation's
        weights — the no-drain half of the swap guarantee.
        """
        network, model = self.registry.bind(model_name, layout, fingerprint)
        token = (model.generation, model.stamp)
        key = (model_name, fingerprint) + token
        with self._lock:
            entry = self._batchers.get(key)
            if entry is not None:
                self._batchers.move_to_end(key)
                return entry[0], model
        batcher = MicroBatcher(
            network, max_batch=self.max_batch,
            max_delay_s=self.flush_ms / 1e3, stats=self.stats,
        )
        coalesced = CoalescedNetwork(network, batcher)
        evicted: list[MicroBatcher] = []
        with self._lock:
            if key in self._batchers:  # lost a bind race; keep the winner
                evicted.append(batcher)
                self._batchers.move_to_end(key)
                coalesced = self._batchers[key][0]
            else:
                for stale in [k for k in self._batchers
                              if k[0] == model_name and k[2:] != token]:
                    evicted.append(self._batchers.pop(stale)[1])
                self._batchers[key] = (coalesced, batcher)
                self._batchers.move_to_end(key)
                while len(self._batchers) > self.max_bound_networks:
                    evicted.append(self._batchers.popitem(last=False)[1][1])
        for old in evicted:
            old.close()
        return coalesced, model

    def _remember_solution(self, fingerprint: str, layout: Layout,
                           result: FillResult) -> None:
        """Deposit a solved fill as a warm-start parent for eco jobs."""
        with self._lock:
            self._solutions[fingerprint] = (layout, result)
            self._solutions.move_to_end(fingerprint)
            while len(self._solutions) > 8 * self.max_bound_networks:
                self._solutions.popitem(last=False)

    def solution_for(self, fingerprint: str) -> tuple[Layout, FillResult] | None:
        """The cached parent solution for a layout fingerprint, if any."""
        with self._lock:
            cached = self._solutions.get(fingerprint)
            if cached is not None:
                self._solutions.move_to_end(fingerprint)
            return cached

    # ------------------------------------------------------------------
    # Job kinds
    # ------------------------------------------------------------------
    def _fill_job(self, params: dict, job_id: str | None = None) -> dict:
        layout, fingerprint = self._load_layout(params)
        method = params.get("method", "neurfill-pkb")
        problem = FillProblem(layout, self._coefficients(layout, fingerprint))
        network = None
        bound_model = None
        if method == "lin":
            result = lin_fill(problem)
        elif method == "tao":
            result = tao_fill(problem)
        elif method == "cai":
            result = cai_fill(problem, simulator=self.simulator,
                              max_sqp_iterations=3)
        else:
            model_name = params.get("model")
            if model_name is not None:
                network, bound_model = self._coalesced_network(
                    str(model_name), layout, fingerprint)
            else:
                if not self.allow_train:
                    raise ValueError(
                        "no 'model' given and inline training is disabled")
                network, _, _ = pretrain_surrogate(
                    [layout], layout,
                    sample_count=int(params.get("train_samples", 30)),
                    tile_rows=layout.grid.rows, tile_cols=layout.grid.cols,
                    base_channels=8, depth=2,
                    config=TrainConfig(
                        epochs=int(params.get("train_epochs", 20)),
                        batch_size=8),
                    simulator=self.simulator,
                    seed=int(params.get("seed", 0)),
                )
            neurfill = NeurFill(
                problem, network,
                optimizer=SqpOptimizer(max_iter=80, tol=1e-9),
                simulator=self.simulator,
            )
            result = neurfill.run(
                method,
                seed=int(params.get("seed", 0)),
                max_evaluations=int(params.get("max_evaluations", 500)),
                top_k=int(params.get("top_k", 3)),
            )
        self._remember_solution(fingerprint, layout, result)
        payload = {
            "method": result.method,
            "layout": layout.name,
            # The fingerprint keys the cached solution; clients pass it
            # back as parent_fingerprint on eco jobs, and the shard
            # router learns cache affinity from it.
            "layout_fingerprint": fingerprint,
            "quality": result.quality,
            "total_fill": result.total_fill,
            "runtime_s": result.runtime_s,
            "evaluations": result.evaluations,
            "starts": result.starts,
        }
        if bound_model is not None:
            payload["generation"] = bound_model.generation
            if self.shadow is not None:
                self.shadow.submit(
                    job_id=job_id or "", model=bound_model.name,
                    generation=bound_model.generation, layout=layout,
                    fill=result.fill, network=network)
        if params.get("score", True):
            score = evaluate_solution(problem, result.fill, method,
                                      self.simulator,
                                      runtime_s=result.runtime_s)
            payload["score"] = {
                "delta_h": score.delta_h,
                "quality": score.quality,
                "overall": score.overall,
            }
        if params.get("return_fill"):
            payload["fill"] = result.fill.tolist()
        fill_out = params.get("fill_out")
        if fill_out:
            np.savez(fill_out, fill=result.fill)
            payload["fill_out"] = str(fill_out)
        return payload

    def _resolve_parent(self, params: dict) -> tuple[Layout, FillResult | np.ndarray]:
        """The parent solution an eco job warm-starts from.

        Preference order: the executor's solution cache (keyed by
        ``parent_fingerprint``), then an explicit ``parent_fill`` /
        ``parent_fill_path`` with its parent layout.
        """
        fingerprint = params.get("parent_fingerprint")
        if isinstance(fingerprint, str) and fingerprint:
            cached = self.solution_for(fingerprint)
            if cached is not None:
                return cached
        if "parent_fill" in params or "parent_fill_path" in params:
            if "parent_layout" in params:
                parent_layout = layout_from_dict(params["parent_layout"])
            elif "parent_layout_path" in params:
                parent_layout, _ = self._load_layout(
                    {"layout_path": params["parent_layout_path"]})
            else:
                raise ValueError(
                    "an explicit parent fill needs 'parent_layout' or "
                    "'parent_layout_path' to diff against")
            if "parent_fill" in params:
                fill = np.asarray(params["parent_fill"], dtype=float)
            else:
                with np.load(params["parent_fill_path"]) as data:
                    fill = np.asarray(data["fill"], dtype=float)
            return parent_layout, fill
        raise ValueError(
            f"parent solution {fingerprint!r} is not cached on this worker; "
            "re-run the parent fill here or pass parent_fill/parent_layout "
            "explicitly")

    def _eco_job(self, params: dict, job_id: str | None = None) -> dict:
        layout, fingerprint = self._load_layout(params)
        parent_layout, parent = self._resolve_parent(params)
        problem = FillProblem(layout, self._coefficients(layout, fingerprint))
        model_name = params.get("model")
        bound_model = None
        if model_name is not None:
            # Direct (uncoalesced) binding: the eco driver evaluates
            # through cropped region passes the micro-batcher cannot
            # coalesce anyway.
            network, bound_model = self.registry.bind(
                str(model_name), layout, fingerprint)
        else:
            if not self.allow_train:
                raise ValueError(
                    "no 'model' given and inline training is disabled")
            network, _, _ = pretrain_surrogate(
                [layout], layout,
                sample_count=int(params.get("train_samples", 30)),
                tile_rows=layout.grid.rows, tile_cols=layout.grid.cols,
                base_channels=8, depth=2,
                config=TrainConfig(
                    epochs=int(params.get("train_epochs", 20)),
                    batch_size=8),
                simulator=self.simulator,
                seed=int(params.get("seed", 0)),
            )
        coupling = params.get("coupling_radius")
        result = eco_refill(
            problem, network, parent_layout, parent,
            optimizer=SqpOptimizer(max_iter=80, tol=1e-9),
            coupling_radius=None if coupling is None else int(coupling),
        )
        # Chained ECOs warm-start from the freshest solution of this
        # layout content.
        self._remember_solution(fingerprint, layout, result)
        payload = {
            "method": result.method,
            "layout": layout.name,
            "layout_fingerprint": fingerprint,
            "quality": result.quality,
            "total_fill": result.total_fill,
            "runtime_s": result.runtime_s,
            "evaluations": result.evaluations,
            "starts": result.starts,
            "eco": result.extras.get("eco", {}),
        }
        if bound_model is not None:
            payload["generation"] = bound_model.generation
            if self.shadow is not None:
                self.shadow.submit(
                    job_id=job_id or "", model=bound_model.name,
                    generation=bound_model.generation, layout=layout,
                    fill=result.fill, network=network)
        if params.get("score", True):
            score = evaluate_solution(problem, result.fill, result.method,
                                      self.simulator,
                                      runtime_s=result.runtime_s)
            payload["score"] = {
                "delta_h": score.delta_h,
                "quality": score.quality,
                "overall": score.overall,
            }
        if params.get("return_fill"):
            payload["fill"] = result.fill.tolist()
        fill_out = params.get("fill_out")
        if fill_out:
            np.savez(fill_out, fill=result.fill)
            payload["fill_out"] = str(fill_out)
        return payload

    def _simulate_job(self, params: dict) -> dict:
        layout, _ = self._load_layout(params)
        simulator = self.simulator
        polish_time = params.get("polish_time")
        if polish_time:
            from ..cmp import ProcessParams
            simulator = CmpSimulator(
                ProcessParams(polish_time_s=float(polish_time)))
        # Route through the simulate coalescer: concurrent simulate jobs
        # sharing this physics and grid polish as one batched pass,
        # bitwise identical to simulate_layout.
        result = self._sim_batcher.simulate(apply_fill(layout), simulator)
        delta_h, sigma, line, outliers = planarity_metrics(result.height)
        return {
            "layout": layout.name,
            "rows": layout.grid.rows,
            "cols": layout.grid.cols,
            "layers": layout.num_layers,
            "delta_h": delta_h,
            "sigma": sigma,
            "line_deviation": line,
            "outliers": outliers,
            "mean_dishing": float(result.dishing.mean()),
            "mean_erosion": float(result.erosion.mean()),
        }
