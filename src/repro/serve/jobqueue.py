"""Bounded priority job queue with backpressure, cancellation, deadlines.

The queue is the service's admission-control point:

* **backpressure** — :meth:`BoundedJobQueue.put` refuses work beyond
  ``capacity`` instead of buffering unboundedly; the server turns that
  into an immediate ``rejected`` response so clients can retry or shed;
* **priorities** — higher ``priority`` dequeues first, FIFO within a
  priority level (a monotonically increasing sequence number breaks
  ties, so equal-priority jobs never starve each other);
* **cancellation** — lazy removal: a cancelled entry stays in the heap
  but is skipped on pop, making cancel O(1);
* **deadlines** — jobs carry an absolute monotonic deadline; expired
  entries are swept with :meth:`expire_due` or skipped at pop time.
"""

from __future__ import annotations

import enum
import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from .protocol import Request


class JobState(str, enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"
    WORKER_DIED = "worker_died"


@dataclass
class Job:
    """One accepted unit of work plus its reply channel."""

    request: Request
    reply: Callable[[dict], None]
    accepted_at: float = field(default_factory=time.monotonic)
    deadline: float | None = None
    state: JobState = JobState.PENDING
    started_at: float | None = None

    def __post_init__(self) -> None:
        if self.deadline is None and self.request.timeout_s is not None:
            self.deadline = self.accepted_at + self.request.timeout_s

    @property
    def id(self) -> str:
        return self.request.id

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline


class BoundedJobQueue:
    """Thread-safe bounded priority queue of :class:`Job` entries."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: list[tuple[int, int, Job]] = []
        self._by_id: dict[str, Job] = {}
        self._seq = 0
        self._live = 0
        self._closed = False
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    def put(self, job: Job) -> bool:
        """Enqueue; ``False`` when at capacity or closed (backpressure)."""
        with self._cond:
            if self._closed or self._live >= self.capacity:
                return False
            if job.id in self._by_id:
                return False  # duplicate ids would make cancel ambiguous
            self._seq += 1
            heapq.heappush(
                self._heap, (-job.request.priority, self._seq, job)
            )
            self._by_id[job.id] = job
            self._live += 1
            self._cond.notify()
            return True

    def get(self, timeout: float | None = None) -> Job | None:
        """Pop the highest-priority pending job; ``None`` on timeout/close.

        Cancelled entries are discarded silently (their terminal response
        was already sent at cancel time).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.state is not JobState.PENDING:
                        continue  # lazily removed (cancelled/expired)
                    self._by_id.pop(job.id, None)
                    self._live -= 1
                    job.state = JobState.RUNNING
                    job.started_at = time.monotonic()
                    return job
                if self._closed:
                    return None
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Job | None:
        """Cancel a pending job; returns it, or ``None`` if not pending."""
        with self._cond:
            job = self._by_id.pop(job_id, None)
            if job is None:
                return None
            job.state = JobState.CANCELLED
            self._live -= 1
            return job

    def drain_pending(self) -> list[Job]:
        """Cancel and return every pending job (non-drain shutdown)."""
        with self._cond:
            drained = [j for j in self._by_id.values()
                       if j.state is JobState.PENDING]
            for job in drained:
                job.state = JobState.CANCELLED
            self._by_id.clear()
            self._live = 0
        return drained

    def expire_due(self, now: float | None = None) -> list[Job]:
        """Remove and return every pending job past its deadline."""
        now = time.monotonic() if now is None else now
        expired = []
        with self._cond:
            for job in list(self._by_id.values()):
                if job.state is JobState.PENDING and job.expired(now):
                    job.state = JobState.TIMEOUT
                    del self._by_id[job.id]
                    self._live -= 1
                    expired.append(job)
        return expired

    # ------------------------------------------------------------------
    def depth(self) -> int:
        with self._cond:
            return self._live

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop accepting and wake every blocked :meth:`get`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
