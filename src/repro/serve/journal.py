"""Crash-safe journal of accepted-but-unfinished job specs.

Append-only JSONL with two event kinds::

    {"event": "accept", "id": "j1", "request": {...full request...}}
    {"event": "done",   "id": "j1", "status": "done"}

``accept`` lines are fsync'd before the job is admitted, so a job the
client saw accepted survives a server crash; ``done`` lines are flushed
but not fsync'd (losing one merely re-runs an idempotent job on resume
— at-least-once semantics).  On restart, :meth:`JobJournal.recover`
replays the file, returns every accepted spec without a matching
``done``, and truncates the journal so the new process starts clean.
A half-written trailing line (the crash case) is ignored.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from .protocol import Request

_TERMINAL_EVENT = "done"
_ACCEPT_EVENT = "accept"


class JobJournal:
    """Append-only accept/done log for one server process."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def record_accept(self, request: Request) -> None:
        """Durably log an accepted job before it is enqueued."""
        self._append(
            {"event": _ACCEPT_EVENT, "id": request.id,
             "request": request.to_wire()},
            fsync=True,
        )

    def record_done(self, job_id: str, status: str,
                    generation: int | None = None) -> None:
        """Log a terminal outcome (done/error/cancelled/timeout/...).

        ``generation`` records which model generation computed the
        result (lifecycle audit trail across hot swaps); ``None`` for
        jobs that did not bind a registered model.
        """
        entry: dict = {"event": _TERMINAL_EVENT, "id": job_id,
                       "status": status}
        if generation is not None:
            entry["generation"] = int(generation)
        self._append(entry, fsync=False)

    def record_swap(self, model: str, generation: int,
                    directory: str) -> None:
        """Log a completed hot swap (audit marker between generations).

        Replay ignores unknown events, so old readers skip these lines;
        they let an auditor split a journal into per-generation epochs.
        """
        self._append(
            {"event": "swap", "model": model, "generation": int(generation),
             "directory": directory},
            fsync=True,
        )

    def _append(self, entry: dict, fsync: bool) -> None:
        line = json.dumps(entry, separators=(",", ":"))
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()
            if fsync:
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    # ------------------------------------------------------------------
    @staticmethod
    def read_pending(path: str | Path) -> list[dict]:
        """Replay a journal; return accepted-without-done request dicts.

        Tolerates a truncated final line (interrupted write during a
        crash) and unknown events (forward compatibility).
        """
        path = Path(path)
        if not path.is_file():
            return []
        pending: dict[str, dict] = {}
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write at crash time
            if not isinstance(entry, dict):
                continue
            event, job_id = entry.get("event"), entry.get("id")
            if not isinstance(job_id, str):
                continue
            if event == _ACCEPT_EVENT and isinstance(entry.get("request"), dict):
                pending[job_id] = entry["request"]
            elif event == _TERMINAL_EVENT:
                pending.pop(job_id, None)
        return list(pending.values())

    @staticmethod
    def read_requests(path: str | Path,
                      job_ids: list[str] | None = None) -> dict[str, dict]:
        """Accepted request dicts by job id (optionally filtered).

        The lifecycle manager uses this to snapshot the layouts of
        drift-offending jobs into a retrain augmentation set.
        """
        path = Path(path)
        if not path.is_file():
            return {}
        wanted = set(job_ids) if job_ids is not None else None
        requests: dict[str, dict] = {}
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(entry, dict) \
                    or entry.get("event") != _ACCEPT_EVENT:
                continue
            job_id = entry.get("id")
            if not isinstance(job_id, str):
                continue
            if wanted is not None and job_id not in wanted:
                continue
            if isinstance(entry.get("request"), dict):
                requests[job_id] = entry["request"]
        return requests

    @staticmethod
    def read_dones(path: str | Path) -> list[dict]:
        """All terminal entries in order (id, status, generation?)."""
        path = Path(path)
        if not path.is_file():
            return []
        dones = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) \
                    and entry.get("event") == _TERMINAL_EVENT:
                dones.append(entry)
        return dones

    @classmethod
    def recover(cls, path: str | Path) -> tuple[list[dict], "JobJournal"]:
        """Read pending specs, truncate, and reopen the journal.

        The caller resubmits the returned specs through the normal accept
        path, which re-records them in the fresh journal — so a second
        crash during resume still loses nothing.
        """
        path = Path(path)
        pending = cls.read_pending(path)
        if path.is_file():
            path.unlink()
        return pending, cls(path)
