"""Forked worker processes: the GIL-free serve worker pool.

Thread workers (PR 3) share one interpreter, so numpy-heavy fill jobs
contend on the GIL and throughput flattens as clients grow.  This module
moves job *execution* — layout load, coefficient calibration, surrogate
binding, MSP-SQP fill — into long-lived child processes, each owning a
private warm :class:`~repro.serve.executor.JobExecutor` (its own
:class:`~repro.serve.registry.ModelRegistry`, layout/coefficient caches,
and simulator).  The parent keeps everything else: admission, the
bounded queue, deadlines, the journal and stats.

Transport is one duplex pipe per child carrying the *protocol's own*
line encoding: the parent sends ``encode(request.to_wire())`` bytes; the
child answers with ``encode({...})`` frames —

* ``{"kind": "ready", "pid": ..., "plans": N}`` once booted (``plans``
  counts warm conv-dispatch plans, see :func:`_child_bootstrap`);
* ``{"kind": "hb", "pid": ...}`` heartbeats from a dedicated thread,
  flowing even while the main thread is deep in a fill;
* ``{"kind": "result", "job": id, "status": "done"|"error", ...}`` with
  the result payload passed through :func:`~repro.serve.protocol.json_safe`
  — exactly the NaN-safe sanitisation the client response gets, so the
  bytes a client receives are identical in thread and process mode.

Crash containment: a child that dies mid-job (OOM kill, segfault, SIGKILL)
is detected by the waiting parent thread, the job is failed with the
distinguishable ``worker_died`` terminal status (never silently lost — a
client can safely retry, the job did not complete), and the worker slot
is respawned.  Idle children are watched by a monitor thread and
respawned on death too.

Children are started with the ``fork`` start method where available
(PR 1's parallel datagen proved cross-process simulation byte-identical
under fork); ``spawn`` is the fallback on platforms without it.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..lifecycle.monitor import ShadowExecutor
from . import protocol
from .executor import JobExecutor
from .protocol import ProtocolError, Request
from .registry import ModelRegistry
from .stats import ServeStats


class WorkerDiedError(RuntimeError):
    """The child process executing a job died before returning a result."""


class RemoteJobError(RuntimeError):
    """The job raised inside the child; carries the child's error string."""


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a child needs to build its executor (picklable).

    ``models`` entries are ``(name, checkpoint_dir)`` or
    ``(name, checkpoint_dir, generation)``; ``shadow_sample_rate > 0``
    gives each child its own drift-monitor shadow executor whose
    residual records stream to the parent as ``{"kind": "residual"}``
    pipe frames.
    """

    models: tuple[tuple, ...] = ()
    beta_runtime: float = 60.0
    allow_train: bool = True
    max_bound_networks: int = 8
    heartbeat_s: float = 2.0
    shadow_sample_rate: float = 0.0
    drift_bound: float = 50.0


def _mp_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _child_bootstrap() -> int:
    """Per-fork initialisation; returns the number of warm conv plans.

    Validates ``REPRO_CONV_BACKEND`` eagerly (a typo should fail the
    worker at boot, not the first job) and force-loads the persisted
    conv dispatch plan cache (``~/.cache/repro/conv_plans.json`` or
    ``REPRO_CONV_PLAN_CACHE``) so a child reuses calibrated plans
    instead of re-benchmarking every backend once per fork.  The file is
    re-read even if the parent had already loaded it — fork inherits the
    parent's loaded-guard, and the file on disk (written by any process,
    possibly after the parent loaded) is the authoritative plan set.
    When persistence is disabled the inherited in-memory table is kept.
    """
    from ..config import conv_backend_override, conv_plan_cache_path
    from ..nn import dispatch

    conv_backend_override()
    if conv_plan_cache_path() is not None:
        dispatch.clear_caches(reload_persisted=True)
    return dispatch.warm_plan_cache()


def _worker_main(conn, spec: WorkerSpec) -> None:
    """Child entry point: execute request lines until the pipe closes."""
    # The child never traces/aggregates for the parent; start its global
    # metrics registry clean rather than inheriting the parent's samples.
    from ..obs import metrics as obs_metrics
    obs_metrics.reset()

    plans = _child_bootstrap()
    registry = ModelRegistry(max_bound=spec.max_bound_networks)
    for name, directory, *rest in spec.models:
        registry.register(name, directory,
                          generation=int(rest[0]) if rest else None)
    executor = JobExecutor(
        registry=registry,
        beta_runtime=spec.beta_runtime,
        allow_train=spec.allow_train,
        max_bound_networks=spec.max_bound_networks,
        max_batch=1,  # one job at a time per child; no cross-job traffic
    )

    send_lock = threading.Lock()

    def send(payload: dict) -> None:
        line = protocol.encode(payload)
        with send_lock:
            try:
                conn.send_bytes(line.encode())
            except (BrokenPipeError, OSError, ValueError):
                pass  # parent is gone; the loop will exit on recv

    if spec.shadow_sample_rate > 0:
        # Each child samples its own served fills; the parent folds the
        # streamed residual frames into one fleet-wide drift window.
        executor.shadow = ShadowExecutor(
            simulator=executor.simulator,
            sample_rate=spec.shadow_sample_rate,
            drift_bound=spec.drift_bound,
            sink=lambda record: send({"kind": "residual",
                                      **record.to_wire()}),
        )

    def handle_control(message: dict) -> None:
        """Apply a parent control frame (hot swap) and ack it."""
        action = message.get("action")
        if action != "swap":
            send({"kind": "control_error", "action": action,
                  "error": f"unknown control action {action!r}"})
            return
        name = str(message.get("model"))
        directory = str(message.get("directory"))
        generation = message.get("generation")
        generation = int(generation) if generation is not None else None
        try:
            try:
                registry.swap(name, directory, generation)
            except KeyError:  # model arrived after this child forked
                registry.register(name, directory, generation)
            except ValueError:
                # Already at (or past) this generation — e.g. a respawn
                # that booted from the post-swap spec.  Not an error.
                if generation is None \
                        or registry.generation_of(name) < generation:
                    raise
        except Exception as exc:
            send({"kind": "control_error", "action": "swap",
                  "model": name, "error": str(exc)})
            return
        send({"kind": "control_ok", "action": "swap", "model": name,
              "generation": registry.generation_of(name)})

    send({"kind": "ready", "pid": os.getpid(), "plans": plans})

    stop = threading.Event()

    def heartbeat_loop() -> None:
        while not stop.wait(spec.heartbeat_s):
            send({"kind": "hb", "pid": os.getpid()})

    hb_thread = threading.Thread(target=heartbeat_loop, daemon=True,
                                 name="repro-serve-proc-hb")
    hb_thread.start()
    try:
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                break  # parent closed the pipe: clean shutdown
            line = raw.decode("utf-8")
            try:
                frame = protocol.decode(line)
            except ProtocolError:
                frame = {}
            if isinstance(frame, dict) and frame.get("kind") == "control":
                handle_control(frame)
                continue
            try:
                request = protocol.parse_request(line)
            except ProtocolError as exc:  # impossible from our parent
                send({"kind": "result", "job": None, "status": "error",
                      "error": str(exc)})
                continue
            try:
                result = executor.execute(request)
            except Exception as exc:  # job failure must not kill the child
                send({"kind": "result", "job": request.id,
                      "status": "error", "error": str(exc)})
            else:
                send({"kind": "result", "job": request.id, "status": "done",
                      "result": protocol.json_safe(result)})
    finally:
        stop.set()
        if executor.shadow is not None:
            executor.shadow.close()
        executor.close()


class _WorkerHandle:
    """One child process slot; respawned in place when the child dies."""

    def __init__(self, index: int, spec: WorkerSpec, ctx,
                 start_timeout_s: float = 60.0, on_frame=None):
        self.index = index
        self.spec = spec
        self.ctx = ctx
        self.start_timeout_s = start_timeout_s
        self.on_frame = on_frame
        self.process = None
        self.conn = None
        self.pid: int | None = None
        self.boot_plans = 0
        self.last_heartbeat: float | None = None
        self.jobs = 0
        self.in_use = False
        #: Highest pool swap sequence this child has applied (or booted
        #: with).  Lagging handles are caught up lazily at acquire time.
        self.swap_seq = 0
        self.spawn()

    # ------------------------------------------------------------------
    def spawn(self) -> None:
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        process = self.ctx.Process(
            target=_worker_main, args=(child_conn, self.spec),
            name=f"repro-serve-proc-{self.index}", daemon=True,
        )
        process.start()
        child_conn.close()
        self.process, self.conn = process, parent_conn
        deadline = time.monotonic() + self.start_timeout_s
        while True:
            if parent_conn.poll(0.05):
                try:
                    message = self._recv()
                except (EOFError, OSError):
                    raise WorkerDiedError(
                        f"worker {self.index} closed its pipe during boot")
                if message.get("kind") == "ready":
                    self.pid = int(message.get("pid") or process.pid)
                    self.boot_plans = int(message.get("plans") or 0)
                    self.last_heartbeat = time.monotonic()
                    return
            elif not process.is_alive():
                raise WorkerDiedError(
                    f"worker {self.index} died during boot "
                    f"(exitcode {process.exitcode})")
            elif time.monotonic() > deadline:
                raise WorkerDiedError(
                    f"worker {self.index} did not become ready within "
                    f"{self.start_timeout_s}s")

    def _recv(self) -> dict:
        raw = self.conn.recv_bytes()
        message = protocol.decode(raw.decode("utf-8"))
        # Residual frames (child shadow executor) can interleave with
        # anything; dispatch them here so every recv loop forwards them.
        if message.get("kind") == "residual" and self.on_frame is not None:
            try:
                self.on_frame(message)
            except Exception:
                pass  # a monitor bug must never break the job channel
        return message

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def drain(self) -> None:
        """Consume queued heartbeats (called before dispatching a job)."""
        try:
            while self.conn.poll(0):
                self._recv()
                self.last_heartbeat = time.monotonic()
        except (EOFError, OSError):
            pass

    # ------------------------------------------------------------------
    def run(self, request: Request, poll_s: float = 0.1) -> dict:
        """Execute one request in the child; blocks until its result.

        Raises:
            WorkerDiedError: the child died before producing a result.
            RemoteJobError: the job raised inside the child.
        """
        line = protocol.encode(request.to_wire())
        self.jobs += 1
        try:
            self.conn.send_bytes(line.encode())
        except (BrokenPipeError, OSError):
            raise WorkerDiedError(
                f"worker pid {self.pid} died before accepting job "
                f"{request.id!r}")
        while True:
            try:
                if self.conn.poll(poll_s):
                    message = self._recv()
                else:
                    if not self.alive and not self.conn.poll(0):
                        raise WorkerDiedError(
                            f"worker pid {self.pid} died while executing "
                            f"job {request.id!r}")
                    continue
            except (EOFError, OSError):
                raise WorkerDiedError(
                    f"worker pid {self.pid} died while executing job "
                    f"{request.id!r}")
            self.last_heartbeat = time.monotonic()
            if message.get("kind") != "result":
                continue  # heartbeat
            if message.get("job") != request.id:
                continue  # stale frame from a previous incarnation
            if message.get("status") == "done":
                return message.get("result") or {}
            raise RemoteJobError(str(message.get("error", "worker error")))

    def control(self, payload: dict, timeout_s: float = 60.0) -> dict:
        """Send one control frame and wait for its ack.

        Only called on a claimed (``in_use``) handle, so no job result
        can interleave — just heartbeats and residual frames, which the
        wait loop skips.

        Raises:
            WorkerDiedError: the child died or timed out mid-control.
        """
        line = protocol.encode(payload)
        action = payload.get("action")
        try:
            self.conn.send_bytes(line.encode())
        except (BrokenPipeError, OSError):
            raise WorkerDiedError(
                f"worker pid {self.pid} died before control {action!r}")
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                if self.conn.poll(0.05):
                    message = self._recv()
                else:
                    if not self.alive and not self.conn.poll(0):
                        raise WorkerDiedError(
                            f"worker pid {self.pid} died during control "
                            f"{action!r}")
                    if time.monotonic() > deadline:
                        raise WorkerDiedError(
                            f"worker pid {self.pid} did not ack control "
                            f"{action!r} within {timeout_s}s")
                    continue
            except (EOFError, OSError):
                raise WorkerDiedError(
                    f"worker pid {self.pid} died during control {action!r}")
            self.last_heartbeat = time.monotonic()
            if message.get("kind") in ("control_ok", "control_error"):
                return message

    def close(self, timeout: float = 2.0) -> None:
        try:
            self.conn.close()  # child sees EOF and exits its loop
        except OSError:
            pass
        if self.process is not None:
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=timeout)

    def describe(self) -> dict:
        age = (None if self.last_heartbeat is None
               else round(time.monotonic() - self.last_heartbeat, 3))
        return {"index": self.index, "pid": self.pid, "alive": self.alive,
                "jobs": self.jobs, "heartbeat_age_s": age,
                "boot_plans": self.boot_plans}


class ProcessWorkerPool:
    """A fixed-size fleet of forked workers behind an acquire/run API.

    The server's worker threads call :meth:`run`; each call pins one
    child for the duration of the job, so at most ``workers`` jobs
    execute concurrently — in separate processes, free of the GIL.
    """

    def __init__(self, workers: int, spec: WorkerSpec | None = None,
                 stats: ServeStats | None = None, on_residual=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.spec = spec or WorkerSpec()
        self.stats = stats
        self.on_residual = on_residual
        self._ctx = _mp_context()
        self._handles: list[_WorkerHandle] = []
        self._cond = threading.Condition()
        self._closed = False
        self._monitor: threading.Thread | None = None
        self._swap_seq = 0
        #: Latest swap per model: name -> (directory, generation, seq).
        self._swaps: dict[str, tuple[str, int, int]] = {}
        # layout_fingerprint -> worker index, learned from done payloads.
        # Each forked child owns a *private* executor, so an eco job's
        # cached parent solution lives in exactly one child; prefer it.
        self._affinity: OrderedDict[str, int] = OrderedDict()

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._handles:
            return
        self._handles = [
            _WorkerHandle(i, self.spec, self._ctx,
                          on_frame=self.on_residual)
            for i in range(self.workers)
        ]
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-serve-proc-monitor",
            daemon=True)
        self._monitor.start()

    def close(self, timeout: float = 5.0) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for handle in self._handles:
            handle.close(timeout=timeout)

    # ------------------------------------------------------------------
    def swap(self, name: str, directory: str, generation: int) -> None:
        """Broadcast a checkpoint swap to the fleet, without respawning.

        Idle children reload the checkpoint immediately over their
        control channel; children busy with a job are caught up lazily
        right before their next job (:meth:`_acquire`) — the in-flight
        job finishes on the weights it bound.  The pool spec is updated
        too, so any future respawn boots straight into the new
        generation.
        """
        directory = str(directory)
        generation = int(generation)
        with self._cond:
            self._swap_seq += 1
            seq = self._swap_seq
            self._swaps[name] = (directory, generation, seq)
            entries: list[tuple] = []
            replaced = False
            for entry in self.spec.models:
                if entry[0] == name:
                    entries.append((name, directory, generation))
                    replaced = True
                else:
                    entries.append(tuple(entry))
            if not replaced:
                entries.append((name, directory, generation))
            self.spec = dataclasses.replace(self.spec,
                                            models=tuple(entries))
            for handle in self._handles:
                handle.spec = self.spec
            if self._closed:
                return
            idle = [handle for handle in self._handles
                    if not handle.in_use and handle.swap_seq < seq]
            for handle in idle:
                handle.in_use = True  # claim for the control round-trip
        for handle in idle:
            try:
                self._apply_swaps(handle)
            finally:
                self._release(handle)

    def _apply_swaps(self, handle: _WorkerHandle) -> None:
        """Bring one *claimed* worker up to the newest swap sequence."""
        with self._cond:
            pending = sorted(
                (seq, name, directory, generation)
                for name, (directory, generation, seq) in self._swaps.items()
                if seq > handle.swap_seq)
            target = self._swap_seq
        try:
            for _, name, directory, generation in pending:
                message = handle.control({
                    "kind": "control", "action": "swap", "model": name,
                    "directory": directory, "generation": generation})
                if message.get("kind") != "control_ok":
                    raise WorkerDiedError(
                        f"worker pid {handle.pid} refused swap of "
                        f"{name!r}: {message.get('error')}")
        except WorkerDiedError:
            # A respawn boots from the updated spec — same end state.
            self._revive(handle)
            return
        handle.swap_seq = target
        if self.stats is not None and pending:
            self.stats.incr("worker_swaps")

    def run(self, request: Request) -> dict:
        """Execute ``request`` on a free worker (see handle.run).

        ``eco`` jobs naming a ``parent_fingerprint`` wait for the worker
        that completed that layout's fill — its private executor holds
        the cached parent solution; any other child would reject the
        warm-start.  Other jobs take the first free worker.
        """
        prefer = None
        if request.op == "eco":
            parent = request.params.get("parent_fingerprint")
            if isinstance(parent, str) and parent:
                with self._cond:
                    prefer = self._affinity.get(parent)
        handle = self._acquire(prefer=prefer)
        try:
            result = handle.run(request)
        except WorkerDiedError:
            self._revive(handle)
            raise
        finally:
            self._release(handle)
        fingerprint = result.get("layout_fingerprint") \
            if isinstance(result, dict) else None
        if isinstance(fingerprint, str) and fingerprint:
            with self._cond:
                self._affinity[fingerprint] = handle.index
                self._affinity.move_to_end(fingerprint)
                while len(self._affinity) > 1024:
                    self._affinity.popitem(last=False)
        return result

    def _acquire(self, prefer: int | None = None) -> _WorkerHandle:
        with self._cond:
            while True:
                if self._closed:
                    raise WorkerDiedError("worker pool is closed")
                if prefer is not None and 0 <= prefer < len(self._handles):
                    handle = self._handles[prefer]
                    if handle.in_use:
                        self._cond.wait(1.0)
                        continue
                    handle.in_use = True
                    break
                for handle in self._handles:
                    if not handle.in_use:
                        handle.in_use = True
                        break
                else:
                    self._cond.wait(1.0)
                    continue
                break
        if not handle.alive:
            self._revive(handle)
        handle.drain()
        if handle.swap_seq < self._swap_seq:
            self._apply_swaps(handle)  # lazy catch-up after a busy swap
        return handle

    def _release(self, handle: _WorkerHandle) -> None:
        with self._cond:
            handle.in_use = False
            self._cond.notify()

    def _revive(self, handle: _WorkerHandle) -> None:
        """Respawn a dead worker in place (best effort; caller owns it)."""
        with self._cond:
            if self._closed:
                return
        handle.close(timeout=0.5)
        # Capture the sequence before spawning: the fresh child boots
        # from handle.spec, which reflects every swap up to this point;
        # a swap that lands mid-spawn keeps a higher seq and is applied
        # lazily at the next acquire.
        target = self._swap_seq
        try:
            handle.spawn()
        except WorkerDiedError:
            return  # next acquire retries; the slot stays claimable
        handle.swap_seq = target
        with self._cond:
            # The fresh child's executor caches are empty: any eco job
            # routed here by stale affinity would miss its parent.
            for fingerprint in [f for f, index in self._affinity.items()
                                if index == handle.index]:
                del self._affinity[fingerprint]
        if self.stats is not None:
            self.stats.incr("worker_respawns")

    def _monitor_loop(self) -> None:
        """Respawn idle workers that died between jobs."""
        while True:
            with self._cond:
                if self._closed:
                    return
                dead = None
                for handle in self._handles:
                    if not handle.in_use and not handle.alive:
                        handle.in_use = True  # claim for the respawn
                        dead = handle
                        break
            if dead is not None:
                self._revive(dead)
                self._release(dead)
                continue
            time.sleep(0.5)

    # ------------------------------------------------------------------
    def pids(self) -> list[int | None]:
        return [handle.pid for handle in self._handles]

    def describe(self) -> list[dict]:
        return [handle.describe() for handle in self._handles]
