"""Forked worker processes: the GIL-free serve worker pool.

Thread workers (PR 3) share one interpreter, so numpy-heavy fill jobs
contend on the GIL and throughput flattens as clients grow.  This module
moves job *execution* — layout load, coefficient calibration, surrogate
binding, MSP-SQP fill — into long-lived child processes, each owning a
private warm :class:`~repro.serve.executor.JobExecutor` (its own
:class:`~repro.serve.registry.ModelRegistry`, layout/coefficient caches,
and simulator).  The parent keeps everything else: admission, the
bounded queue, deadlines, the journal and stats.

Transport is one duplex pipe per child carrying the *protocol's own*
line encoding: the parent sends ``encode(request.to_wire())`` bytes; the
child answers with ``encode({...})`` frames —

* ``{"kind": "ready", "pid": ..., "plans": N}`` once booted (``plans``
  counts warm conv-dispatch plans, see :func:`_child_bootstrap`);
* ``{"kind": "hb", "pid": ...}`` heartbeats from a dedicated thread,
  flowing even while the main thread is deep in a fill;
* ``{"kind": "result", "job": id, "status": "done"|"error", ...}`` with
  the result payload passed through :func:`~repro.serve.protocol.json_safe`
  — exactly the NaN-safe sanitisation the client response gets, so the
  bytes a client receives are identical in thread and process mode.

Crash containment: a child that dies mid-job (OOM kill, segfault, SIGKILL)
is detected by the waiting parent thread, the job is failed with the
distinguishable ``worker_died`` terminal status (never silently lost — a
client can safely retry, the job did not complete), and the worker slot
is respawned.  Idle children are watched by a monitor thread and
respawned on death too.

Children are started with the ``fork`` start method where available
(PR 1's parallel datagen proved cross-process simulation byte-identical
under fork); ``spawn`` is the fallback on platforms without it.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field

from . import protocol
from .executor import JobExecutor
from .protocol import ProtocolError, Request
from .registry import ModelRegistry
from .stats import ServeStats


class WorkerDiedError(RuntimeError):
    """The child process executing a job died before returning a result."""


class RemoteJobError(RuntimeError):
    """The job raised inside the child; carries the child's error string."""


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a child needs to build its executor (picklable)."""

    models: tuple[tuple[str, str], ...] = ()
    beta_runtime: float = 60.0
    allow_train: bool = True
    max_bound_networks: int = 8
    heartbeat_s: float = 2.0


def _mp_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _child_bootstrap() -> int:
    """Per-fork initialisation; returns the number of warm conv plans.

    Validates ``REPRO_CONV_BACKEND`` eagerly (a typo should fail the
    worker at boot, not the first job) and force-loads the persisted
    conv dispatch plan cache (``~/.cache/repro/conv_plans.json`` or
    ``REPRO_CONV_PLAN_CACHE``) so a child reuses calibrated plans
    instead of re-benchmarking every backend once per fork.  The file is
    re-read even if the parent had already loaded it — fork inherits the
    parent's loaded-guard, and the file on disk (written by any process,
    possibly after the parent loaded) is the authoritative plan set.
    When persistence is disabled the inherited in-memory table is kept.
    """
    from ..config import conv_backend_override, conv_plan_cache_path
    from ..nn import dispatch

    conv_backend_override()
    if conv_plan_cache_path() is not None:
        dispatch.clear_caches(reload_persisted=True)
    return dispatch.warm_plan_cache()


def _worker_main(conn, spec: WorkerSpec) -> None:
    """Child entry point: execute request lines until the pipe closes."""
    # The child never traces/aggregates for the parent; start its global
    # metrics registry clean rather than inheriting the parent's samples.
    from ..obs import metrics as obs_metrics
    obs_metrics.reset()

    plans = _child_bootstrap()
    registry = ModelRegistry(max_bound=spec.max_bound_networks)
    for name, directory in spec.models:
        registry.register(name, directory)
    executor = JobExecutor(
        registry=registry,
        beta_runtime=spec.beta_runtime,
        allow_train=spec.allow_train,
        max_bound_networks=spec.max_bound_networks,
        max_batch=1,  # one job at a time per child; no cross-job traffic
    )

    send_lock = threading.Lock()

    def send(payload: dict) -> None:
        line = protocol.encode(payload)
        with send_lock:
            try:
                conn.send_bytes(line.encode())
            except (BrokenPipeError, OSError, ValueError):
                pass  # parent is gone; the loop will exit on recv

    send({"kind": "ready", "pid": os.getpid(), "plans": plans})

    stop = threading.Event()

    def heartbeat_loop() -> None:
        while not stop.wait(spec.heartbeat_s):
            send({"kind": "hb", "pid": os.getpid()})

    hb_thread = threading.Thread(target=heartbeat_loop, daemon=True,
                                 name="repro-serve-proc-hb")
    hb_thread.start()
    try:
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                break  # parent closed the pipe: clean shutdown
            try:
                request = protocol.parse_request(raw.decode("utf-8"))
            except ProtocolError as exc:  # impossible from our parent
                send({"kind": "result", "job": None, "status": "error",
                      "error": str(exc)})
                continue
            try:
                result = executor.execute(request)
            except Exception as exc:  # job failure must not kill the child
                send({"kind": "result", "job": request.id,
                      "status": "error", "error": str(exc)})
            else:
                send({"kind": "result", "job": request.id, "status": "done",
                      "result": protocol.json_safe(result)})
    finally:
        stop.set()
        executor.close()


class _WorkerHandle:
    """One child process slot; respawned in place when the child dies."""

    def __init__(self, index: int, spec: WorkerSpec, ctx,
                 start_timeout_s: float = 60.0):
        self.index = index
        self.spec = spec
        self.ctx = ctx
        self.start_timeout_s = start_timeout_s
        self.process = None
        self.conn = None
        self.pid: int | None = None
        self.boot_plans = 0
        self.last_heartbeat: float | None = None
        self.jobs = 0
        self.in_use = False
        self.spawn()

    # ------------------------------------------------------------------
    def spawn(self) -> None:
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        process = self.ctx.Process(
            target=_worker_main, args=(child_conn, self.spec),
            name=f"repro-serve-proc-{self.index}", daemon=True,
        )
        process.start()
        child_conn.close()
        self.process, self.conn = process, parent_conn
        deadline = time.monotonic() + self.start_timeout_s
        while True:
            if parent_conn.poll(0.05):
                try:
                    message = self._recv()
                except (EOFError, OSError):
                    raise WorkerDiedError(
                        f"worker {self.index} closed its pipe during boot")
                if message.get("kind") == "ready":
                    self.pid = int(message.get("pid") or process.pid)
                    self.boot_plans = int(message.get("plans") or 0)
                    self.last_heartbeat = time.monotonic()
                    return
            elif not process.is_alive():
                raise WorkerDiedError(
                    f"worker {self.index} died during boot "
                    f"(exitcode {process.exitcode})")
            elif time.monotonic() > deadline:
                raise WorkerDiedError(
                    f"worker {self.index} did not become ready within "
                    f"{self.start_timeout_s}s")

    def _recv(self) -> dict:
        raw = self.conn.recv_bytes()
        return protocol.decode(raw.decode("utf-8"))

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def drain(self) -> None:
        """Consume queued heartbeats (called before dispatching a job)."""
        try:
            while self.conn.poll(0):
                self._recv()
                self.last_heartbeat = time.monotonic()
        except (EOFError, OSError):
            pass

    # ------------------------------------------------------------------
    def run(self, request: Request, poll_s: float = 0.1) -> dict:
        """Execute one request in the child; blocks until its result.

        Raises:
            WorkerDiedError: the child died before producing a result.
            RemoteJobError: the job raised inside the child.
        """
        line = protocol.encode(request.to_wire())
        self.jobs += 1
        try:
            self.conn.send_bytes(line.encode())
        except (BrokenPipeError, OSError):
            raise WorkerDiedError(
                f"worker pid {self.pid} died before accepting job "
                f"{request.id!r}")
        while True:
            try:
                if self.conn.poll(poll_s):
                    message = self._recv()
                else:
                    if not self.alive and not self.conn.poll(0):
                        raise WorkerDiedError(
                            f"worker pid {self.pid} died while executing "
                            f"job {request.id!r}")
                    continue
            except (EOFError, OSError):
                raise WorkerDiedError(
                    f"worker pid {self.pid} died while executing job "
                    f"{request.id!r}")
            self.last_heartbeat = time.monotonic()
            if message.get("kind") != "result":
                continue  # heartbeat
            if message.get("job") != request.id:
                continue  # stale frame from a previous incarnation
            if message.get("status") == "done":
                return message.get("result") or {}
            raise RemoteJobError(str(message.get("error", "worker error")))

    def close(self, timeout: float = 2.0) -> None:
        try:
            self.conn.close()  # child sees EOF and exits its loop
        except OSError:
            pass
        if self.process is not None:
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=timeout)

    def describe(self) -> dict:
        age = (None if self.last_heartbeat is None
               else round(time.monotonic() - self.last_heartbeat, 3))
        return {"index": self.index, "pid": self.pid, "alive": self.alive,
                "jobs": self.jobs, "heartbeat_age_s": age,
                "boot_plans": self.boot_plans}


class ProcessWorkerPool:
    """A fixed-size fleet of forked workers behind an acquire/run API.

    The server's worker threads call :meth:`run`; each call pins one
    child for the duration of the job, so at most ``workers`` jobs
    execute concurrently — in separate processes, free of the GIL.
    """

    def __init__(self, workers: int, spec: WorkerSpec | None = None,
                 stats: ServeStats | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.spec = spec or WorkerSpec()
        self.stats = stats
        self._ctx = _mp_context()
        self._handles: list[_WorkerHandle] = []
        self._cond = threading.Condition()
        self._closed = False
        self._monitor: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._handles:
            return
        self._handles = [
            _WorkerHandle(i, self.spec, self._ctx)
            for i in range(self.workers)
        ]
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-serve-proc-monitor",
            daemon=True)
        self._monitor.start()

    def close(self, timeout: float = 5.0) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for handle in self._handles:
            handle.close(timeout=timeout)

    # ------------------------------------------------------------------
    def run(self, request: Request) -> dict:
        """Execute ``request`` on any free worker (see handle.run)."""
        handle = self._acquire()
        try:
            return handle.run(request)
        except WorkerDiedError:
            self._revive(handle)
            raise
        finally:
            self._release(handle)

    def _acquire(self) -> _WorkerHandle:
        with self._cond:
            while True:
                if self._closed:
                    raise WorkerDiedError("worker pool is closed")
                for handle in self._handles:
                    if not handle.in_use:
                        handle.in_use = True
                        break
                else:
                    self._cond.wait(1.0)
                    continue
                break
        if not handle.alive:
            self._revive(handle)
        handle.drain()
        return handle

    def _release(self, handle: _WorkerHandle) -> None:
        with self._cond:
            handle.in_use = False
            self._cond.notify()

    def _revive(self, handle: _WorkerHandle) -> None:
        """Respawn a dead worker in place (best effort; caller owns it)."""
        with self._cond:
            if self._closed:
                return
        handle.close(timeout=0.5)
        try:
            handle.spawn()
        except WorkerDiedError:
            return  # next acquire retries; the slot stays claimable
        if self.stats is not None:
            self.stats.incr("worker_respawns")

    def _monitor_loop(self) -> None:
        """Respawn idle workers that died between jobs."""
        while True:
            with self._cond:
                if self._closed:
                    return
                dead = None
                for handle in self._handles:
                    if not handle.in_use and not handle.alive:
                        handle.in_use = True  # claim for the respawn
                        dead = handle
                        break
            if dead is not None:
                self._revive(dead)
                self._release(dead)
                continue
            time.sleep(0.5)

    # ------------------------------------------------------------------
    def pids(self) -> list[int | None]:
        return [handle.pid for handle in self._handles]

    def describe(self) -> list[dict]:
        return [handle.describe() for handle in self._handles]
