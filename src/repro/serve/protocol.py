"""Line-delimited JSON protocol spoken by ``repro serve``.

One request or response per line, UTF-8, ``\\n``-terminated.  The same
framing works over a stdin/stdout pipe and a TCP socket, so clients in
any language need only a JSON encoder and ``readline``.

Request::

    {"id": "j1", "op": "fill", "priority": 5, "timeout_s": 30,
     "params": {"layout_path": "a.json", "method": "lin"}}

Responses (job ops get two: an immediate accept/reject, then a terminal
status; introspection ops get exactly one)::

    {"id": "j1", "ok": true,  "status": "accepted"}
    {"id": "j1", "ok": true,  "status": "done", "result": {...}}
    {"id": "j1", "ok": false, "status": "rejected", "error": "queue full"}

Floats survive the round trip bitwise: ``json`` serialises with
``repr``, the shortest representation that parses back to the identical
IEEE-754 double — fill vectors returned as nested lists are exact.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

#: Ops that enqueue work and get an ack + a terminal response.
JOB_OPS = frozenset({"fill", "eco", "simulate"})

#: Ops answered immediately by the transport thread.
IMMEDIATE_OPS = frozenset({"stats", "models", "cancel", "ping", "shutdown",
                           "lifecycle", "swap"})

OPS = JOB_OPS | IMMEDIATE_OPS

#: Response statuses that end a request's lifecycle.  ``worker_died``
#: distinguishes "the worker process executing this job crashed" from an
#: ordinary job ``error`` — clients can safely retry a ``worker_died``
#: job (it never completed), whereas an ``error`` reproduces.
TERMINAL_STATUSES = frozenset(
    {"done", "error", "rejected", "cancelled", "timeout", "worker_died"}
)

#: All response statuses (``accepted`` is the job ack).
STATUSES = TERMINAL_STATUSES | {"accepted"}

#: Statuses reported with ``ok: false``.
_FAILURE_STATUSES = frozenset(
    {"error", "rejected", "cancelled", "timeout", "worker_died"}
)


class ProtocolError(ValueError):
    """A line that does not parse into a valid request."""


@dataclass(frozen=True)
class Request:
    """One parsed client request."""

    id: str
    op: str
    params: dict = field(default_factory=dict)
    priority: int = 0
    timeout_s: float | None = None

    def to_wire(self) -> dict:
        """The JSON-compatible dict form (used by the job journal)."""
        wire: dict = {"id": self.id, "op": self.op}
        if self.params:
            wire["params"] = self.params
        if self.priority:
            wire["priority"] = self.priority
        if self.timeout_s is not None:
            wire["timeout_s"] = self.timeout_s
        return wire


def encode(message: dict) -> str:
    """Serialise one protocol message to a single line (no newline)."""
    line = json.dumps(message, separators=(",", ":"), allow_nan=False)
    if "\n" in line:  # impossible for json.dumps output; guard anyway
        raise ProtocolError("encoded message contains a newline")
    return line


def decode(line: str) -> dict:
    """Parse one line into a dict, rejecting non-object payloads."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}"
        )
    return message


def parse_request(line: str) -> Request:
    """Decode and validate one request line.

    Raises:
        ProtocolError: malformed JSON, unknown op, bad field types.
    """
    message = decode(line)
    op = message.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {sorted(OPS)}"
        )
    rid = message.get("id")
    if not isinstance(rid, str) or not rid:
        raise ProtocolError("missing or empty request id")
    params = message.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(f"params must be an object, got {params!r}")
    priority = message.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError(f"priority must be an integer, got {priority!r}")
    timeout_s = message.get("timeout_s")
    if timeout_s is not None:
        if not isinstance(timeout_s, (int, float)) or isinstance(timeout_s, bool) \
                or timeout_s <= 0:
            raise ProtocolError(
                f"timeout_s must be a positive number, got {timeout_s!r}"
            )
        timeout_s = float(timeout_s)
    return Request(id=rid, op=op, params=params, priority=priority,
                   timeout_s=timeout_s)


def json_safe(value):
    """Recursively replace non-finite floats with ``None``.

    ``encode`` refuses NaN/Infinity (``allow_nan=False``) because they
    are not JSON; rule-based fills legitimately report ``quality: nan``
    (no surrogate), so result payloads are sanitised rather than
    dropped.  Finite floats pass through untouched — bitwise transport
    of fill vectors is unaffected.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


def response(rid: str | None, status: str, result: dict | None = None,
             error: str | None = None) -> dict:
    """Build one response message; ``ok`` is derived from ``status``."""
    if status not in STATUSES:
        raise ValueError(f"unknown response status {status!r}")
    message: dict = {
        "id": rid,
        "ok": status not in _FAILURE_STATUSES,
        "status": status,
    }
    if result is not None:
        message["result"] = json_safe(result)
    if error is not None:
        message["error"] = error
    return message
