"""Model registry: named surrogate checkpoints, warm-loaded and re-bound.

Checkpoints are registered by name at startup (``repro serve --model
pkb=path/to/ckpt``) and warm-loaded immediately — the UNet weights and
normalizer come off disk once, so the first request pays no load
latency and a bad checkpoint fails the server at boot, not a client at
runtime.  Binding a loaded bundle to an incoming layout only computes
extraction constants; bound networks are cached per (model, layout
fingerprint) with a small LRU so memory stays bounded under many
distinct layouts.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..layout.io import layout_to_dict
from ..layout.layout import Layout
from ..surrogate.network import CmpNeuralNetwork
from ..surrogate.persist import (
    SurrogateBundle,
    bind_surrogate,
    load_surrogate_bundle,
)


def layout_fingerprint(layout: Layout) -> str:
    """Content hash of a layout (stable across processes and paths)."""
    payload = json.dumps(layout_to_dict(layout), sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()


def parse_model_spec(spec: str) -> tuple[str, str]:
    """Split a ``NAME=CHECKPOINT_DIR`` CLI spec into its two parts.

    Shared by the registry and the process pool / shard router, which
    ship specs (not live registries) to child processes that warm-load
    their own copies.
    """
    name, sep, directory = spec.partition("=")
    if not sep or not name or not directory:
        raise ValueError(
            f"bad model spec {spec!r}: expected NAME=CHECKPOINT_DIR"
        )
    return name, directory


@dataclass
class RegisteredModel:
    """One named checkpoint, already warm."""

    name: str
    directory: Path
    bundle: SurrogateBundle


class ModelRegistry:
    """Named surrogate checkpoints plus a bound-network LRU cache.

    Args:
        max_bound: bound-network cache entries kept per process.  Each
            entry holds one layout's extraction constants (a few arrays
            the size of the chip grid); the UNet weights are shared
            across all bindings of a model.
    """

    def __init__(self, max_bound: int = 8):
        if max_bound < 1:
            raise ValueError(f"max_bound must be >= 1, got {max_bound}")
        self.max_bound = max_bound
        self._models: dict[str, RegisteredModel] = {}
        self._bound: OrderedDict[tuple[str, str], CmpNeuralNetwork]
        self._bound = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def register(self, name: str, directory: str | Path) -> RegisteredModel:
        """Warm-load a checkpoint under ``name`` (replaces an old one)."""
        if not name:
            raise ValueError("model name must be non-empty")
        bundle = load_surrogate_bundle(directory)
        model = RegisteredModel(name=name, directory=Path(directory),
                                bundle=bundle)
        with self._lock:
            self._models[name] = model
            for key in [k for k in self._bound if k[0] == name]:
                del self._bound[key]  # stale bindings of a replaced model
        return model

    def register_spec(self, spec: str) -> RegisteredModel:
        """Register from a ``name=directory`` CLI spec."""
        return self.register(*parse_model_spec(spec))

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def describe(self) -> dict:
        """Registry contents for the ``models`` introspection op."""
        with self._lock:
            return {
                name: {
                    "directory": str(model.directory),
                    "arch": model.bundle.arch,
                    "numpy": model.bundle.metadata.get("numpy"),
                }
                for name, model in self._models.items()
            }

    # ------------------------------------------------------------------
    def network_for(self, name: str, layout: Layout,
                    fingerprint: str | None = None) -> CmpNeuralNetwork:
        """A bound network for (model, layout), from cache when warm.

        Raises:
            KeyError: unknown model name (message lists what exists).
        """
        with self._lock:
            if name not in self._models:
                raise KeyError(
                    f"unknown model {name!r}; registered: "
                    f"{sorted(self._models) or '(none)'}"
                )
            model = self._models[name]
        fingerprint = fingerprint or layout_fingerprint(layout)
        key = (name, fingerprint)
        with self._lock:
            cached = self._bound.get(key)
            if cached is not None:
                self._bound.move_to_end(key)
                return cached
        network = bind_surrogate(model.bundle, layout)
        with self._lock:
            self._bound[key] = network
            self._bound.move_to_end(key)
            while len(self._bound) > self.max_bound:
                self._bound.popitem(last=False)
        return network
