"""Model registry: named surrogate checkpoints, warm-loaded and re-bound.

Checkpoints are registered by name at startup (``repro serve --model
pkb=path/to/ckpt``) and warm-loaded immediately — the UNet weights and
normalizer come off disk once, so the first request pays no load
latency and a bad checkpoint fails the server at boot, not a client at
runtime.  Binding a loaded bundle to an incoming layout only computes
extraction constants; bound networks are cached per (model, layout
fingerprint) with a small LRU so memory stays bounded under many
distinct layouts.

Generations: every registered checkpoint carries a monotonically
increasing ``generation`` tag (explicit, or read from the checkpoint's
``surrogate.json``), and :meth:`ModelRegistry.swap` atomically rebinds a
name to a new checkpoint **without draining** — jobs that already bound
a network keep the old generation's weights; new binds see the new one.
Binding revalidates the checkpoint's content stamp (mtime + size, like
the PR 6 LRU caches) so a checkpoint overwritten in place is reloaded
rather than served stale.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..layout.io import layout_to_dict
from ..layout.layout import Layout
from ..surrogate.network import CmpNeuralNetwork
from ..surrogate.persist import (
    SurrogateBundle,
    bind_surrogate,
    checkpoint_stamp,
    load_surrogate_bundle,
)


def layout_fingerprint(layout: Layout) -> str:
    """Content hash of a layout (stable across processes and paths)."""
    payload = json.dumps(layout_to_dict(layout), sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()


def parse_model_spec(spec: str) -> tuple[str, str]:
    """Split a ``NAME=CHECKPOINT_DIR`` CLI spec into its two parts.

    Shared by the registry and the process pool / shard router, which
    ship specs (not live registries) to child processes that warm-load
    their own copies.
    """
    name, sep, directory = spec.partition("=")
    if not sep or not name or not directory:
        raise ValueError(
            f"bad model spec {spec!r}: expected NAME=CHECKPOINT_DIR"
        )
    return name, directory


@dataclass
class RegisteredModel:
    """One named checkpoint, already warm.

    ``generation`` tags every result the checkpoint serves (auditable
    per-generation fidelity); ``stamp`` is the on-disk content stamp at
    load time, used to detect in-place overwrites.
    """

    name: str
    directory: Path
    bundle: SurrogateBundle
    generation: int = 1
    stamp: tuple = field(default=())


class ModelRegistry:
    """Named surrogate checkpoints plus a bound-network LRU cache.

    Args:
        max_bound: bound-network cache entries kept per process.  Each
            entry holds one layout's extraction constants (a few arrays
            the size of the chip grid); the UNet weights are shared
            across all bindings of a model.
    """

    def __init__(self, max_bound: int = 8):
        if max_bound < 1:
            raise ValueError(f"max_bound must be >= 1, got {max_bound}")
        self.max_bound = max_bound
        self._models: dict[str, RegisteredModel] = {}
        self._bound: OrderedDict[tuple, CmpNeuralNetwork]
        self._bound = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @staticmethod
    def _load(name: str, directory: str | Path,
              generation: int | None) -> RegisteredModel:
        if not name:
            raise ValueError("model name must be non-empty")
        bundle = load_surrogate_bundle(directory)
        if generation is None:
            meta_generation = bundle.metadata.get("generation")
            generation = int(meta_generation) if meta_generation else 1
        return RegisteredModel(
            name=name, directory=Path(directory), bundle=bundle,
            generation=int(generation), stamp=checkpoint_stamp(directory))

    def _install(self, model: RegisteredModel) -> None:
        """Lock held by caller is NOT required; rebinds atomically."""
        with self._lock:
            self._models[model.name] = model
            for key in [k for k in self._bound if k[0] == model.name]:
                del self._bound[key]  # stale bindings of a replaced model

    def register(self, name: str, directory: str | Path,
                 generation: int | None = None) -> RegisteredModel:
        """Warm-load a checkpoint under ``name`` (replaces an old one).

        ``generation`` defaults to the checkpoint metadata's tag, or 1.
        """
        model = self._load(name, directory, generation)
        self._install(model)
        return model

    def register_spec(self, spec: str) -> RegisteredModel:
        """Register from a ``name=directory`` CLI spec."""
        return self.register(*parse_model_spec(spec))

    def swap(self, name: str, directory: str | Path,
             generation: int | None = None) -> RegisteredModel:
        """Atomically rebind ``name`` to a new checkpoint, no draining.

        The bundle is warm-loaded *before* the rebind, so the registry
        never serves a half-loaded model; in-flight jobs holding the old
        bound network finish on the old generation, new binds get the
        new one.  The generation must strictly increase (explicit arg >
        checkpoint metadata > current + 1).

        Raises:
            KeyError: ``name`` was never registered.
            ValueError: non-monotonic generation.
        """
        with self._lock:
            current = self._models.get(name)
        if current is None:
            raise KeyError(
                f"cannot swap unknown model {name!r}; register it first")
        bundle = load_surrogate_bundle(directory)
        if generation is None:
            meta_generation = bundle.metadata.get("generation")
            generation = (int(meta_generation) if meta_generation
                          else current.generation + 1)
        generation = int(generation)
        if generation <= current.generation:
            raise ValueError(
                f"swap generation must increase: model {name!r} is at "
                f"generation {current.generation}, got {generation}")
        model = RegisteredModel(
            name=name, directory=Path(directory), bundle=bundle,
            generation=generation, stamp=checkpoint_stamp(directory))
        self._install(model)
        return model

    def generation_of(self, name: str) -> int:
        with self._lock:
            if name not in self._models:
                raise KeyError(f"unknown model {name!r}")
            return self._models[name].generation

    def model(self, name: str) -> RegisteredModel:
        with self._lock:
            if name not in self._models:
                raise KeyError(
                    f"unknown model {name!r}; registered: "
                    f"{sorted(self._models) or '(none)'}")
            return self._models[name]

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def describe(self) -> dict:
        """Registry contents for the ``models`` introspection op."""
        with self._lock:
            return {
                name: {
                    "directory": str(model.directory),
                    "arch": model.bundle.arch,
                    "numpy": model.bundle.metadata.get("numpy"),
                    "generation": model.generation,
                }
                for name, model in self._models.items()
            }

    # ------------------------------------------------------------------
    def bind(self, name: str, layout: Layout,
             fingerprint: str | None = None
             ) -> tuple[CmpNeuralNetwork, RegisteredModel]:
        """A bound network plus the exact model snapshot that served it.

        Returning the :class:`RegisteredModel` lets callers tag results
        with the generation they were actually computed under, without a
        racy second lookup across a concurrent :meth:`swap`.

        The checkpoint's on-disk stamp is revalidated here: if the files
        changed under the registered path (overwritten in place), the
        checkpoint is reloaded before binding — a swapped-in-place file
        is never served stale.

        Raises:
            KeyError: unknown model name (message lists what exists).
        """
        model = self.model(name)
        try:
            stamp = checkpoint_stamp(model.directory)
        except OSError:
            stamp = model.stamp  # mid-rewrite; serve the warm copy
        if stamp != model.stamp:
            model = self.register(name, model.directory,
                                  generation=model.generation)
        fingerprint = fingerprint or layout_fingerprint(layout)
        key = (name, fingerprint, model.generation, model.stamp)
        with self._lock:
            cached = self._bound.get(key)
            if cached is not None:
                self._bound.move_to_end(key)
                return cached, model
        network = bind_surrogate(model.bundle, layout)
        with self._lock:
            self._bound[key] = network
            self._bound.move_to_end(key)
            while len(self._bound) > self.max_bound:
                self._bound.popitem(last=False)
        return network, model

    def network_for(self, name: str, layout: Layout,
                    fingerprint: str | None = None) -> CmpNeuralNetwork:
        """A bound network for (model, layout), from cache when warm."""
        return self.bind(name, layout, fingerprint)[0]
