"""Fingerprint-sharded serving fleet: one front end, N shard processes.

:class:`ShardRouter` presents the same transport surface as
:class:`~repro.serve.server.FillServer` (``start`` / ``handle_line`` /
``shutdown`` / ``wait_shutdown``) so :func:`~repro.serve.server.serve_pipe`
and :func:`~repro.serve.server.serve_tcp` drive either interchangeably.
Behind it, ``shards`` child processes each run a full journal-less
``FillServer``; the router owns what must be global:

* **admission** — validation, duplicate ids, per-shard backpressure
  (``queue_capacity`` outstanding jobs per shard);
* **the journal** — accepts fsync'd *before* dispatch, dones recorded as
  terminal responses return, so a full-fleet crash resumes exactly the
  accepted-but-unfinished jobs and a router restart re-routes them;
* **routing** — jobs hash to shards by *layout identity* (the inline
  layout's content or the layout path) via rendezvous (highest random
  weight) hashing.  Same layout → same shard, so each shard's bound
  networks, calibrated coefficients and layout cache stay warm for its
  slice of the traffic, and adding a shard remaps only ~1/N of keys.
  Fidelity is untouched: placement never changes *what* runs, only
  *where* — every shard executes the identical deterministic pipeline;
* **aggregation** — ``stats`` fans out to every shard and merges
  (summed counters, ``per_shard`` detail); ``models`` is answered by
  shard 0 (all shards load identical specs); ``cancel`` is forwarded to
  the owning shard.

Crash containment: a shard that dies takes only its in-flight jobs with
it.  The router respawns it, re-dispatches each lost job once (accepted
jobs are never silently dropped), and fails a twice-unlucky job with
``worker_died``.  Other shards never notice.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..lifecycle import STATE_FILENAME, LifecycleManager
from ..obs import trace as obs_trace
from ..surrogate.persist import read_checkpoint_meta
from . import protocol
from .executor import validate_job
from .journal import JobJournal
from .procpool import _mp_context
from .protocol import (
    IMMEDIATE_OPS,
    JOB_OPS,
    ProtocolError,
    Request,
    encode,
    parse_request,
    response,
)
from .registry import ModelRegistry
from .server import FillServer, ServeConfig, _safe_reply
from .stats import ServeStats

#: Prefix of router-internal request ids sent to shards (never collides
#: with client ids, which the router rejects if they start with this).
_INTERNAL = "__router__:"


def routing_key(params: dict) -> str:
    """The layout-identity string a job is routed by.

    Inline layouts hash by canonical JSON content (same layout, same
    key, regardless of dict ordering); path jobs route by the path —
    the shard's mtime-validated layout cache handles file changes.

    ``eco`` jobs carrying a ``parent_fingerprint`` route by that
    fingerprint instead: an edited layout hashes differently from its
    parent, so content routing would send the edit to a different shard
    and forfeit the warm caches (parent solution, bound surrogate,
    calibrated coefficients) held where the parent was solved.  The
    router refines this key with its learned fingerprint->shard affinity
    table (see :meth:`ShardRouter._shard_for`); the rendezvous hash of
    ``fingerprint:<fp>`` is the deterministic fallback.
    """
    parent = params.get("parent_fingerprint")
    if isinstance(parent, str) and parent:
        return f"fingerprint:{parent}"
    if "layout" in params:
        digest = hashlib.sha1(
            json.dumps(params["layout"], sort_keys=True,
                       separators=(",", ":")).encode()).hexdigest()
        return f"inline:{digest}"
    return f"path:{params.get('layout_path')}"


def rendezvous_shard(key: str, shards: int) -> int:
    """Highest-random-weight shard for ``key`` (stable, minimal remap)."""
    best, best_score = 0, b""
    for shard in range(shards):
        score = hashlib.sha1(f"{key}|{shard}".encode()).digest()
        if score > best_score:
            best, best_score = shard, score
    return best


def _shard_main(conn, shard_id: int, config: ServeConfig,
                model_specs: tuple[tuple, ...]) -> None:
    """Child entry point: run one journal-less FillServer over the pipe."""
    from ..obs import metrics as obs_metrics
    obs_metrics.reset()

    registry = ModelRegistry(max_bound=config.max_bound_networks)
    for name, directory, *rest in model_specs:
        registry.register(name, directory,
                          generation=int(rest[0]) if rest else None)
    send_lock = threading.Lock()

    def reply(message: dict) -> None:
        line = encode(message)
        with send_lock:
            try:
                conn.send_bytes(line.encode())
            except (BrokenPipeError, OSError, ValueError):
                pass  # router is gone; the recv loop will exit

    # Shadow residuals stream up the same pipe as job replies; the
    # router folds them into the fleet-wide drift window.
    server = FillServer(registry=registry, serve_config=config,
                        shard_id=shard_id,
                        model_specs=list(model_specs),
                        residual_sink=lambda wire: reply(
                            {"kind": "residual", **wire}))
    server.start()
    reply({"kind": "ready", "shard": shard_id})
    try:
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                break  # router closed the pipe
            server.handle_line(raw.decode("utf-8"), reply)
            if server.shutdown_complete:
                return
    finally:
        if not server.shutdown_complete:
            server.shutdown(drain=True)


@dataclass
class _Entry:
    """One job (or internal request) the router is tracking."""

    line: str
    reply: object
    shard: int
    is_job: bool
    acked: bool = False
    redispatches: int = 0
    result: dict | None = None
    event: threading.Event = field(default_factory=threading.Event)


class _ShardHandle:
    """One shard process slot, respawned in place on death."""

    def __init__(self, shard_id: int, config: ServeConfig,
                 model_specs: tuple[tuple, ...], ctx,
                 start_timeout_s: float = 60.0):
        self.shard_id = shard_id
        self.config = config
        self.model_specs = model_specs
        self.ctx = ctx
        self.start_timeout_s = start_timeout_s
        self.generation = 0
        self.process = None
        self.conn = None
        self.send_lock = threading.Lock()

    def spawn(self) -> None:
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        # Not daemonic: a shard running worker_mode="process" must fork
        # its own worker pool, which daemonic processes cannot.  Orphan
        # cleanup comes from the pipe instead — when the router dies the
        # shard's recv loop sees EOF and drains itself out.
        process = self.ctx.Process(
            target=_shard_main,
            args=(child_conn, self.shard_id, self.config, self.model_specs),
            name=f"repro-serve-shard-{self.shard_id}", daemon=False,
        )
        process.start()
        child_conn.close()
        self.process, self.conn = process, parent_conn
        self.generation += 1
        deadline = time.monotonic() + self.start_timeout_s
        while True:
            if parent_conn.poll(0.05):
                message = protocol.decode(
                    parent_conn.recv_bytes().decode("utf-8"))
                if message.get("kind") == "ready":
                    return
            elif not process.is_alive():
                raise RuntimeError(
                    f"shard {self.shard_id} died during boot "
                    f"(exitcode {process.exitcode})")
            elif time.monotonic() > deadline:
                raise RuntimeError(
                    f"shard {self.shard_id} not ready within "
                    f"{self.start_timeout_s}s")

    def send_line(self, line: str) -> None:
        with self.send_lock:
            self.conn.send_bytes(line.encode())

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ShardRouter:
    """Front end of a fingerprint-sharded serving fleet.

    Duck-types the :class:`FillServer` transport surface; see the module
    docstring for the division of labour between router and shards.

    Args:
        serve_config: fleet knobs; ``shards`` is the fleet width and the
            rest configure each shard's inner server (``workers`` threads
            or forked workers *per shard*).
        journal_path: fleet-global crash journal (router-owned).
        model_specs: ``(name, checkpoint_dir[, generation])`` tuples
            every shard loads.
    """

    def __init__(self, serve_config: ServeConfig | None = None,
                 journal_path: str | None = None,
                 model_specs: list[tuple] | None = None):
        self.config = serve_config or ServeConfig()
        if self.config.shards < 2:
            raise ValueError(
                "ShardRouter needs shards >= 2; run FillServer directly "
                "for a single shard")
        self.model_specs = tuple(tuple(entry) for entry in model_specs or ())
        self.stats = ServeStats()
        self._journal: JobJournal | None = None
        self._resume_specs: list[dict] = []
        if journal_path is not None:
            self._resume_specs, self._journal = JobJournal.recover(
                journal_path)
        # The router owns fleet-wide lifecycle state (drift window,
        # retrain, persisted generations); shards only *sample* — their
        # residual frames stream up the pipes, and their own retrain is
        # forced off so one drift trip cannot start N retrains.
        self.lifecycle: LifecycleManager | None = None
        if self.config.shadow_sample_rate > 0 or self.config.auto_retrain:
            lifecycle_dir = self._resolve_lifecycle_dir(journal_path)
            self.lifecycle = LifecycleManager(
                self.config,
                simulator=None,  # retrain datagen builds its own teacher
                stats=self.stats,
                state_path=(lifecycle_dir / STATE_FILENAME
                            if lifecycle_dir is not None else None),
                checkpoint_root=(lifecycle_dir
                                 if self.config.auto_retrain else None),
                apply_swap=self._broadcast_swap,
                model_info=self._model_info,
                journal_reader=self._journal_requests,
                local_shadow=False,
            )
            restored = self.lifecycle.restore()
            if restored:
                self.model_specs = tuple(
                    (entry[0],) + restored[entry[0]]
                    if entry[0] in restored else entry
                    for entry in self.model_specs)
            for entry in self.model_specs:
                name, directory = entry[0], entry[1]
                if len(entry) > 2:
                    generation = int(entry[2])
                else:
                    try:
                        generation = int(read_checkpoint_meta(
                            directory).get("generation") or 1)
                    except (OSError, ValueError):
                        generation = 1
                self.lifecycle.set_generation(name, generation, directory)
        shard_config = replace(self.config, shards=1, auto_retrain=False)
        ctx = _mp_context()
        self._shards = [
            _ShardHandle(i, shard_config, self.model_specs, ctx)
            for i in range(self.config.shards)
        ]
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}
        # Learned layout_fingerprint -> shard map, recorded from done
        # fill/eco payloads.  The executor fingerprints the *loaded*
        # layout (sha1 of its canonical dict) while routing_key hashes
        # the raw request params, so the two digests never coincide —
        # this table is how an eco job's parent_fingerprint finds the
        # shard actually holding the parent's warm solution cache.
        self._affinity: OrderedDict[str, int] = OrderedDict()
        self._outstanding = [0] * self.config.shards
        self._readers: list[threading.Thread] = []
        self._internal_seq = 0
        self._accepting = True
        self._started = False
        self._closing = False
        self._started_at = time.monotonic()
        self._shutdown_event = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for handle in self._shards:
            handle.spawn()
            self._start_reader(handle)
        for spec in self._resume_specs:
            try:
                request = parse_request(encode(spec))
            except ProtocolError:
                continue
            self.stats.incr("resumed")
            self._admit(request, lambda message: None)
        self._resume_specs = []

    def _start_reader(self, handle: _ShardHandle) -> None:
        thread = threading.Thread(
            target=self._reader_loop, args=(handle, handle.generation),
            name=f"repro-serve-shard-reader-{handle.shard_id}", daemon=True)
        thread.start()
        self._readers.append(thread)

    @property
    def shutdown_complete(self) -> bool:
        return self._shutdown_event.is_set()

    def wait_shutdown(self, timeout: float | None = None) -> bool:
        return self._shutdown_event.wait(timeout)

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Drain every shard, fail leftovers, close the journal."""
        with self._lock:
            if self._closing:
                self._shutdown_event.wait()
                return
            self._accepting = False
            self._closing = True
        budget = self.config.drain_timeout_s if timeout is None else timeout
        line = encode({"id": _INTERNAL + "shutdown", "op": "shutdown",
                       "params": {"drain": drain}})
        for handle in self._shards:
            try:
                handle.send_line(line)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + budget + 5.0
        for handle in self._shards:
            if handle.process is not None:
                handle.process.join(
                    timeout=max(0.1, deadline - time.monotonic()))
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=2.0)
            try:
                handle.conn.close()
            except (OSError, AttributeError):
                pass
        with self._lock:
            leftovers = list(self._entries.values())
            self._entries.clear()
        for entry in leftovers:
            if entry.is_job:
                job_id = decode_id(entry.line)
                if self._journal is not None and job_id:
                    self._journal.record_done(job_id, "cancelled")
                entry.reply(response(job_id, "cancelled",
                                     error="server shutdown"))
            else:
                entry.event.set()
        if self.lifecycle is not None:
            self.lifecycle.close()
        if self._journal is not None:
            self._journal.close()
        self._shutdown_event.set()

    def kill(self) -> None:
        """SIGKILL the whole fleet without recording outcomes.

        Test hook simulating a power-loss crash: accepted jobs stay
        pending in the journal so a new router on the same path resumes
        them.
        """
        import os
        import signal
        with self._lock:
            self._accepting = False
            self._closing = True
        for handle in self._shards:
            if handle.process is not None and handle.process.is_alive():
                os.kill(handle.process.pid, signal.SIGKILL)
                handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except (OSError, AttributeError):
                pass
        # Deliberately do NOT journal dones or reply to waiters — the
        # whole point is to model a crash, not a graceful stop.
        self._shutdown_event.set()

    # ------------------------------------------------------------------
    # Request handling (transport threads)
    # ------------------------------------------------------------------
    def handle_line(self, line: str, reply) -> None:
        """Parse and route one protocol line; never raises."""
        reply = _safe_reply(reply)
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.stats.incr("protocol_errors")
            reply(response(None, "error", error=str(exc)))
            return
        if request.id.startswith(_INTERNAL):
            reply(response(request.id, "rejected",
                           error=f"ids beginning {_INTERNAL!r} are reserved"))
            return
        if request.op in JOB_OPS:
            self._admit(request, reply)
        elif request.op in IMMEDIATE_OPS:
            self._handle_immediate(request, reply)

    def _admit(self, request: Request, reply) -> None:
        if not self._accepting:
            self.stats.incr("rejected")
            reply(response(request.id, "rejected",
                           error="server is shutting down"))
            return
        error = validate_job(request, allow_train=self.config.allow_train)
        if error is not None:
            self.stats.incr("rejected")
            reply(response(request.id, "rejected", error=error))
            return
        shard = self._shard_for(request)
        line = encode(request.to_wire())
        with self._lock:
            if request.id in self._entries:
                self.stats.incr("rejected")
                reply(response(request.id, "rejected",
                               error=f"duplicate job id {request.id!r}"))
                return
            if self._outstanding[shard] >= self.config.queue_capacity:
                self.stats.incr("rejected")
                reply(response(
                    request.id, "rejected",
                    error=f"queue full (shard {shard} at capacity "
                          f"{self.config.queue_capacity})"))
                return
            if self._journal is not None:
                self._journal.record_accept(request)
            entry = _Entry(line=line, reply=reply, shard=shard, is_job=True)
            self._entries[request.id] = entry
            self._outstanding[shard] += 1
            self.stats.set_gauge(f"shard{shard}.outstanding",
                                 self._outstanding[shard])
        self.stats.incr("accepted")
        self._dispatch(request.id, entry)

    def _shard_for(self, request: Request) -> int:
        """Pick the shard for a job: learned cache affinity, then hash.

        ``eco`` jobs naming a ``parent_fingerprint`` go to the shard that
        reported solving that layout (its executor caches the parent
        solution, bound surrogate and coefficients).  Everything else —
        and eco jobs whose parent this router never saw complete, e.g.
        after a restart — falls back to the deterministic rendezvous
        hash of :func:`routing_key`.
        """
        if request.op == "eco":
            parent = request.params.get("parent_fingerprint")
            if isinstance(parent, str) and parent:
                with self._lock:
                    owner = self._affinity.get(parent)
                    if owner is not None:
                        self._affinity.move_to_end(parent)
                        return owner
        return rendezvous_shard(routing_key(request.params),
                                self.config.shards)

    def _dispatch(self, job_id: str, entry: _Entry) -> None:
        handle = self._shards[entry.shard]
        with obs_trace.span("serve.dispatch", cat="serve", job_id=job_id,
                            shard=entry.shard):
            epoch = entry.redispatches
            generation = handle.generation
            try:
                handle.send_line(entry.line)
                return
            except (BrokenPipeError, OSError, AttributeError):
                pass
        # The shard's pipe is broken.  If its reader already ran
        # _shard_down before this entry was registered, nobody else will
        # resend it — wait for the respawn (generation bump) and resend,
        # off-thread so a single-threaded transport is not stalled.
        threading.Thread(
            target=self._resend_after_respawn,
            args=(job_id, entry, handle, generation, epoch),
            name=f"repro-serve-resend-{entry.shard}", daemon=True).start()

    def _resend_after_respawn(self, job_id: str, entry: _Entry,
                              handle: _ShardHandle, generation: int,
                              epoch: int) -> None:
        """Resend an entry whose first send hit a dead shard's pipe.

        The redispatches epoch check prevents a duplicate send when
        ``_shard_down`` *did* collect the entry: its increment under the
        router lock happens before the generation bump we wait on.
        """
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            time.sleep(0.05)
            if handle.generation == generation:
                continue
            with self._lock:
                if self._closing or self._entries.get(job_id) is not entry:
                    return
                if entry.redispatches != epoch:
                    return  # _shard_down re-dispatched it already
            try:
                handle.send_line(entry.line)
                return
            except (BrokenPipeError, OSError, AttributeError):
                generation = handle.generation
        with self._lock:
            if self._entries.pop(job_id, None) is not entry:
                return
            if entry.is_job:
                self._outstanding[entry.shard] -= 1
        if entry.is_job:
            self._fail_job(job_id, entry)
        else:
            entry.event.set()

    # ------------------------------------------------------------------
    # Immediate ops
    # ------------------------------------------------------------------
    def _handle_immediate(self, request: Request, reply) -> None:
        if request.op == "ping":
            reply(response(request.id, "done", result={"pong": True}))
        elif request.op == "stats":
            reply(response(request.id, "done", result=self.stats_snapshot()))
        elif request.op == "models":
            result = self._ask_shard(0, "models")
            if result is None:
                reply(response(request.id, "error",
                               error="shard 0 did not answer"))
            else:
                reply(response(request.id, "done", result=result))
        elif request.op == "lifecycle":
            reply(response(request.id, "done",
                           result=self.lifecycle_status()))
        elif request.op == "swap":
            self._handle_swap(request, reply)
        elif request.op == "cancel":
            self._handle_cancel(request, reply)
        elif request.op == "shutdown":
            drain = bool(request.params.get("drain", True))
            self.shutdown(drain=drain)
            reply(response(request.id, "done", result={"drained": drain}))

    # ------------------------------------------------------------------
    # Lifecycle: fleet-wide swap broadcast + drift status
    # ------------------------------------------------------------------
    def _resolve_lifecycle_dir(self, journal_path: str | None) -> Path | None:
        if self.config.lifecycle_dir:
            directory = Path(self.config.lifecycle_dir)
        elif journal_path is not None:
            directory = Path(journal_path).with_name(
                Path(journal_path).name + ".lifecycle")
        elif self.config.auto_retrain:
            directory = Path(tempfile.mkdtemp(prefix="repro-lifecycle-"))
        else:
            return None
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def _model_info(self, name: str) -> dict:
        for entry in self.model_specs:
            if entry[0] == name:
                meta = read_checkpoint_meta(entry[1])
                return {"arch": dict(meta.get("arch") or {}),
                        "directory": str(entry[1])}
        raise KeyError(f"unknown model {name!r}")

    def _journal_requests(self, job_ids: list[str]) -> dict[str, dict]:
        if self._journal is None:
            return {}
        return JobJournal.read_requests(self._journal.path, job_ids)

    def _broadcast_swap(self, name: str, directory: str,
                        generation: int | None = None) -> int:
        """Swap ``name`` on every shard; all-or-error, no draining.

        Each shard performs a full local swap (registry rebind + its
        worker pool's control broadcast).  The monotonic-generation
        guard makes a partial failure safe to retry: shards already at
        the new generation ack idempotently via their registries'
        "already applied" path... they simply reject the duplicate, which
        this method treats as failure only when the shard's reported
        generation does not match.
        """
        directory = str(directory)
        if generation is None:
            meta_generation = read_checkpoint_meta(directory).get(
                "generation")
            if meta_generation:
                generation = int(meta_generation)
            elif self.lifecycle is not None:
                generation = self.lifecycle.generation_of(name) + 1
            else:
                models = (self._ask_shard(0, "models") or {}).get(
                    "models") or {}
                current = (models.get(name) or {}).get("generation", 1)
                generation = int(current) + 1
        generation = int(generation)
        failed: list[int] = []
        for handle in self._shards:
            result = self._ask_shard(
                handle.shard_id, "swap",
                {"model": name, "directory": directory,
                 "generation": generation},
                timeout=60.0)
            if not result or result.get("generation") != generation:
                failed.append(handle.shard_id)
        if failed:
            raise RuntimeError(
                f"swap of {name!r} to generation {generation} failed on "
                f"shard(s) {failed}; retry is safe (monotonic guard)")
        with self._lock:
            entries = [
                (name, directory, generation) if entry[0] == name
                else tuple(entry)
                for entry in self.model_specs
            ]
            self.model_specs = tuple(entries)
            for handle in self._shards:
                handle.model_specs = self.model_specs
        if self._journal is not None:
            self._journal.record_swap(name, generation, directory)
        self.stats.incr("swaps")
        self.stats.set_gauge(f"generation.{name}", float(generation))
        return generation

    def swap_model(self, name: str, directory: str,
                   generation: int | None = None) -> int:
        """Operator-facing fleet swap; records lifecycle state too."""
        generation = self._broadcast_swap(name, directory, generation)
        if self.lifecycle is not None:
            self.lifecycle.note_swap(name, str(directory), generation)
        return generation

    def _handle_swap(self, request: Request, reply) -> None:
        name = request.params.get("model")
        directory = request.params.get("directory")
        if not isinstance(name, str) or not name \
                or not isinstance(directory, str) or not directory:
            reply(response(request.id, "error",
                           error="swap params need 'model' and "
                                 "'directory' strings"))
            return
        generation = request.params.get("generation")
        try:
            generation = self.swap_model(
                name, directory,
                int(generation) if generation is not None else None)
        except (KeyError, ValueError, FileNotFoundError,
                RuntimeError) as exc:
            self.stats.incr("swap_rejected")
            reply(response(request.id, "error", error=str(exc)))
            return
        reply(response(request.id, "done",
                       result={"model": name, "generation": generation}))

    def lifecycle_status(self) -> dict:
        """Fleet lifecycle view: router state plus per-shard detail."""
        per_shard = []
        for handle in self._shards:
            snapshot = self._ask_shard(handle.shard_id, "lifecycle")
            per_shard.append(snapshot or {"unreachable": True})
        result: dict = {
            "enabled": self.lifecycle is not None,
            "shards": self.config.shards,
            "models": {},
        }
        for entry in self.model_specs:
            generation = (int(entry[2]) if len(entry) > 2
                          else (self.lifecycle.generation_of(entry[0])
                                if self.lifecycle is not None else 1))
            result["models"][entry[0]] = {
                "directory": str(entry[1]), "generation": generation}
        if self.lifecycle is not None:
            result.update(self.lifecycle.status())
        result["per_shard"] = per_shard
        return result

    def _handle_cancel(self, request: Request, reply) -> None:
        target = request.params.get("job_id")
        if not isinstance(target, str) or not target:
            reply(response(request.id, "error",
                           error="cancel params need a 'job_id' string"))
            return
        with self._lock:
            entry = self._entries.get(target)
            shard = entry.shard if entry is not None else None
        if shard is None:
            reply(response(request.id, "done",
                           result={"job_id": target, "cancelled": False}))
            return
        result = self._ask_shard(shard, "cancel", {"job_id": target})
        reply(response(request.id, "done",
                       result=result or {"job_id": target,
                                         "cancelled": False}))

    def _ask_shard(self, shard: int, op: str, params: dict | None = None,
                   timeout: float = 10.0) -> dict | None:
        """Forward one introspection op to a shard, wait for its answer."""
        with self._lock:
            self._internal_seq += 1
            rid = f"{_INTERNAL}{op}:{self._internal_seq}"
            entry = _Entry(
                line=encode({"id": rid, "op": op, "params": params or {}}),
                reply=lambda message: None, shard=shard, is_job=False)
            self._entries[rid] = entry
        try:
            self._shards[shard].send_line(entry.line)
        except (BrokenPipeError, OSError):
            with self._lock:
                self._entries.pop(rid, None)
            return None
        entry.event.wait(timeout)
        with self._lock:
            self._entries.pop(rid, None)
        return entry.result

    def stats_snapshot(self) -> dict:
        """Fleet-wide view: merged counters plus per-shard detail."""
        per_shard = []
        for handle in self._shards:
            snapshot = self._ask_shard(handle.shard_id, "stats")
            per_shard.append(snapshot or {"unreachable": True})
        merged = dict(self.stats.snapshot())
        counters = dict(merged.get("counters", {}))
        depth = 0
        inflight = 0
        for snapshot in per_shard:
            for name, value in (snapshot.get("counters") or {}).items():
                # The router records every admission and terminal outcome
                # itself (it must, to journal them), so shard-level copies
                # of those counters are duplicates, not additions.
                if name in ("accepted", "rejected", "resumed", "completed",
                            "error", "timeout", "cancelled", "worker_died",
                            "protocol_errors", "swaps", "swap_rejected"):
                    continue
                counters[name] = counters.get(name, 0) + value
            depth += snapshot.get("queue_depth", 0) or 0
            inflight += snapshot.get("inflight", 0) or 0
        merged["counters"] = counters
        merged.update({
            "queue_depth": depth,
            "queue_capacity": self.config.queue_capacity,
            "inflight": inflight,
            "workers": self.config.workers,
            "worker_mode": self.config.worker_mode,
            "shards": self.config.shards,
            "accepting": self._accepting,
            "outstanding": list(self._outstanding),
            "per_shard": per_shard,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        })
        return merged

    # ------------------------------------------------------------------
    # Shard replies and crash recovery
    # ------------------------------------------------------------------
    def _reader_loop(self, handle: _ShardHandle, generation: int) -> None:
        conn = handle.conn
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                self._shard_down(handle, generation)
                return
            try:
                message = protocol.decode(raw.decode("utf-8"))
            except ProtocolError:
                continue
            self._on_shard_message(handle.shard_id, message)

    def _on_shard_message(self, shard: int, message: dict) -> None:
        if message.get("kind") == "residual":
            # Shadow residual streamed up from a shard's sampler; fold it
            # into the fleet-wide drift window (no job bookkeeping).
            if self.lifecycle is not None:
                self.lifecycle.observe_wire(message)
            return
        rid = message.get("id")
        status = message.get("status")
        if not isinstance(rid, str):
            return
        with self._lock:
            entry = self._entries.get(rid)
            if entry is None or entry.shard != shard:
                return
            if not entry.is_job:
                entry.result = message.get("result") or {}
                entry.event.set()
                return
            if status == "accepted":
                if entry.acked:
                    return  # re-dispatch after a crash; client saw one ack
                entry.acked = True
            elif status in protocol.TERMINAL_STATUSES:
                self._entries.pop(rid, None)
                self._outstanding[shard] -= 1
                self.stats.set_gauge(f"shard{shard}.outstanding",
                                     self._outstanding[shard])
                if status == "done":
                    fingerprint = (message.get("result") or {}).get(
                        "layout_fingerprint")
                    if isinstance(fingerprint, str) and fingerprint:
                        self._affinity[fingerprint] = shard
                        self._affinity.move_to_end(fingerprint)
                        while len(self._affinity) > 4096:
                            self._affinity.popitem(last=False)
            else:
                return
        if status in protocol.TERMINAL_STATUSES:
            if self._journal is not None:
                generation = (message.get("result") or {}).get("generation")
                self._journal.record_done(rid, status, generation=generation)
            self.stats.incr("completed" if status == "done" else status)
        entry.reply(message)

    def _shard_down(self, handle: _ShardHandle, generation: int) -> None:
        """A shard's pipe broke: respawn it and re-dispatch its jobs."""
        with self._lock:
            if self._closing or handle.generation != generation:
                return
            to_retry: list[tuple[str, _Entry]] = []
            to_fail: list[tuple[str, _Entry]] = []
            waiters: list[_Entry] = []
            for rid, entry in list(self._entries.items()):
                if entry.shard != handle.shard_id:
                    continue
                if not entry.is_job:
                    del self._entries[rid]
                    waiters.append(entry)
                elif entry.redispatches >= 1:
                    # Already survived one crash of this shard; a job
                    # that kills its shard twice is failed, not looped.
                    del self._entries[rid]
                    self._outstanding[handle.shard_id] -= 1
                    to_fail.append((rid, entry))
                else:
                    entry.redispatches += 1
                    to_retry.append((rid, entry))
            self.stats.set_gauge(f"shard{handle.shard_id}.outstanding",
                                 self._outstanding[handle.shard_id])
            self.stats.incr("shard_respawns")
        for entry in waiters:
            entry.event.set()  # waiter sees a None result and gives up
        for rid, entry in to_fail:
            self._fail_job(rid, entry)
        try:
            handle.spawn()
        except RuntimeError:
            with self._lock:
                for rid, _ in to_retry:
                    if self._entries.pop(rid, None) is not None:
                        self._outstanding[handle.shard_id] -= 1
            for rid, entry in to_retry:
                self._fail_job(rid, entry)
            return
        self._start_reader(handle)
        for rid, entry in to_retry:
            self.stats.incr("redispatched")
            self._dispatch(rid, entry)

    def _fail_job(self, rid: str, entry: _Entry) -> None:
        """Terminal worker_died for a job already removed from tracking."""
        if self._journal is not None:
            self._journal.record_done(rid, "worker_died")
        self.stats.incr("worker_died")
        entry.reply(response(
            rid, "worker_died",
            error=f"shard {entry.shard} died while executing this job"))


def decode_id(line: str) -> str | None:
    """Best-effort id extraction from an encoded request line."""
    try:
        message = protocol.decode(line)
    except ProtocolError:
        return None
    rid = message.get("id")
    return rid if isinstance(rid, str) else None
