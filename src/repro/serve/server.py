"""The resident fill-synthesis service.

:class:`FillServer` owns the moving parts — registry, bounded queue,
worker pool, executor, journal, stats — and is transport-neutral:
:func:`serve_pipe` runs it over stdin/stdout, :func:`serve_tcp` over a
TCP socket, and tests drive :meth:`FillServer.handle_line` directly.

Request lifecycle::

    client line ──parse──▶ admission ──▶ bounded queue ──▶ worker pool
                     │          │                              │
                     ▼          ▼                              ▼
                protocol    journal(accept, fsync)      execute (fill /
                 errors      + "accepted" ack            simulate) via
                                                         JobExecutor, in
                                                         this process or
                                                         a forked child
                                                              │
                                     journal(done) ◀── terminal response

Two worker modes share this skeleton (``ServeConfig.worker_mode``):

* ``thread`` — jobs execute on the worker threads themselves through a
  shared :class:`~repro.serve.executor.JobExecutor`, with cross-job
  micro-batching (PR 3 behaviour).
* ``process`` — worker threads dispatch to a
  :class:`~repro.serve.procpool.ProcessWorkerPool` of long-lived forked
  children, each owning a private warm executor; numpy-heavy jobs then
  scale across cores instead of contending on the GIL.  A child that
  dies mid-job yields the distinguishable terminal status
  ``worker_died`` (safe to retry — the job did not complete) and its
  slot is respawned.

A dedicated expiry timer retires deadline-passed jobs promptly even
while every worker is busy — queued jobs no longer wait for a worker to
come up for air before learning they timed out.

Graceful shutdown stops admission, drains the queue and in-flight jobs
(bounded by ``drain_timeout_s``), closes the executor/pool and the
journal.  Because accepts are journalled before the ack, a crash instead
of a drain loses nothing: the next server started on the same journal
path re-runs every accepted-but-unfinished job spec.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from .. import config as repro_config
from ..cmp.simulator import CmpSimulator
from ..lifecycle import STATE_FILENAME, LifecycleManager
from .executor import FILL_METHODS, JobExecutor, validate_job
from .jobqueue import BoundedJobQueue, Job, JobState
from .journal import JobJournal
from .procpool import ProcessWorkerPool, WorkerDiedError, WorkerSpec
from .protocol import (
    IMMEDIATE_OPS,
    JOB_OPS,
    ProtocolError,
    Request,
    encode,
    parse_request,
    response,
)
from .registry import ModelRegistry
from .stats import ServeStats

__all__ = [
    "FILL_METHODS",
    "FillServer",
    "ServeConfig",
    "serve_pipe",
    "serve_tcp",
]

WORKER_MODES = ("thread", "process")


@dataclass
class ServeConfig:
    """Tunable knobs of one server process (CLI flags + env defaults)."""

    workers: int = field(
        default_factory=repro_config.serve_workers_default)
    queue_capacity: int = field(
        default_factory=repro_config.serve_queue_capacity_default)
    max_batch: int = field(
        default_factory=repro_config.serve_max_batch_default)
    flush_ms: float = field(
        default_factory=repro_config.serve_flush_ms_default)
    default_timeout_s: float | None = None
    drain_timeout_s: float = repro_config.DEFAULT_SERVE_DRAIN_TIMEOUT_S
    #: ``beta_runtime`` for calibrated score coefficients — matches the
    #: one-shot CLI path so served results are comparable bit for bit.
    beta_runtime: float = 60.0
    #: Allow jobs without a registered model to train a surrogate inline
    #: (slow; off for latency-sensitive deployments).
    allow_train: bool = True
    max_bound_networks: int = 8
    #: ``thread`` executes jobs on the worker threads (coalescing across
    #: jobs); ``process`` dispatches them to forked worker children.
    worker_mode: str = field(
        default_factory=repro_config.serve_worker_mode_default)
    #: Shard-fleet width for :class:`~repro.serve.router.ShardRouter`;
    #: 1 means a single unsharded server.
    shards: int = field(default_factory=repro_config.serve_shards_default)
    #: Liveness heartbeat period of forked workers (process mode).
    heartbeat_s: float = 2.0
    #: Fraction of registered-model fills shadow-checked against the
    #: real simulator; 0 (the default) disables the drift monitor and
    #: keeps serving on the exact pre-lifecycle fast path.
    shadow_sample_rate: float = field(
        default_factory=repro_config.lifecycle_shadow_rate_default)
    #: Height-RMSE drift bound in Angstroms; shadow residuals above it
    #: count toward a drift trip and mark their layouts as offenders.
    drift_bound: float = field(
        default_factory=repro_config.lifecycle_drift_bound_default)
    #: Sliding-window length of the drift statistic.
    drift_window: int = field(
        default_factory=repro_config.lifecycle_window_default)
    #: Exceedances within the window needed to trip (hysteresis).
    drift_trip_count: int = field(
        default_factory=repro_config.lifecycle_trip_count_default)
    #: Retrain on drift trips and hot-swap validated candidates in.
    auto_retrain: bool = field(
        default_factory=repro_config.lifecycle_auto_retrain_default)
    retrain_samples: int = field(
        default_factory=repro_config.lifecycle_train_samples_default)
    retrain_epochs: int = field(
        default_factory=repro_config.lifecycle_train_epochs_default)
    retrain_seed: int = field(
        default_factory=repro_config.lifecycle_seed_default)
    #: Directory for retrained generation checkpoints + lifecycle state;
    #: ``None`` derives a journal sibling (or a temp dir).
    lifecycle_dir: str | None = field(
        default_factory=repro_config.lifecycle_dir_default)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.flush_ms < 0:
            raise ValueError(f"flush_ms must be >= 0, got {self.flush_ms}")
        if self.worker_mode not in WORKER_MODES:
            raise ValueError(
                f"worker_mode must be one of {WORKER_MODES}, "
                f"got {self.worker_mode!r}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.heartbeat_s <= 0:
            raise ValueError(
                f"heartbeat_s must be > 0, got {self.heartbeat_s}")
        if not 0.0 <= self.shadow_sample_rate <= 1.0:
            raise ValueError(
                f"shadow_sample_rate must be in [0, 1], "
                f"got {self.shadow_sample_rate}")
        if self.drift_bound <= 0:
            raise ValueError(
                f"drift_bound must be > 0, got {self.drift_bound}")
        if self.drift_window < 1:
            raise ValueError(
                f"drift_window must be >= 1, got {self.drift_window}")
        if not 1 <= self.drift_trip_count <= self.drift_window:
            raise ValueError(
                f"drift_trip_count must be in [1, drift_window="
                f"{self.drift_window}], got {self.drift_trip_count}")
        if self.retrain_samples < 2:
            raise ValueError(
                f"retrain_samples must be >= 2, got {self.retrain_samples}")
        if self.retrain_epochs < 1:
            raise ValueError(
                f"retrain_epochs must be >= 1, got {self.retrain_epochs}")


class FillServer:
    """Long-running fill/simulate service over a line-JSON protocol.

    Args:
        registry: warm model registry (thread mode binds from it; process
            mode children warm-load their own copies from specs).
        serve_config: knobs; ``worker_mode`` picks the execution engine.
        journal_path: at-least-once crash journal (accepts fsync'd).
        model_specs: ``(name, checkpoint_dir[, generation])`` tuples
            shipped to forked workers.  Defaults to the registry's
            registered directories; explicit entries are upgraded to the
            registry's current generation after lifecycle state restore.
        shard_id: set by :class:`~repro.serve.router.ShardRouter` when
            this server is one shard of a fleet; tags job spans.
        residual_sink: optional callable receiving every shadow residual
            in wire form — the shard router injects this so a fleet's
            drift window lives in the front end, not per shard.
    """

    def __init__(self, registry: ModelRegistry | None = None,
                 serve_config: ServeConfig | None = None,
                 journal_path: str | None = None,
                 model_specs: list[tuple] | None = None,
                 shard_id: int | None = None,
                 residual_sink=None):
        self.registry = registry or ModelRegistry()
        self.config = serve_config or ServeConfig()
        self.shard_id = shard_id
        self.stats = ServeStats()
        self.queue = BoundedJobQueue(self.config.queue_capacity)
        self.simulator = CmpSimulator()
        self._journal: JobJournal | None = None
        self._resume_specs: list[dict] = []
        if journal_path is not None:
            self._resume_specs, self._journal = JobJournal.recover(
                journal_path)
        self.lifecycle: LifecycleManager | None = None
        if self.config.shadow_sample_rate > 0 or self.config.auto_retrain:
            lifecycle_dir = self._resolve_lifecycle_dir(journal_path)
            self.lifecycle = LifecycleManager(
                self.config,
                simulator=self.simulator,
                stats=self.stats,
                # Shards never own state: the router front end does.
                state_path=(lifecycle_dir / STATE_FILENAME
                            if lifecycle_dir is not None and shard_id is None
                            else None),
                checkpoint_root=(lifecycle_dir
                                 if self.config.auto_retrain else None),
                apply_swap=self._do_swap,
                model_info=self._model_info,
                journal_reader=self._journal_requests,
                residual_forward=residual_sink,
                # Thread mode shadows in-process; process mode shadows in
                # the forked children (residuals arrive as pipe frames).
                local_shadow=self.config.worker_mode != "process",
            )
            # Resume the newest persisted generation instead of the boot
            # checkpoint — a restart must not silently roll back a swap.
            for name, (directory, generation) in \
                    self.lifecycle.restore().items():
                if name in self.registry and \
                        generation > self.registry.generation_of(name):
                    try:
                        self.registry.swap(name, directory, generation)
                    except (OSError, ValueError, FileNotFoundError):
                        pass  # stale state; keep the boot checkpoint
            for name, info in self.registry.describe().items():
                self.lifecycle.set_generation(
                    name, info["generation"], info["directory"])
        self.executor = JobExecutor(
            registry=self.registry,
            simulator=self.simulator,
            stats=self.stats,
            beta_runtime=self.config.beta_runtime,
            allow_train=self.config.allow_train,
            max_bound_networks=self.config.max_bound_networks,
            max_batch=self.config.max_batch,
            flush_ms=self.config.flush_ms,
            shard_id=shard_id,
            shadow=(self.lifecycle.shadow if self.lifecycle is not None
                    else None),
        )
        self._pool: ProcessWorkerPool | None = None
        if self.config.worker_mode == "process":
            described = self.registry.describe()
            if model_specs is None:
                model_specs = [
                    (name, info["directory"], info["generation"])
                    for name, info in sorted(described.items())
                ]
            else:
                model_specs = [
                    (entry[0], described[entry[0]]["directory"],
                     described[entry[0]]["generation"])
                    if entry[0] in described else tuple(entry)
                    for entry in model_specs
                ]
            self._pool = ProcessWorkerPool(
                self.config.workers,
                WorkerSpec(
                    models=tuple(model_specs),
                    beta_runtime=self.config.beta_runtime,
                    allow_train=self.config.allow_train,
                    max_bound_networks=self.config.max_bound_networks,
                    heartbeat_s=self.config.heartbeat_s,
                    shadow_sample_rate=self.config.shadow_sample_rate,
                    drift_bound=self.config.drift_bound,
                ),
                stats=self.stats,
                on_residual=self._on_worker_residual,
            )
        self._drain_cond = threading.Condition()
        self._inflight = 0
        self._workers: list[threading.Thread] = []
        self._expiry_thread: threading.Thread | None = None
        self._accepting = True
        self._started = False
        self._started_at = time.monotonic()
        self._shutdown_event = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool and resume journalled jobs."""
        if self._started:
            return
        self._started = True
        if self._pool is not None:
            # Fork the children before starting any worker thread: a
            # single-threaded parent forks safely, and the children
            # inherit warm module state (plus test monkeypatches).
            self._pool.start()
        for i in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)
        self._expiry_thread = threading.Thread(
            target=self._expiry_loop, name="repro-serve-expiry", daemon=True)
        self._expiry_thread.start()
        for spec in self._resume_specs:
            try:
                request = parse_request(encode(spec))
            except ProtocolError:
                continue  # journalled by an incompatible version; drop
            self.stats.incr("resumed")
            self._admit(request, lambda message: None)
        self._resume_specs = []

    @property
    def shutdown_complete(self) -> bool:
        return self._shutdown_event.is_set()

    def wait_shutdown(self, timeout: float | None = None) -> bool:
        return self._shutdown_event.wait(timeout)

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop admission, drain (or cancel) pending work, release all.

        Args:
            drain: finish queued + in-flight jobs before returning; when
                ``False`` queued jobs are cancelled (in-flight ones still
                run to completion — execution is not preemptible).
            timeout: overrides ``config.drain_timeout_s``.
        """
        if self._shutdown_event.is_set():
            return
        self._accepting = False
        if not drain:
            for job in self.queue.drain_pending():
                self.stats.incr("cancelled")
                self._finish(job, "cancelled", error="server shutdown",
                             counted=False)
        deadline = time.monotonic() + (
            self.config.drain_timeout_s if timeout is None else timeout)
        with self._drain_cond:
            while (self.queue.depth() > 0 or self._inflight > 0) \
                    and time.monotonic() < deadline:
                self._drain_cond.wait(0.05)
        self.queue.close()
        for thread in self._workers:
            thread.join(timeout=5.0)
        if self._expiry_thread is not None:
            self._expiry_thread.join(timeout=5.0)
        if self._pool is not None:
            self._pool.close()
        self.executor.close()
        if self.lifecycle is not None:
            self.lifecycle.close()
        if self._journal is not None:
            self._journal.close()
        self._shutdown_event.set()

    # ------------------------------------------------------------------
    # Request handling (transport threads)
    # ------------------------------------------------------------------
    def handle_line(self, line: str, reply) -> None:
        """Parse and dispatch one protocol line; never raises."""
        reply = _safe_reply(reply)
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.stats.incr("protocol_errors")
            reply(response(None, "error", error=str(exc)))
            return
        if request.op in JOB_OPS:
            self._admit(request, reply)
        elif request.op in IMMEDIATE_OPS:
            self._handle_immediate(request, reply)

    def _admit(self, request: Request, reply) -> None:
        if not self._accepting:
            self.stats.incr("rejected")
            reply(response(request.id, "rejected",
                           error="server is shutting down"))
            return
        error = self._validate_job(request)
        if error is not None:
            self.stats.incr("rejected")
            reply(response(request.id, "rejected", error=error))
            return
        if self._journal is not None:
            self._journal.record_accept(request)
        job = Job(request=request, reply=reply)
        if job.deadline is None and self.config.default_timeout_s:
            job.deadline = job.accepted_at + self.config.default_timeout_s
        if self.queue.put(job):
            self.stats.incr("accepted")
            depth = self.queue.depth()
            self.stats.set_gauge("queue_depth", depth)
            reply(response(request.id, "accepted",
                           result={"queue_depth": depth}))
        else:
            self.stats.incr("rejected")
            if self._journal is not None:
                self._journal.record_done(request.id, "rejected")
            if self.queue.closed:
                reason = "server is shutting down"
            elif self.queue.depth() >= self.queue.capacity:
                reason = f"queue full (capacity {self.queue.capacity})"
            else:
                reason = f"duplicate job id {request.id!r}"
            reply(response(request.id, "rejected", error=reason))

    def _validate_job(self, request: Request) -> str | None:
        return validate_job(request, allow_train=self.config.allow_train)

    def _handle_immediate(self, request: Request, reply) -> None:
        if request.op == "ping":
            reply(response(request.id, "done", result={"pong": True}))
        elif request.op == "stats":
            reply(response(request.id, "done", result=self.stats_snapshot()))
        elif request.op == "models":
            reply(response(request.id, "done",
                           result={"models": self.registry.describe()}))
        elif request.op == "lifecycle":
            reply(response(request.id, "done",
                           result=self.lifecycle_status()))
        elif request.op == "swap":
            self._handle_swap(request, reply)
        elif request.op == "cancel":
            self._handle_cancel(request, reply)
        elif request.op == "shutdown":
            drain = bool(request.params.get("drain", True))
            self.shutdown(drain=drain)
            reply(response(request.id, "done", result={"drained": drain}))

    def _handle_cancel(self, request: Request, reply) -> None:
        target = request.params.get("job_id")
        if not isinstance(target, str) or not target:
            reply(response(request.id, "error",
                           error="cancel params need a 'job_id' string"))
            return
        job = self.queue.cancel(target)
        if job is not None:
            self.stats.incr("cancelled")
            self._finish(job, "cancelled", error="cancelled by request",
                         counted=False)
        reply(response(request.id, "done",
                       result={"job_id": target,
                               "cancelled": job is not None}))

    # ------------------------------------------------------------------
    # Lifecycle: hot swap + drift status
    # ------------------------------------------------------------------
    def _resolve_lifecycle_dir(self, journal_path: str | None) -> Path | None:
        """Directory for generation checkpoints + persisted state."""
        if self.config.lifecycle_dir:
            directory = Path(self.config.lifecycle_dir)
        elif journal_path is not None:
            directory = Path(journal_path).with_name(
                Path(journal_path).name + ".lifecycle")
        elif self.config.auto_retrain:
            directory = Path(tempfile.mkdtemp(prefix="repro-lifecycle-"))
        else:
            return None  # monitor-only, nothing to persist
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def _on_worker_residual(self, frame: dict) -> None:
        """Residual frame from a forked worker's shadow executor."""
        if self.lifecycle is not None:
            self.lifecycle.observe_wire(frame)

    def _model_info(self, name: str) -> dict:
        model = self.registry.model(name)
        return {"arch": dict(model.bundle.arch),
                "directory": str(model.directory),
                "generation": model.generation}

    def _journal_requests(self, job_ids: list[str]) -> dict[str, dict]:
        if self._journal is None:
            return {}
        return JobJournal.read_requests(self._journal.path, job_ids)

    def _do_swap(self, name: str, directory: str,
                 generation: int | None = None):
        """Registry + worker-pool rebind, journalled; no drain anywhere.

        This is the lifecycle manager's ``apply_swap`` callback (the
        manager records its own state afterwards); operator-initiated
        swaps go through :meth:`swap_model`, which also notifies the
        manager.
        """
        model = self.registry.swap(name, directory, generation)
        if self._pool is not None:
            self._pool.swap(name, str(model.directory), model.generation)
        if self._journal is not None:
            self._journal.record_swap(name, model.generation,
                                      str(model.directory))
        self.stats.incr("swaps")
        self.stats.set_gauge(f"generation.{name}", float(model.generation))
        return model

    def swap_model(self, name: str, directory: str,
                   generation: int | None = None) -> int:
        """Hot-swap ``name`` to a new checkpoint; returns the generation.

        In-flight jobs finish on the generation they bound; everything
        admitted after this call binds the new one.

        Raises:
            KeyError: unknown model.
            ValueError: non-monotonic generation.
            FileNotFoundError: missing/partial checkpoint directory.
        """
        model = self._do_swap(name, directory, generation)
        if self.lifecycle is not None:
            self.lifecycle.note_swap(name, str(model.directory),
                                     model.generation)
        return model.generation

    def _handle_swap(self, request: Request, reply) -> None:
        name = request.params.get("model")
        directory = request.params.get("directory")
        if not isinstance(name, str) or not name \
                or not isinstance(directory, str) or not directory:
            reply(response(request.id, "error",
                           error="swap params need 'model' and "
                                 "'directory' strings"))
            return
        generation = request.params.get("generation")
        try:
            generation = self.swap_model(
                name, directory,
                int(generation) if generation is not None else None)
        except (KeyError, ValueError, FileNotFoundError) as exc:
            self.stats.incr("swap_rejected")
            reply(response(request.id, "error", error=str(exc)))
            return
        reply(response(request.id, "done",
                       result={"model": name, "generation": generation}))

    def lifecycle_status(self) -> dict:
        """Payload of the ``lifecycle`` op: generations + drift state."""
        result: dict = {
            "enabled": self.lifecycle is not None,
            "models": {
                name: {"generation": info["generation"],
                       "directory": info["directory"]}
                for name, info in self.registry.describe().items()
            },
        }
        if self.shard_id is not None:
            result["shard_id"] = self.shard_id
        if self.lifecycle is not None:
            result.update(self.lifecycle.status())
        return result

    def stats_snapshot(self) -> dict:
        snapshot = self.stats.snapshot()
        snapshot.update({
            "queue_depth": self.queue.depth(),
            "queue_capacity": self.queue.capacity,
            "inflight": self._inflight,
            "workers": self.config.workers,
            "worker_mode": self.config.worker_mode,
            "accepting": self._accepting,
            "coalescing": self._pool is None and self.config.max_batch > 1,
            "max_batch": self.config.max_batch,
            "flush_ms": self.config.flush_ms,
            "models": self.registry.names(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        })
        if self.shard_id is not None:
            snapshot["shard_id"] = self.shard_id
        if self._pool is not None:
            snapshot["proc_workers"] = self._pool.describe()
        if self.lifecycle is not None:
            snapshot["lifecycle"] = self.lifecycle.status()
        return snapshot

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _expiry_loop(self) -> None:
        """Retire deadline-passed queued jobs promptly.

        Workers also expire due jobs when they come up for air, but with
        every worker pinned under long fills a due job used to sit in the
        queue until one finished.  This timer bounds that to its period.
        """
        while not self.queue.closed:
            self._expire_due()
            time.sleep(0.02)

    def _expire_due(self) -> None:
        for job in self.queue.expire_due():
            # The deadline may come from the request or the server-wide
            # default, so report the actual wait rather than timeout_s.
            waited = time.monotonic() - job.accepted_at
            self._finish(job, "timeout",
                         error=f"timed out after {waited:.3f}s in queue")

    def _worker_loop(self) -> None:
        while True:
            self._expire_due()
            job = self.queue.get(timeout=0.1)
            if job is None:
                if self.queue.closed:
                    return
                continue
            self.stats.record_latency(
                "queue_wait", job.started_at - job.accepted_at)
            self.stats.set_gauge("queue_depth", self.queue.depth())
            with self._drain_cond:
                self._inflight += 1
            try:
                if job.expired():
                    self._finish(job, "timeout",
                                 error="deadline passed before execution")
                    continue
                try:
                    result = self._execute(job.request)
                except WorkerDiedError as exc:
                    self._finish(job, "worker_died", error=str(exc))
                except Exception as exc:  # job failure must not kill worker
                    self._finish(job, "error", error=str(exc))
                else:
                    if job.expired():
                        self._finish(job, "timeout",
                                     error="completed after its deadline")
                    else:
                        self._finish(job, "done", result=result)
            finally:
                with self._drain_cond:
                    self._inflight -= 1
                    self._drain_cond.notify_all()

    def _finish(self, job: Job, status: str, result: dict | None = None,
                error: str | None = None, counted: bool = True) -> None:
        job.state = {
            "done": JobState.DONE, "error": JobState.FAILED,
            "cancelled": JobState.CANCELLED, "timeout": JobState.TIMEOUT,
            "worker_died": JobState.WORKER_DIED,
        }.get(status, JobState.DONE)
        now = time.monotonic()
        if job.started_at is not None:
            self.stats.record_latency("execute", now - job.started_at)
        self.stats.record_latency("total", now - job.accepted_at)
        if counted:
            self.stats.incr("completed" if status == "done" else status)
        if self._journal is not None:
            generation = (result.get("generation")
                          if isinstance(result, dict) else None)
            self._journal.record_done(job.id, status, generation=generation)
        job.reply(response(job.id, status, result=result, error=error))

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def _execute(self, request: Request) -> dict:
        """Run one admitted job (kept as a seam for tests to patch)."""
        if self._pool is not None:
            return self._pool.run(request)
        return self.executor.execute(request)


def _safe_reply(reply):
    """Wrap a transport write so a dead client cannot kill a worker."""
    def _reply(message: dict) -> None:
        try:
            reply(message)
        except (BrokenPipeError, ConnectionError, OSError, ValueError):
            pass
    return _reply


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------
def serve_pipe(server, stdin=None, stdout=None) -> int:
    """Serve line-JSON over stdin/stdout until EOF or a shutdown op.

    ``server`` is a :class:`FillServer` or a
    :class:`~repro.serve.router.ShardRouter` (same duck-typed surface).
    Protocol traffic owns stdout; anything human-readable must go to
    stderr.  EOF on stdin triggers a graceful drain, so piping a finite
    job list into ``repro serve --pipe`` works as a batch runner.
    """
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    write_lock = threading.Lock()

    def reply(message: dict) -> None:
        line = encode(message) + "\n"
        with write_lock:
            stdout.write(line)
            stdout.flush()

    server.start()
    try:
        for line in stdin:
            if not line.strip():
                continue
            server.handle_line(line, reply)
            if server.shutdown_complete:
                break
    except KeyboardInterrupt:
        pass
    finally:
        if not server.shutdown_complete:
            server.shutdown(drain=True)
    return 0


def serve_tcp(server, host: str = "127.0.0.1",
              port: int = 0, ready=None) -> int:
    """Serve line-JSON over TCP; one reader thread per connection.

    Args:
        server: a :class:`FillServer` or router (duck-typed).
        ready: optional callback invoked with the bound ``(host, port)``
            once the socket listens (lets tests/benches use port 0).
    """
    import socketserver

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            write_lock = threading.Lock()

            def reply(message: dict) -> None:
                data = (encode(message) + "\n").encode()
                with write_lock:
                    self.wfile.write(data)
                    self.wfile.flush()

            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                server.handle_line(line, reply)
                if server.shutdown_complete:
                    return

    class TcpServer(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with TcpServer((host, port), Handler) as tcp:
        server.start()
        stopper = threading.Thread(
            target=lambda: (server.wait_shutdown(), tcp.shutdown()),
            daemon=True,
        )
        stopper.start()
        if ready is not None:
            ready(tcp.server_address)
        try:
            tcp.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            pass
        finally:
            if not server.shutdown_complete:
                server.shutdown(drain=True)
    return 0
