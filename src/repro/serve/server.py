"""The resident fill-synthesis service.

:class:`FillServer` owns the moving parts — registry, bounded queue,
worker pool, micro-batchers, journal, stats — and is transport-neutral:
:func:`serve_pipe` runs it over stdin/stdout, :func:`serve_tcp` over a
TCP socket, and tests drive :meth:`FillServer.handle_line` directly.

Request lifecycle::

    client line ──parse──▶ admission ──▶ bounded queue ──▶ worker pool
                     │          │                              │
                     ▼          ▼                              ▼
                protocol    journal(accept, fsync)      execute (fill /
                 errors      + "accepted" ack            simulate), with
                                                         coalesced
                                                         surrogate passes
                                                              │
                                     journal(done) ◀── terminal response

Graceful shutdown stops admission, drains the queue and in-flight jobs
(bounded by ``drain_timeout_s``), closes the batchers and the journal.
Because accepts are journalled before the ack, a crash instead of a
drain loses nothing: the next server started on the same journal path
re-runs every accepted-but-unfinished job spec.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import config as repro_config
from ..baselines import cai_fill, lin_fill, tao_fill
from ..obs import trace as obs_trace
from ..cmp.simulator import CmpSimulator
from ..core import FillProblem, NeurFill, ScoreCoefficients, evaluate_solution
from ..core.scoring import planarity_metrics
from ..layout.io import layout_from_dict, load_layout
from ..layout.layout import Layout, apply_fill
from ..optimize.sqp import SqpOptimizer
from ..surrogate import TrainConfig, pretrain_surrogate
from .batcher import CoalescedNetwork, MicroBatcher, SimulateBatcher
from .jobqueue import BoundedJobQueue, Job, JobState
from .journal import JobJournal
from .protocol import (
    IMMEDIATE_OPS,
    JOB_OPS,
    ProtocolError,
    Request,
    encode,
    parse_request,
    response,
)
from .registry import ModelRegistry, layout_fingerprint
from .stats import ServeStats

FILL_METHODS = ("lin", "tao", "cai", "neurfill-pkb", "neurfill-mm")


@dataclass
class ServeConfig:
    """Tunable knobs of one server process (CLI flags + env defaults)."""

    workers: int = field(
        default_factory=repro_config.serve_workers_default)
    queue_capacity: int = field(
        default_factory=repro_config.serve_queue_capacity_default)
    max_batch: int = field(
        default_factory=repro_config.serve_max_batch_default)
    flush_ms: float = field(
        default_factory=repro_config.serve_flush_ms_default)
    default_timeout_s: float | None = None
    drain_timeout_s: float = repro_config.DEFAULT_SERVE_DRAIN_TIMEOUT_S
    #: ``beta_runtime`` for calibrated score coefficients — matches the
    #: one-shot CLI path so served results are comparable bit for bit.
    beta_runtime: float = 60.0
    #: Allow jobs without a registered model to train a surrogate inline
    #: (slow; off for latency-sensitive deployments).
    allow_train: bool = True
    max_bound_networks: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.flush_ms < 0:
            raise ValueError(f"flush_ms must be >= 0, got {self.flush_ms}")


class FillServer:
    """Long-running fill/simulate service over a line-JSON protocol."""

    def __init__(self, registry: ModelRegistry | None = None,
                 serve_config: ServeConfig | None = None,
                 journal_path: str | None = None):
        self.registry = registry or ModelRegistry()
        self.config = serve_config or ServeConfig()
        self.stats = ServeStats()
        self.queue = BoundedJobQueue(self.config.queue_capacity)
        self.simulator = CmpSimulator()
        self._journal: JobJournal | None = None
        self._resume_specs: list[dict] = []
        if journal_path is not None:
            self._resume_specs, self._journal = JobJournal.recover(
                journal_path)
        self._layout_cache: dict[str, tuple[tuple, Layout, str]] = {}
        self._coeff_cache: dict[str, ScoreCoefficients] = {}
        self._batchers: dict[tuple[str, str],
                             tuple[CoalescedNetwork, MicroBatcher]] = {}
        self._sim_batcher = SimulateBatcher(
            max_batch=self.config.max_batch,
            max_delay_s=self.config.flush_ms / 1e3, stats=self.stats,
        )
        self._lock = threading.Lock()
        self._drain_cond = threading.Condition()
        self._inflight = 0
        self._workers: list[threading.Thread] = []
        self._accepting = True
        self._started = False
        self._started_at = time.monotonic()
        self._shutdown_event = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool and resume journalled jobs."""
        if self._started:
            return
        self._started = True
        for i in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)
        for spec in self._resume_specs:
            try:
                request = parse_request(encode(spec))
            except ProtocolError:
                continue  # journalled by an incompatible version; drop
            self.stats.incr("resumed")
            self._admit(request, lambda message: None)
        self._resume_specs = []

    @property
    def shutdown_complete(self) -> bool:
        return self._shutdown_event.is_set()

    def wait_shutdown(self, timeout: float | None = None) -> bool:
        return self._shutdown_event.wait(timeout)

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop admission, drain (or cancel) pending work, release all.

        Args:
            drain: finish queued + in-flight jobs before returning; when
                ``False`` queued jobs are cancelled (in-flight ones still
                run to completion — execution is not preemptible).
            timeout: overrides ``config.drain_timeout_s``.
        """
        if self._shutdown_event.is_set():
            return
        self._accepting = False
        if not drain:
            for job in self.queue.drain_pending():
                self.stats.incr("cancelled")
                self._finish(job, "cancelled", error="server shutdown",
                             counted=False)
        deadline = time.monotonic() + (
            self.config.drain_timeout_s if timeout is None else timeout)
        with self._drain_cond:
            while (self.queue.depth() > 0 or self._inflight > 0) \
                    and time.monotonic() < deadline:
                self._drain_cond.wait(0.05)
        self.queue.close()
        for thread in self._workers:
            thread.join(timeout=5.0)
        with self._lock:
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for _, batcher in batchers:
            batcher.close()
        self._sim_batcher.close()
        if self._journal is not None:
            self._journal.close()
        self._shutdown_event.set()

    # ------------------------------------------------------------------
    # Request handling (transport threads)
    # ------------------------------------------------------------------
    def handle_line(self, line: str, reply) -> None:
        """Parse and dispatch one protocol line; never raises."""
        reply = _safe_reply(reply)
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.stats.incr("protocol_errors")
            reply(response(None, "error", error=str(exc)))
            return
        if request.op in JOB_OPS:
            self._admit(request, reply)
        elif request.op in IMMEDIATE_OPS:
            self._handle_immediate(request, reply)

    def _admit(self, request: Request, reply) -> None:
        if not self._accepting:
            self.stats.incr("rejected")
            reply(response(request.id, "rejected",
                           error="server is shutting down"))
            return
        error = self._validate_job(request)
        if error is not None:
            self.stats.incr("rejected")
            reply(response(request.id, "rejected", error=error))
            return
        if self._journal is not None:
            self._journal.record_accept(request)
        job = Job(request=request, reply=reply)
        if job.deadline is None and self.config.default_timeout_s:
            job.deadline = job.accepted_at + self.config.default_timeout_s
        if self.queue.put(job):
            self.stats.incr("accepted")
            reply(response(request.id, "accepted",
                           result={"queue_depth": self.queue.depth()}))
        else:
            self.stats.incr("rejected")
            if self._journal is not None:
                self._journal.record_done(request.id, "rejected")
            if self.queue.closed:
                reason = "server is shutting down"
            elif self.queue.depth() >= self.queue.capacity:
                reason = f"queue full (capacity {self.queue.capacity})"
            else:
                reason = f"duplicate job id {request.id!r}"
            reply(response(request.id, "rejected", error=reason))

    def _validate_job(self, request: Request) -> str | None:
        """Cheap admission-time validation (full errors surface at run)."""
        params = request.params
        if "layout" not in params and "layout_path" not in params:
            return "params must include 'layout' or 'layout_path'"
        if request.op == "fill":
            method = params.get("method", "neurfill-pkb")
            if method not in FILL_METHODS:
                return (f"unknown method {method!r}; "
                        f"expected one of {FILL_METHODS}")
            if method.startswith("neurfill") and "model" not in params \
                    and not self.config.allow_train:
                return ("no 'model' given and inline training is "
                        "disabled on this server")
        return None

    def _handle_immediate(self, request: Request, reply) -> None:
        if request.op == "ping":
            reply(response(request.id, "done", result={"pong": True}))
        elif request.op == "stats":
            reply(response(request.id, "done", result=self.stats_snapshot()))
        elif request.op == "models":
            reply(response(request.id, "done",
                           result={"models": self.registry.describe()}))
        elif request.op == "cancel":
            self._handle_cancel(request, reply)
        elif request.op == "shutdown":
            drain = bool(request.params.get("drain", True))
            self.shutdown(drain=drain)
            reply(response(request.id, "done", result={"drained": drain}))

    def _handle_cancel(self, request: Request, reply) -> None:
        target = request.params.get("job_id")
        if not isinstance(target, str) or not target:
            reply(response(request.id, "error",
                           error="cancel params need a 'job_id' string"))
            return
        job = self.queue.cancel(target)
        if job is not None:
            self.stats.incr("cancelled")
            self._finish(job, "cancelled", error="cancelled by request",
                         counted=False)
        reply(response(request.id, "done",
                       result={"job_id": target,
                               "cancelled": job is not None}))

    def stats_snapshot(self) -> dict:
        snapshot = self.stats.snapshot()
        snapshot.update({
            "queue_depth": self.queue.depth(),
            "queue_capacity": self.queue.capacity,
            "inflight": self._inflight,
            "workers": self.config.workers,
            "accepting": self._accepting,
            "coalescing": self.config.max_batch > 1,
            "max_batch": self.config.max_batch,
            "flush_ms": self.config.flush_ms,
            "models": self.registry.names(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        })
        return snapshot

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            for job in self.queue.expire_due():
                self._finish(job, "timeout",
                             error=f"timed out after {job.request.timeout_s}s"
                                   " in queue")
            job = self.queue.get(timeout=0.1)
            if job is None:
                if self.queue.closed:
                    return
                continue
            self.stats.record_latency(
                "queue_wait", job.started_at - job.accepted_at)
            with self._drain_cond:
                self._inflight += 1
            try:
                if job.expired():
                    self._finish(job, "timeout",
                                 error="deadline passed before execution")
                    continue
                try:
                    result = self._execute(job.request)
                except Exception as exc:  # job failure must not kill worker
                    self._finish(job, "error", error=str(exc))
                else:
                    if job.expired():
                        self._finish(job, "timeout",
                                     error="completed after its deadline")
                    else:
                        self._finish(job, "done", result=result)
            finally:
                with self._drain_cond:
                    self._inflight -= 1
                    self._drain_cond.notify_all()

    def _finish(self, job: Job, status: str, result: dict | None = None,
                error: str | None = None, counted: bool = True) -> None:
        job.state = {
            "done": JobState.DONE, "error": JobState.FAILED,
            "cancelled": JobState.CANCELLED, "timeout": JobState.TIMEOUT,
        }.get(status, JobState.DONE)
        now = time.monotonic()
        if job.started_at is not None:
            self.stats.record_latency("execute", now - job.started_at)
        self.stats.record_latency("total", now - job.accepted_at)
        if counted:
            self.stats.incr("completed" if status == "done" else status)
        if self._journal is not None:
            self._journal.record_done(job.id, status)
        job.reply(response(job.id, status, result=result, error=error))

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def _execute(self, request: Request) -> dict:
        with obs_trace.span(f"serve.{request.op}", cat="serve",
                            job_id=request.id):
            if request.op == "simulate":
                return self._simulate_job(request.params)
            return self._fill_job(request.params)

    def _load_layout(self, params: dict) -> tuple[Layout, str]:
        if "layout" in params:
            layout = layout_from_dict(params["layout"])
            return layout, layout_fingerprint(layout)
        path = params.get("layout_path")
        if not isinstance(path, str) or not path:
            raise ValueError("params must include 'layout' or 'layout_path'")
        from pathlib import Path
        stat = Path(path).stat()
        stamp = (stat.st_mtime_ns, stat.st_size)
        with self._lock:
            cached = self._layout_cache.get(path)
            if cached is not None and cached[0] == stamp:
                return cached[1], cached[2]
        layout = load_layout(path)
        fingerprint = layout_fingerprint(layout)
        with self._lock:
            self._layout_cache[path] = (stamp, layout, fingerprint)
            while len(self._layout_cache) > 4 * self.config.max_bound_networks:
                self._layout_cache.pop(next(iter(self._layout_cache)))
        return layout, fingerprint

    def _coefficients(self, layout: Layout,
                      fingerprint: str) -> ScoreCoefficients:
        """Calibrated coefficients, cached per layout content.

        Calibration runs one unfilled simulation; it is deterministic, so
        the cached value is bitwise what the one-shot CLI recomputes.
        """
        with self._lock:
            cached = self._coeff_cache.get(fingerprint)
        if cached is not None:
            return cached
        coefficients = ScoreCoefficients.calibrated(
            layout, self.simulator, beta_runtime=self.config.beta_runtime)
        with self._lock:
            self._coeff_cache[fingerprint] = coefficients
            while len(self._coeff_cache) > 8 * self.config.max_bound_networks:
                self._coeff_cache.pop(next(iter(self._coeff_cache)))
        return coefficients

    def _coalesced_network(self, model_name: str, layout: Layout,
                           fingerprint: str):
        key = (model_name, fingerprint)
        with self._lock:
            entry = self._batchers.get(key)
            if entry is not None:
                return entry[0]
        network = self.registry.network_for(model_name, layout, fingerprint)
        batcher = MicroBatcher(
            network, max_batch=self.config.max_batch,
            max_delay_s=self.config.flush_ms / 1e3, stats=self.stats,
        )
        coalesced = CoalescedNetwork(network, batcher)
        evicted: list[MicroBatcher] = []
        with self._lock:
            if key in self._batchers:  # lost a bind race; keep the winner
                evicted.append(batcher)
                coalesced = self._batchers[key][0]
            else:
                self._batchers[key] = (coalesced, batcher)
                while len(self._batchers) > self.config.max_bound_networks:
                    oldest = next(iter(self._batchers))
                    evicted.append(self._batchers.pop(oldest)[1])
        for old in evicted:
            old.close()
        return coalesced

    def _fill_job(self, params: dict) -> dict:
        layout, fingerprint = self._load_layout(params)
        method = params.get("method", "neurfill-pkb")
        problem = FillProblem(layout, self._coefficients(layout, fingerprint))
        if method == "lin":
            result = lin_fill(problem)
        elif method == "tao":
            result = tao_fill(problem)
        elif method == "cai":
            result = cai_fill(problem, simulator=self.simulator,
                              max_sqp_iterations=3)
        else:
            model_name = params.get("model")
            if model_name is not None:
                network = self._coalesced_network(
                    str(model_name), layout, fingerprint)
            else:
                if not self.config.allow_train:
                    raise ValueError(
                        "no 'model' given and inline training is disabled")
                network, _, _ = pretrain_surrogate(
                    [layout], layout,
                    sample_count=int(params.get("train_samples", 30)),
                    tile_rows=layout.grid.rows, tile_cols=layout.grid.cols,
                    base_channels=8, depth=2,
                    config=TrainConfig(
                        epochs=int(params.get("train_epochs", 20)),
                        batch_size=8),
                    simulator=self.simulator,
                    seed=int(params.get("seed", 0)),
                )
            neurfill = NeurFill(
                problem, network,
                optimizer=SqpOptimizer(max_iter=80, tol=1e-9),
                simulator=self.simulator,
            )
            result = neurfill.run(
                method,
                seed=int(params.get("seed", 0)),
                max_evaluations=int(params.get("max_evaluations", 500)),
                top_k=int(params.get("top_k", 3)),
            )
        payload = {
            "method": result.method,
            "layout": layout.name,
            "quality": result.quality,
            "total_fill": result.total_fill,
            "runtime_s": result.runtime_s,
            "evaluations": result.evaluations,
            "starts": result.starts,
        }
        if params.get("score", True):
            score = evaluate_solution(problem, result.fill, method,
                                      self.simulator,
                                      runtime_s=result.runtime_s)
            payload["score"] = {
                "delta_h": score.delta_h,
                "quality": score.quality,
                "overall": score.overall,
            }
        if params.get("return_fill"):
            payload["fill"] = result.fill.tolist()
        fill_out = params.get("fill_out")
        if fill_out:
            np.savez(fill_out, fill=result.fill)
            payload["fill_out"] = str(fill_out)
        return payload

    def _simulate_job(self, params: dict) -> dict:
        layout, _ = self._load_layout(params)
        simulator = self.simulator
        polish_time = params.get("polish_time")
        if polish_time:
            from ..cmp import ProcessParams
            simulator = CmpSimulator(
                ProcessParams(polish_time_s=float(polish_time)))
        # Route through the simulate coalescer: concurrent simulate jobs
        # sharing this physics and grid polish as one batched pass,
        # bitwise identical to simulate_layout.
        result = self._sim_batcher.simulate(apply_fill(layout), simulator)
        delta_h, sigma, line, outliers = planarity_metrics(result.height)
        return {
            "layout": layout.name,
            "rows": layout.grid.rows,
            "cols": layout.grid.cols,
            "layers": layout.num_layers,
            "delta_h": delta_h,
            "sigma": sigma,
            "line_deviation": line,
            "outliers": outliers,
            "mean_dishing": float(result.dishing.mean()),
            "mean_erosion": float(result.erosion.mean()),
        }


def _safe_reply(reply):
    """Wrap a transport write so a dead client cannot kill a worker."""
    def _reply(message: dict) -> None:
        try:
            reply(message)
        except (BrokenPipeError, ConnectionError, OSError, ValueError):
            pass
    return _reply


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------
def serve_pipe(server: FillServer, stdin=None, stdout=None) -> int:
    """Serve line-JSON over stdin/stdout until EOF or a shutdown op.

    Protocol traffic owns stdout; anything human-readable must go to
    stderr.  EOF on stdin triggers a graceful drain, so piping a finite
    job list into ``repro serve --pipe`` works as a batch runner.
    """
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    write_lock = threading.Lock()

    def reply(message: dict) -> None:
        line = encode(message) + "\n"
        with write_lock:
            stdout.write(line)
            stdout.flush()

    server.start()
    try:
        for line in stdin:
            if not line.strip():
                continue
            server.handle_line(line, reply)
            if server.shutdown_complete:
                break
    except KeyboardInterrupt:
        pass
    finally:
        if not server.shutdown_complete:
            server.shutdown(drain=True)
    return 0


def serve_tcp(server: FillServer, host: str = "127.0.0.1",
              port: int = 0, ready=None) -> int:
    """Serve line-JSON over TCP; one reader thread per connection.

    Args:
        ready: optional callback invoked with the bound ``(host, port)``
            once the socket listens (lets tests/benches use port 0).
    """
    import socketserver

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            write_lock = threading.Lock()

            def reply(message: dict) -> None:
                data = (encode(message) + "\n").encode()
                with write_lock:
                    self.wfile.write(data)
                    self.wfile.flush()

            for raw in self.rfile:
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                server.handle_line(line, reply)
                if server.shutdown_complete:
                    return

    class TcpServer(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with TcpServer((host, port), Handler) as tcp:
        server.start()
        stopper = threading.Thread(
            target=lambda: (server.wait_shutdown(), tcp.shutdown()),
            daemon=True,
        )
        stopper.start()
        if ready is not None:
            ready(tcp.server_address)
        try:
            tcp.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            pass
        finally:
            if not server.shutdown_complete:
                server.shutdown(drain=True)
    return 0
