"""Service introspection: counters, batch histogram, latency percentiles.

Everything here is O(1) per event and bounded in memory (sliding sample
windows), so a long-lived server never accumulates unbounded state.
"""

from __future__ import annotations

import threading
from collections import Counter, deque


class LatencyTracker:
    """Sliding-window latency percentiles for one pipeline stage."""

    def __init__(self, window: int = 2048):
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self._count += 1
        self._total += seconds

    def snapshot(self) -> dict:
        """Counters plus p50/p95/p99 over the sample window, in ms."""
        out = {"count": self._count}
        if self._count:
            out["mean_ms"] = round(self._total / self._count * 1e3, 3)
        if self._samples:
            ordered = sorted(self._samples)
            n = len(ordered)
            for q in (50, 95, 99):
                idx = min(n - 1, max(0, round(q / 100 * (n - 1))))
                out[f"p{q}_ms"] = round(ordered[idx] * 1e3, 3)
        return out


class ServeStats:
    """Thread-safe event sink shared by queue, batcher and workers."""

    #: Pipeline stages with latency tracking: time spent waiting in the
    #: queue, executing, and accepted-to-terminal-response overall.
    STAGES = ("queue_wait", "execute", "total")

    def __init__(self, window: int = 2048):
        self._lock = threading.Lock()
        self._counters: Counter[str] = Counter()
        self._batch_sizes: Counter[int] = Counter()
        self._stages = {name: LatencyTracker(window) for name in self.STAGES}

    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    def record_batch(self, size: int) -> None:
        """One micro-batch of ``size`` coalesced evaluations was flushed."""
        with self._lock:
            self._batch_sizes[size] += 1

    def record_latency(self, stage: str, seconds: float) -> None:
        with self._lock:
            self._stages[stage].record(seconds)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "batch_histogram": {
                    str(size): count
                    for size, count in sorted(self._batch_sizes.items())
                },
                "latency": {
                    name: tracker.snapshot()
                    for name, tracker in self._stages.items()
                },
            }
