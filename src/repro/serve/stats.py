"""Service introspection: one view over the shared ``repro.obs`` metrics.

Historically this module owned its own counter/histogram/latency
implementations; they now live in :mod:`repro.obs.metrics` (extracted
with two correctness fixes — see that module's docstring: the latency
mean is computed over the same sliding window as the percentiles, with
the lifetime count reported separately as ``count_total``, and the
percentile index uses the banker's-rounding-free nearest-rank formula).
:class:`ServeStats` keeps its PR 3 API — ``incr`` / ``record_batch`` /
``record_latency`` / ``snapshot`` — as a thin facade over one
:class:`~repro.obs.metrics.MetricsRegistry`, so the serve ``stats``
response is simply a stable serialisation of the shared data.

Serialisation contract: ``batch_histogram`` keys are **strings**,
sorted by numeric value (``"2"`` before ``"10"``), so clients can parse
the JSON deterministically regardless of Python dict ordering history.
Everything is O(1) per event and bounded in memory, so a long-lived
server never accumulates unbounded state.
"""

from __future__ import annotations

from ..obs.metrics import (  # re-exported for backwards compatibility
    DEFAULT_WINDOW,
    Histogram,
    LatencyTracker,
    MetricsRegistry,
)

__all__ = ["ServeStats", "LatencyTracker", "Histogram", "MetricsRegistry"]

#: Histogram name of coalesced micro-batch sizes inside the registry.
BATCH_HISTOGRAM = "batch_size"

#: Histogram name of coalesced simulate-job batch sizes.
SIM_BATCH_HISTOGRAM = "sim_batch_size"


class ServeStats:
    """Thread-safe event sink shared by queue, batcher and workers."""

    #: Pipeline stages with latency tracking: time spent waiting in the
    #: queue, executing, and accepted-to-terminal-response overall.
    STAGES = ("queue_wait", "execute", "total")

    def __init__(self, window: int = DEFAULT_WINDOW,
                 registry: MetricsRegistry | None = None):
        self._registry = registry or MetricsRegistry(window=window)
        for stage in self.STAGES:
            self._registry.ensure_latency(stage)

    @property
    def registry(self) -> MetricsRegistry:
        """The backing shared registry (for obs integration and tests)."""
        return self._registry

    def incr(self, name: str, n: int = 1) -> None:
        self._registry.incr(name, n)

    def record_batch(self, size: int) -> None:
        """One micro-batch of ``size`` coalesced evaluations was flushed."""
        self._registry.observe(BATCH_HISTOGRAM, int(size))

    def record_sim_batch(self, size: int) -> None:
        """One batch of ``size`` coalesced simulate jobs was polished."""
        self._registry.observe(SIM_BATCH_HISTOGRAM, int(size))

    def record_latency(self, stage: str, seconds: float) -> None:
        if stage not in self.STAGES:
            raise KeyError(f"unknown latency stage {stage!r}; "
                           f"expected one of {self.STAGES}")
        self._registry.record_latency(stage, seconds)

    def set_gauge(self, name: str, value: float) -> None:
        """Latest value of a point-in-time quantity (queue depth, ...)."""
        self._registry.set_gauge(name, value)

    def snapshot(self) -> dict:
        shared = self._registry.snapshot()
        snapshot = {
            "counters": shared["counters"],
            "batch_histogram": shared["histograms"].get(BATCH_HISTOGRAM, {}),
            "sim_batch_histogram":
                shared["histograms"].get(SIM_BATCH_HISTOGRAM, {}),
            "latency": {stage: shared["latency"][stage]
                        for stage in self.STAGES
                        if stage in shared["latency"]},
        }
        if "gauges" in shared:
            snapshot["gauges"] = shared["gauges"]
        return snapshot
