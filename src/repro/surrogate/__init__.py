"""CMP neural network surrogate: extraction, UNet, objectives, training."""

from .datagen import SurrogateDataset, build_dataset, simulate_group, simulate_sample
from .extraction import (
    NUM_FEATURE_CHANNELS,
    ExtractionConstants,
    extract_parameter_matrix,
    extract_parameter_matrix_numpy,
)
from .network import (
    BatchPlanarityEvaluation,
    CmpNeuralNetwork,
    HeightNormalizer,
    PlanarityEvaluation,
)
from .persist import (
    SurrogateBundle,
    bind_surrogate,
    load_surrogate,
    load_surrogate_bundle,
    save_surrogate,
)
from .objectives import (
    DEFAULT_ETA,
    PlanarityBreakdown,
    PlanarityWeights,
    height_variance,
    line_deviation,
    outliers,
    outliers_hard,
    planarity_score,
    planarity_score_batch,
    score_function,
)
from .train import (
    AccuracyReport,
    TrainConfig,
    TrainHistory,
    evaluate_accuracy,
    pretrain_surrogate,
    train_unet,
)

__all__ = [
    "AccuracyReport",
    "BatchPlanarityEvaluation",
    "CmpNeuralNetwork",
    "DEFAULT_ETA",
    "ExtractionConstants",
    "HeightNormalizer",
    "NUM_FEATURE_CHANNELS",
    "PlanarityBreakdown",
    "PlanarityEvaluation",
    "PlanarityWeights",
    "SurrogateBundle",
    "SurrogateDataset",
    "TrainConfig",
    "bind_surrogate",
    "TrainHistory",
    "build_dataset",
    "evaluate_accuracy",
    "extract_parameter_matrix",
    "extract_parameter_matrix_numpy",
    "height_variance",
    "line_deviation",
    "load_surrogate",
    "load_surrogate_bundle",
    "outliers",
    "outliers_hard",
    "planarity_score",
    "planarity_score_batch",
    "pretrain_surrogate",
    "save_surrogate",
    "score_function",
    "simulate_group",
    "simulate_sample",
    "train_unet",
]
