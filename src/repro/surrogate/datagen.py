"""Training-set construction for the UNet surrogate (paper Fig. 8 + Eq. 20).

Pipeline per sample: two-step random layout (window re-assembly + random
legal fill) -> extraction-layer feature planes -> full-chip CMP simulation
-> normalised height label.

Sample *generation* (assembly + random fill) is cheap and RNG-driven;
sample *labelling* (the teacher CMP simulation) is expensive and fully
deterministic.  :func:`build_dataset` therefore always draws layouts in
the parent process with the one seeded RNG stream, and optionally farms
only the simulations out to a :class:`~concurrent.futures.ProcessPoolExecutor`
— serial and parallel runs produce byte-identical datasets.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cmp.simulator import CmpSimulator
from ..config import rng_from_seed
from ..layout.assembly import generate_training_layouts
from ..layout.layout import Layout, apply_fill
from .extraction import ExtractionConstants, extract_parameter_matrix_numpy
from .network import HeightNormalizer


@dataclass
class SurrogateDataset:
    """Arrays ready for UNet training.

    Attributes:
        inputs: ``(n, L, C, N, M)`` feature planes per sample and layer.
        targets: ``(n, L, 1, N, M)`` normalised simulator heights.
        normalizer: the affine height normalisation used for ``targets``.
    """

    inputs: np.ndarray
    targets: np.ndarray
    normalizer: HeightNormalizer

    def __post_init__(self) -> None:
        if self.inputs.shape[0] != self.targets.shape[0]:
            raise ValueError("inputs/targets sample count mismatch")

    def __len__(self) -> int:
        return self.inputs.shape[0]

    def flat_inputs(self) -> np.ndarray:
        """Merge (sample, layer) into one batch axis: ``(n*L, C, N, M)``."""
        n, L = self.inputs.shape[:2]
        return self.inputs.reshape(n * L, *self.inputs.shape[2:])

    def flat_targets(self) -> np.ndarray:
        n, L = self.targets.shape[:2]
        return self.targets.reshape(n * L, *self.targets.shape[2:])

    def split(self, test_fraction: float = 0.2,
              seed: int | None = 0) -> tuple["SurrogateDataset", "SurrogateDataset"]:
        """Random train/test split sharing the normalizer."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
        n = len(self)
        rng = rng_from_seed(seed)
        order = rng.permutation(n)
        n_test = max(1, int(round(n * test_fraction)))
        test_idx, train_idx = order[:n_test], order[n_test:]
        if train_idx.size == 0:
            raise ValueError("split left no training samples")
        make = lambda idx: SurrogateDataset(
            self.inputs[idx], self.targets[idx], self.normalizer
        )
        return make(train_idx), make(test_idx)


def simulate_sample(layout: Layout, fill: np.ndarray,
                    simulator: CmpSimulator) -> tuple[np.ndarray, np.ndarray]:
    """One (features, physical heights) pair for an assembled layout."""
    consts = ExtractionConstants.from_layout(layout)
    features = extract_parameter_matrix_numpy(fill, consts)
    heights = simulator.simulate_layout(layout, fill).height
    return features, heights


def simulate_group(
    pairs: Sequence[tuple[Layout, np.ndarray]],
    simulator: CmpSimulator,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Label a group of (layout, fill) pairs with one batched simulation.

    Assembled layouts share one grid and layer count, so the group's
    feature stacks batch into a single
    :meth:`~repro.cmp.simulator.CmpSimulator.simulate_batch` call —
    bitwise identical heights to per-pair :func:`simulate_sample`, one
    polish loop instead of ``len(pairs)``.  A single-pair group takes
    the solo path directly.
    """
    if len(pairs) == 1:
        layout, fill = pairs[0]
        return [simulate_sample(layout, fill, simulator)]
    feats = [
        extract_parameter_matrix_numpy(
            fill, ExtractionConstants.from_layout(layout))
        for layout, fill in pairs
    ]
    stacks = [apply_fill(layout, fill) for layout, fill in pairs]
    result = simulator.simulate_batch(stacks)
    return [(feats[k], result.height[k]) for k in range(len(pairs))]


def _simulate_group(
    args: tuple[list[tuple[Layout, np.ndarray]], CmpSimulator],
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Picklable worker wrapper around :func:`simulate_group`."""
    group, simulator = args
    return simulate_group(group, simulator)


def build_dataset(
    sources: list[Layout],
    count: int,
    rows: int,
    cols: int,
    simulator: CmpSimulator | None = None,
    seed: int = 0,
    normalizer: HeightNormalizer | None = None,
    n_workers: int | None = None,
    sim_batch: int = 8,
) -> SurrogateDataset:
    """Generate ``count`` labelled samples via the two-step procedure.

    Args:
        sources: layouts whose windows seed the assembly pool (the paper
            uses its three designs).
        count: number of assembled layouts.
        rows / cols: network input size in windows (paper: 100x100).
        simulator: teacher simulator (default calibration if omitted).
        seed: RNG seed for assembly and fills.
        normalizer: reuse an existing normalisation (e.g. the training
            set's) instead of fitting one — required for a comparable
            test/extension set.
        n_workers: number of worker processes for the teacher simulations.
            ``None`` or ``1`` keeps everything in-process.  Layout assembly
            always runs in the parent with the seeded RNG, and the farmed
            simulations are deterministic, so the dataset is byte-identical
            for every worker count.
        sim_batch: layouts per batched teacher simulation (micro-batch).
            Composes with ``n_workers``: each worker polishes whole
            micro-batches.  ``1`` disables batching.  The batched
            simulator is bitwise identical to the solo one, so the
            dataset is byte-identical for every ``sim_batch``.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if n_workers is not None and n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if sim_batch < 1:
        raise ValueError(f"sim_batch must be >= 1, got {sim_batch}")
    simulator = simulator or CmpSimulator()
    pairs = generate_training_layouts(sources, count, rows, cols, seed=seed)
    groups = [pairs[i : i + sim_batch] for i in range(0, len(pairs), sim_batch)]
    if n_workers is not None and n_workers > 1:
        tasks = [(group, simulator) for group in groups]
        with ProcessPoolExecutor(max_workers=min(n_workers, len(groups))) as pool:
            grouped = list(pool.map(_simulate_group, tasks))
    else:
        grouped = [simulate_group(group, simulator) for group in groups]
    results = [pair for group in grouped for pair in group]
    feats = [f for f, _ in results]
    heights = [h for _, h in results]
    inputs = np.stack(feats)  # (n, L, C, N, M)
    raw = np.stack(heights)  # (n, L, N, M)
    if normalizer is None:
        normalizer = HeightNormalizer.fit(raw)
    targets = normalizer.normalize(raw)[:, :, None, :, :]
    return SurrogateDataset(inputs=inputs, targets=targets, normalizer=normalizer)
