"""Extraction layer: differentiable layout parameter matrix **L**(x).

Paper Section IV-A: "pattern-related parameters of each window such as
density, average width, length, perimeter of coppers, and process-related
parameters such as pressure, heights of trench side and bottom, are
extracted into a layout parameter matrix **L**.  Pattern-related
parameters in **L** are updated with regard to fill amount **x** ... and
the gradient dL/dx can be calculated automatically."

This module is the autodiff twin of
:func:`repro.layout.layout.apply_fill`: identical feature-update formulas,
expressed with :class:`~repro.nn.tensor.Tensor` ops so that
``dL/dx`` flows through backpropagation.  A unit test asserts the two
implementations agree numerically.

The four feature planes per layer (the network's input channels):

0. post-fill wire density (dimensionless, ~[0, 1]);
1. post-fill copper perimeter, normalised;
2. post-fill average wire width, normalised by the dummy side;
3. trench depth, normalised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.layout import DUMMY_SIDE_UM, Layout
from ..nn.tensor import Tensor, capture_recorder

#: Channel count of the layout parameter matrix.
NUM_FEATURE_CHANNELS: int = 4

#: Fixed feature normalisers so checkpoints transfer across layouts.
PERIMETER_SCALE: float = 1.0e5
WIDTH_SCALE: float = DUMMY_SIDE_UM
DEPTH_SCALE: float = 4000.0


@dataclass(frozen=True)
class ExtractionConstants:
    """Per-layout constants the extraction layer bakes in once."""

    density: np.ndarray  # (L, N, M) pre-fill wire density
    perimeter: np.ndarray  # (L, N, M) pre-fill copper perimeter (um)
    wire_width: np.ndarray  # (L, N, M) pre-fill average width (um)
    trench_depth: np.ndarray  # (L, N, M)
    window_area: float
    dummy_side: float = DUMMY_SIDE_UM

    def crop(self, rows: slice, cols: slice) -> "ExtractionConstants":
        """Constants restricted to a window sub-grid (for tiled inference).

        Extraction is purely per-window, so cropping the constants and the
        fill identically commutes with :func:`extract_parameter_matrix`.
        """
        return ExtractionConstants(
            density=self.density[:, rows, cols],
            perimeter=self.perimeter[:, rows, cols],
            wire_width=self.wire_width[:, rows, cols],
            trench_depth=self.trench_depth[:, rows, cols],
            window_area=self.window_area,
            dummy_side=self.dummy_side,
        )

    @classmethod
    def from_layout(cls, layout: Layout,
                    dummy_side: float = DUMMY_SIDE_UM) -> "ExtractionConstants":
        depths = layout.trench_depths()[:, None, None] * np.ones(layout.grid.shape)
        return cls(
            density=layout.density_stack(),
            perimeter=layout.perimeter_stack(),
            wire_width=layout.width_stack(),
            trench_depth=depths,
            window_area=layout.grid.window_area,
            dummy_side=dummy_side,
        )


def extract_parameter_matrix(fill: Tensor, consts: ExtractionConstants) -> Tensor:
    """Differentiable **L**(x): fill ``(L, N, M)`` -> features ``(L, C, N, M)``.

    Layers become the batch dimension so one UNet weights-set serves every
    layer, exactly as a segmentation network treats independent images.

    A stacked ``(K, L, N, M)`` fill (K independent fill vectors, e.g. the
    starts of one MSP-SQP round) is also accepted: the per-layout constants
    broadcast over the leading axis and the result collapses starts and
    layers into one ``(K * L, C, N, M)`` batch, so a single network
    forward/backward serves every start.
    """
    if fill.ndim not in (3, 4) or fill.shape[-3:] != consts.density.shape:
        raise ValueError(
            f"fill shape {fill.shape} != layout shape {consts.density.shape}"
        )
    area = consts.window_area
    side = consts.dummy_side
    density0 = Tensor(consts.density)
    perimeter0 = Tensor(consts.perimeter)
    width0 = Tensor(consts.wire_width)

    density = density0 + fill * (1.0 / area)
    n_dummy = fill * (1.0 / (side * side))
    perimeter = perimeter0 + n_dummy * (4.0 * side)

    wire_area = consts.density * area
    total = Tensor(wire_area) + fill
    # Guard empty windows: where wire_area + fill == 0 the width is the
    # original one; the smooth branch uses a tiny floor to stay finite.
    safe_total = total + 1e-9
    width = (width0 * Tensor(wire_area) + fill * side) / safe_total
    # The empty-window mask is applied unconditionally (keep == 1 and
    # fallback == 0 wherever the window holds copper) so the op structure
    # is data-independent — required for captured-graph replay, where the
    # traced graph must serve every future fill value.
    empty = (wire_area + np.maximum(fill.data, 0.0)) <= 0
    keep = Tensor((~empty).astype(float))
    fallback = Tensor(consts.wire_width * empty)
    recorder = capture_recorder()
    if recorder is not None:
        wire_width = consts.wire_width
        mtmp = np.empty_like(fill.data)
        stmp = np.empty(empty.shape, dtype=np.result_type(wire_area, mtmp))
        nkeep = np.empty(empty.shape, dtype=bool)
        recorder.note_workspace(
            mtmp.nbytes + stmp.nbytes + empty.nbytes + nkeep.nbytes
        )

        def refresh() -> None:
            np.maximum(fill.data, 0.0, out=mtmp)
            np.add(wire_area, mtmp, out=stmp)
            np.less_equal(stmp, 0.0, out=empty)
            np.logical_not(empty, out=nkeep)
            np.copyto(keep.data, nkeep)
            np.multiply(wire_width, empty, out=fallback.data)

        # Leaves have no compute of their own; this refresh runs before
        # any consumer in the replay's topological order.
        keep._replay = refresh
    width = width * keep + fallback

    # (L, N, M) -> batch of L images; (K, L, N, M) -> batch of K * L.
    batch = int(np.prod(fill.shape[:-2]))
    N, M = fill.shape[-2:]
    depth = np.broadcast_to(consts.trench_depth / DEPTH_SCALE, fill.shape)
    planes = [
        density.reshape(batch, 1, N, M),
        (perimeter * (1.0 / PERIMETER_SCALE)).reshape(batch, 1, N, M),
        (width * (1.0 / WIDTH_SCALE)).reshape(batch, 1, N, M),
        Tensor(depth.reshape(batch, 1, N, M)),
    ]
    from ..nn import functional as F

    return F.concat(planes, axis=1)


def extract_parameter_matrix_numpy(fill: np.ndarray,
                                   consts: ExtractionConstants) -> np.ndarray:
    """Non-differentiable fast path used for dataset generation.

    Returns the same ``(L, C, N, M)`` array as
    :func:`extract_parameter_matrix` evaluated at ``fill``.
    """
    return extract_parameter_matrix(Tensor(fill), consts).data
