"""CMP neural network: extraction layer + pre-trained UNet + objective layers.

This is the paper's Fig. 4 pipeline.  Forward propagation maps a fill
vector ``x`` to the planarity score ``S_plan``; backward propagation
returns ``dS_plan/dx`` through the chain rule of Eq. 11 — the paper's
8134x-speedup replacement for finite differences through the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.layout import Layout
from ..nn.modules import Module
from ..nn.tensor import Tensor
from .extraction import ExtractionConstants, extract_parameter_matrix
from .objectives import (
    DEFAULT_ETA,
    PlanarityBreakdown,
    PlanarityWeights,
    planarity_score,
    planarity_score_batch,
)


@dataclass(frozen=True)
class HeightNormalizer:
    """Affine map between physical heights (Angstrom) and network outputs."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        if self.std <= 0:
            raise ValueError(f"std must be positive, got {self.std}")

    def normalize(self, heights: np.ndarray) -> np.ndarray:
        return (heights - self.mean) / self.std

    def denormalize_array(self, values: np.ndarray) -> np.ndarray:
        return values * self.std + self.mean

    def denormalize(self, values: Tensor) -> Tensor:
        return values * self.std + self.mean

    def to_dict(self) -> dict:
        return {"mean": self.mean, "std": self.std}

    @classmethod
    def from_dict(cls, data: dict) -> "HeightNormalizer":
        return cls(mean=float(data["mean"]), std=float(data["std"]))

    @classmethod
    def fit(cls, heights: np.ndarray) -> "HeightNormalizer":
        std = float(heights.std())
        return cls(mean=float(heights.mean()), std=std if std > 0 else 1.0)


@dataclass
class PlanarityEvaluation:
    """Result of one forward (+ optional backward) pass."""

    s_plan: float
    breakdown: PlanarityBreakdown
    heights: np.ndarray  # (L, N, M) predicted physical heights
    gradient: np.ndarray | None  # dS_plan/dx, same shape as the fill


@dataclass
class BatchPlanarityEvaluation:
    """Result of one stacked forward (+ optional backward) pass over K
    independent fill vectors."""

    s_plan: np.ndarray  # (K,) planarity scores
    breakdowns: list[PlanarityBreakdown]  # one per fill vector
    heights: np.ndarray  # (K, L, N, M) predicted physical heights
    gradient: np.ndarray | None  # (K, L, N, M); zero rows where masked out


class CmpNeuralNetwork:
    """End-to-end differentiable stand-in for the full-chip CMP simulator.

    Args:
        layout: the target layout (fixes the extraction constants).
        unet: a pre-trained height-prediction network mapping the
            ``(L, C, N, M)`` parameter matrix to normalised heights
            ``(L, 1, N, M)``.
        normalizer: the affine height normalisation the UNet was trained
            with.
        eta: sigmoid gain of the smoothed outlier objective (Eq. 10c).

    The UNet is switched to ``eval`` mode: optimisation-time forward
    passes must use frozen batch statistics.
    """

    def __init__(self, layout: Layout, unet: Module,
                 normalizer: HeightNormalizer, eta: float = DEFAULT_ETA):
        self.layout = layout
        self.unet = unet.eval()
        self.normalizer = normalizer
        self.eta = eta
        self.consts = ExtractionConstants.from_layout(layout)

    # ------------------------------------------------------------------
    def predict_heights(self, fill: np.ndarray | None = None) -> np.ndarray:
        """Forward-only height profile prediction (physical units)."""
        if fill is None:
            fill = np.zeros(self.layout.shape)
        return self._forward(Tensor(fill)).data

    def predict_heights_tiled(
        self,
        fill: np.ndarray | None = None,
        tile: int = 128,
        halo: int | None = None,
    ) -> np.ndarray:
        """Overlap-tile streamed forward for full-chip window grids.

        The monolithic forward materialises every UNet activation for the
        whole ``(L, C, N, M)`` map at once, which for a 1000x1000 grid is
        tens of gigabytes.  This method runs the network on halo-padded
        tiles and stitches the centre crops: peak memory is bounded by one
        ``(tile + 2 * halo)``-sized forward, independent of chip size.

        Exactness: tile origins are multiples of the UNet's pooling
        :attr:`~repro.nn.unet.UNet.alignment` and the halo covers the
        network's receptive-field radius, so every stitched window sees
        the identical computation (same pooling phase, same neighbourhood,
        same zero padding at chip borders) as the monolithic forward.

        Args:
            fill: fill areas ``(L, N, M)`` (zeros when omitted).  Stacked
                ``(K, L, N, M)`` fills are not supported here — this is an
                inference path for single full-chip maps.
            tile: nominal tile side in windows (rounded up to the
                alignment).
            halo: overlap in windows; defaults to the network's exact
                receptive-field radius rounded up to the alignment.
                Smaller halos trade accuracy for speed and void the
                exactness guarantee.

        Returns:
            ``(L, N, M)`` predicted physical heights, matching
            :meth:`predict_heights` to floating-point precision.
        """
        if fill is None:
            fill = np.zeros(self.layout.shape)
        fill = np.asarray(fill, dtype=float)
        if fill.ndim != 3 or fill.shape != self.consts.density.shape:
            raise ValueError(
                f"fill must have layout shape {self.consts.density.shape}, "
                f"got {fill.shape}"
            )
        align = int(getattr(self.unet, "alignment", 1))
        if halo is None:
            radius = getattr(self.unet, "receptive_field_radius", lambda: 0)()
            halo = -(-radius // align) * align
        else:
            if halo < 0:
                raise ValueError(f"halo must be >= 0, got {halo}")
            halo = -(-halo // align) * align
        if tile < 1:
            raise ValueError(f"tile must be >= 1, got {tile}")
        tile = max(align, -(-tile // align) * align)

        L, N, M = fill.shape
        out = np.empty((L, N, M))
        for r0 in range(0, N, tile):
            r1 = min(r0 + tile, N)
            sr0, sr1 = max(0, r0 - halo), min(N, r1 + halo)
            for c0 in range(0, M, tile):
                c1 = min(c0 + tile, M)
                sc0, sc1 = max(0, c0 - halo), min(M, c1 + halo)
                rows, cols = slice(sr0, sr1), slice(sc0, sc1)
                matrix = extract_parameter_matrix(
                    Tensor(fill[:, rows, cols]), self.consts.crop(rows, cols)
                )
                heights = self.normalizer.denormalize_array(
                    self.unet(matrix).data[:, 0]
                )
                out[:, r0:r1, c0:c1] = heights[
                    :, r0 - sr0 : r1 - sr0, c0 - sc0 : c1 - sc0
                ]
        return out

    def evaluate(self, fill: np.ndarray, weights: PlanarityWeights,
                 want_grad: bool = True) -> PlanarityEvaluation:
        """Planarity score (forward) and its gradient (backward).

        Args:
            fill: fill areas, shape ``(L, N, M)``.
            weights: the design's score coefficients (Table II subset).
            want_grad: run backpropagation and return ``dS_plan/dx``.
        """
        x = Tensor(np.asarray(fill, dtype=float), requires_grad=want_grad)
        heights = self._forward(x)
        s_plan, breakdown = planarity_score(heights, weights, eta=self.eta)
        gradient = None
        if want_grad:
            s_plan.backward()
            gradient = x.grad if x.grad is not None else np.zeros_like(x.data)
        return PlanarityEvaluation(
            s_plan=s_plan.item(), breakdown=breakdown,
            heights=heights.data, gradient=gradient,
        )

    def evaluate_batch(
        self,
        fills: np.ndarray,
        weights: PlanarityWeights,
        want_grad: bool = True,
        grad_mask: np.ndarray | None = None,
    ) -> BatchPlanarityEvaluation:
        """K independent fill vectors through ONE stacked network pass.

        The MSP-SQP framework evaluates many starting points per
        iteration; pushing them one at a time wastes the network's batch
        axis.  Here the ``(K, L, N, M)`` stack is collapsed into a single
        ``(K * L, C, N, M)`` forward pass, and one backward call (seeded
        with the per-start mask) returns every requested gradient.  The
        starts never interact (BatchNorm runs in eval mode), so row ``k``
        of the result matches :meth:`evaluate` on ``fills[k]`` to machine
        precision — the only difference is the BLAS contraction order,
        which may vary with the batch size at the last-ulp level.

        Args:
            fills: stacked fill vectors, shape ``(K, L, N, M)``.
            weights: the design's score coefficients (Table II subset).
            grad_mask: optional boolean ``(K,)`` selecting which starts
                need gradients (e.g. only the non-converged ones of a
                lockstep SQP round); masked-out rows come back zero.
                Overrides ``want_grad``.
        """
        fills = np.asarray(fills, dtype=float)
        if fills.ndim != 4:
            raise ValueError(f"fills must be (K, L, N, M), got {fills.shape}")
        K = fills.shape[0]
        if grad_mask is None:
            grad_mask = np.full(K, bool(want_grad))
        else:
            grad_mask = np.asarray(grad_mask, dtype=bool)
            if grad_mask.shape != (K,):
                raise ValueError(f"grad_mask must have shape ({K},), got {grad_mask.shape}")
        need_any = bool(grad_mask.any())
        x = Tensor(fills, requires_grad=need_any)
        heights = self._forward(x)  # (K, L, N, M)
        s_plan, breakdowns = planarity_score_batch(heights, weights, eta=self.eta)
        gradient = None
        if need_any:
            # Seeding backward with the 0/1 mask computes all selected
            # per-start gradients in one reverse sweep.
            s_plan.backward(grad_mask.astype(float))
            gradient = x.grad if x.grad is not None else np.zeros_like(fills)
        return BatchPlanarityEvaluation(
            s_plan=s_plan.data.astype(float, copy=True), breakdowns=breakdowns,
            heights=heights.data, gradient=gradient,
        )

    # ------------------------------------------------------------------
    def _forward(self, fill: Tensor) -> Tensor:
        """Heights for an ``(L, N, M)`` fill or stacked ``(K, L, N, M)``."""
        matrix = extract_parameter_matrix(fill, self.consts)
        out = self.unet(matrix)  # (L or K*L, 1, N, M) normalised
        N, M = out.shape[2:]
        return self.normalizer.denormalize(out.reshape(*fill.shape[:-2], N, M))
