"""CMP neural network: extraction layer + pre-trained UNet + objective layers.

This is the paper's Fig. 4 pipeline.  Forward propagation maps a fill
vector ``x`` to the planarity score ``S_plan``; backward propagation
returns ``dS_plan/dx`` through the chain rule of Eq. 11 — the paper's
8134x-speedup replacement for finite differences through the simulator.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import astuple, dataclass

import numpy as np

from ..config import capture_enabled_default, capture_max_plans_default
from ..layout.layout import Layout
from ..nn import functional as F
from ..nn.capture import CaptureMiss, CapturedGraph
from ..nn.modules import Module
from ..nn.tensor import Tensor, get_default_dtype
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .extraction import ExtractionConstants, extract_parameter_matrix
from .objectives import (
    DEFAULT_ETA,
    PlanarityBreakdown,
    PlanarityWeights,
    breakdown_from_terms,
    breakdowns_from_terms,
    planarity_score,
    planarity_score_batch,
    planarity_terms,
)

#: Plan-cache slot for signatures whose trace failed: fall back to eager
#: permanently instead of re-tracing (and re-failing) every call.
_BROKEN = object()


@dataclass(frozen=True)
class HeightNormalizer:
    """Affine map between physical heights (Angstrom) and network outputs."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        if self.std <= 0:
            raise ValueError(f"std must be positive, got {self.std}")

    def normalize(self, heights: np.ndarray) -> np.ndarray:
        return (heights - self.mean) / self.std

    def denormalize_array(self, values: np.ndarray) -> np.ndarray:
        return values * self.std + self.mean

    def denormalize(self, values: Tensor) -> Tensor:
        return values * self.std + self.mean

    def to_dict(self) -> dict:
        return {"mean": self.mean, "std": self.std}

    @classmethod
    def from_dict(cls, data: dict) -> "HeightNormalizer":
        return cls(mean=float(data["mean"]), std=float(data["std"]))

    @classmethod
    def fit(cls, heights: np.ndarray) -> "HeightNormalizer":
        std = float(heights.std())
        return cls(mean=float(heights.mean()), std=std if std > 0 else 1.0)


@dataclass
class PlanarityEvaluation:
    """Result of one forward (+ optional backward) pass."""

    s_plan: float
    breakdown: PlanarityBreakdown
    heights: np.ndarray  # (L, N, M) predicted physical heights
    gradient: np.ndarray | None  # dS_plan/dx, same shape as the fill


@dataclass
class BatchPlanarityEvaluation:
    """Result of one stacked forward (+ optional backward) pass over K
    independent fill vectors."""

    s_plan: np.ndarray  # (K,) planarity scores
    breakdowns: list[PlanarityBreakdown]  # one per fill vector
    heights: np.ndarray  # (K, L, N, M) predicted physical heights
    gradient: np.ndarray | None  # (K, L, N, M); zero rows where masked out


@dataclass(frozen=True)
class EvalRegion:
    """Rectangles driving :meth:`CmpNeuralNetwork.evaluate_region`.

    ``(r0, r1, c0, c1)`` is the half-open *core*: heights are recomputed
    there each call.  ``(sr0, sr1, sc0, sc1)`` is the halo-padded *crop*
    actually pushed through the network; both have origins on multiples
    of the UNet's pooling alignment so the cropped forward reproduces the
    monolithic pooling phase.  Built by
    :meth:`CmpNeuralNetwork.plan_region`.
    """

    r0: int
    r1: int
    c0: int
    c1: int
    sr0: int
    sr1: int
    sc0: int
    sc1: int

    @property
    def core_shape(self) -> tuple[int, int]:
        return (self.r1 - self.r0, self.c1 - self.c0)

    @property
    def crop_shape(self) -> tuple[int, int]:
        return (self.sr1 - self.sr0, self.sc1 - self.sc0)


class CmpNeuralNetwork:
    """End-to-end differentiable stand-in for the full-chip CMP simulator.

    Args:
        layout: the target layout (fixes the extraction constants).
        unet: a pre-trained height-prediction network mapping the
            ``(L, C, N, M)`` parameter matrix to normalised heights
            ``(L, 1, N, M)``.
        normalizer: the affine height normalisation the UNet was trained
            with.
        eta: sigmoid gain of the smoothed outlier objective (Eq. 10c).

    The UNet is switched to ``eval`` mode: optimisation-time forward
    passes must use frozen batch statistics.
    """

    def __init__(self, layout: Layout, unet: Module,
                 normalizer: HeightNormalizer, eta: float = DEFAULT_ETA,
                 capture: bool | None = None):
        self.layout = layout
        self.unet = unet.eval()
        self.normalizer = normalizer
        self.eta = eta
        self.consts = ExtractionConstants.from_layout(layout)
        #: Captured-graph replay (trace-once/run-many; bitwise identical
        #: to eager).  ``None`` defers to ``REPRO_CAPTURE`` (default on).
        self.capture = capture_enabled_default() if capture is None else bool(capture)
        self._plans: OrderedDict[tuple, object] = OrderedDict()
        self._plans_lock = threading.Lock()
        self._max_plans = capture_max_plans_default()
        self._capture_counts = {"trace": 0, "replay": 0, "miss": 0, "bypass": 0}

    # ------------------------------------------------------------------
    # captured-graph plumbing
    # ------------------------------------------------------------------
    def capture_stats(self) -> dict:
        """Capture counters plus the live plan table (for benches/tests)."""
        with self._plans_lock:
            plans = {
                repr(key): plan.arena_bytes
                for key, plan in self._plans.items()
                if plan is not _BROKEN
            }
            return {
                **self._capture_counts,
                "plans": plans,
                "arena_bytes": sum(plans.values()),
            }

    def _capture_key(self, kind: str, signature: tuple,
                     weights: PlanarityWeights) -> tuple:
        return (
            kind,
            signature,
            str(get_default_dtype()),
            getattr(self.unet, "_state_version", None),
            weights,
            self.eta,
        )

    def _captured(self, kind: str, signature: tuple, weights: PlanarityWeights,
                  build, inputs: dict, seed, want_grad: bool, extract):
        """Replay (or trace) the plan for one call signature.

        Runs ``extract(plan)`` — which must copy everything it hands out —
        while the plan lock is still held, so a concurrent replay cannot
        overwrite the arena mid-read.  Returns ``extract``'s result, or
        ``None`` when the caller must run eagerly: capture disabled,
        network in training mode, plan marked broken, a structural miss,
        or the plan lock contended (another thread is mid-replay on this
        network — eager is bitwise-identical, so falling back costs only
        the eager speed).
        """
        if not self.capture or getattr(self.unet, "training", False):
            return None
        key = self._capture_key(kind, signature, weights)
        if not self._plans_lock.acquire(blocking=False):
            self._capture_counts["bypass"] += 1
            return None
        try:
            plan = self._plans.get(key)
            if plan is _BROKEN:
                self._capture_counts["bypass"] += 1
                return None
            tracer = obs_trace.active()
            if plan is None:
                # The trace below IS this call's eager execution; its
                # backward always runs (even for want_grad=False callers)
                # so one plan serves both gradient modes.
                try:
                    if tracer is not None:
                        with obs_trace.span("capture.trace", cat="nn", kind=kind):
                            plan = CapturedGraph.trace(
                                build, inputs, grad_inputs=("x",),
                                root="s_plan", seed=seed,
                            )
                    else:
                        plan = CapturedGraph.trace(
                            build, inputs, grad_inputs=("x",),
                            root="s_plan", seed=seed,
                        )
                except Exception:
                    self._plans[key] = _BROKEN
                    return None
                self._plans[key] = plan
                while len(self._plans) > self._max_plans:
                    self._plans.popitem(last=False)
                self._capture_counts["trace"] += 1
                if tracer is not None:
                    obs_metrics.registry().set_gauge(
                        "capture.arena_bytes",
                        sum(p.arena_bytes for p in self._plans.values()
                            if p is not _BROKEN),
                    )
                return extract(plan)
            try:
                if tracer is not None:
                    with obs_trace.span("capture.replay", cat="nn", kind=kind):
                        plan.replay(inputs, seed=seed, want_grad=want_grad)
                else:
                    plan.replay(inputs, seed=seed, want_grad=want_grad)
            except CaptureMiss:
                self._capture_counts["miss"] += 1
                if tracer is not None:
                    obs_trace.event("capture.miss", cat="nn", kind=kind)
                    obs_metrics.registry().incr("capture.miss")
                return None
            self._plans.move_to_end(key)
            self._capture_counts["replay"] += 1
            if tracer is not None:
                obs_metrics.registry().incr("capture.replay")
            return extract(plan)
        finally:
            self._plans_lock.release()

    # ------------------------------------------------------------------
    @property
    def grid_shape(self) -> tuple[int, int, int]:
        """``(L, N, M)`` shape every fill must have.

        The extraction constants are the single source of truth: they are
        what the forward pass actually consumes, so a layout swapped in
        after construction cannot silently change the expected shape.
        """
        return self.consts.density.shape

    def _checked_fill(self, fill: np.ndarray | None) -> np.ndarray:
        """Default + validate a single ``(L, N, M)`` fill against the
        bound extraction constants; both the monolithic and the tiled
        path go through here so a mismatch fails loudly in either."""
        if fill is None:
            return np.zeros(self.grid_shape)
        fill = np.asarray(fill, dtype=float)
        if fill.ndim != 3 or fill.shape != self.grid_shape:
            raise ValueError(
                f"fill must have layout shape {self.grid_shape}, "
                f"got {fill.shape}"
            )
        return fill

    def receptive_halo(self) -> int:
        """The bound model's receptive-field radius, rounded up to its
        pooling alignment — the halo that makes tiled/region evaluation
        exact.

        Raises:
            ValueError: the model does not expose
                ``receptive_field_radius``; silently assuming a zero halo
                would void every exactness guarantee, so callers must
                pass an explicit halo instead (and own its accuracy).
        """
        radius_fn = getattr(self.unet, "receptive_field_radius", None)
        if not callable(radius_fn):
            raise ValueError(
                f"{type(self.unet).__name__} does not expose "
                "receptive_field_radius(); cannot derive an exact halo. "
                "Pass halo= explicitly — an undersized halo silently "
                "voids the tiled-inference exactness guarantee."
            )
        align = int(getattr(self.unet, "alignment", 1))
        return -(-int(radius_fn()) // align) * align

    def predict_heights(self, fill: np.ndarray | None = None) -> np.ndarray:
        """Forward-only height profile prediction (physical units)."""
        return self._forward(Tensor(self._checked_fill(fill))).data

    def predict_heights_tiled(
        self,
        fill: np.ndarray | None = None,
        tile: int = 128,
        halo: int | None = None,
    ) -> np.ndarray:
        """Overlap-tile streamed forward for full-chip window grids.

        The monolithic forward materialises every UNet activation for the
        whole ``(L, C, N, M)`` map at once, which for a 1000x1000 grid is
        tens of gigabytes.  This method runs the network on halo-padded
        tiles and stitches the centre crops: peak memory is bounded by one
        ``(tile + 2 * halo)``-sized forward, independent of chip size.

        Exactness: tile origins are multiples of the UNet's pooling
        :attr:`~repro.nn.unet.UNet.alignment` and the halo covers the
        network's receptive-field radius, so every stitched window sees
        the identical computation (same pooling phase, same neighbourhood,
        same zero padding at chip borders) as the monolithic forward.

        Args:
            fill: fill areas ``(L, N, M)`` (zeros when omitted).  Stacked
                ``(K, L, N, M)`` fills are not supported here — this is an
                inference path for single full-chip maps.
            tile: nominal tile side in windows (rounded up to the
                alignment).
            halo: overlap in windows; defaults to the network's exact
                receptive-field radius rounded up to the alignment.
                Smaller halos trade accuracy for speed and void the
                exactness guarantee.

        Returns:
            ``(L, N, M)`` predicted physical heights, matching
            :meth:`predict_heights` to floating-point precision.
        """
        fill = self._checked_fill(fill)
        align = int(getattr(self.unet, "alignment", 1))
        if halo is None:
            halo = self.receptive_halo()
        else:
            if halo < 0:
                raise ValueError(f"halo must be >= 0, got {halo}")
            halo = -(-halo // align) * align
        if tile < 1:
            raise ValueError(f"tile must be >= 1, got {tile}")
        tile = max(align, -(-tile // align) * align)

        L, N, M = fill.shape
        out = np.empty((L, N, M))
        for r0 in range(0, N, tile):
            r1 = min(r0 + tile, N)
            sr0, sr1 = max(0, r0 - halo), min(N, r1 + halo)
            for c0 in range(0, M, tile):
                c1 = min(c0 + tile, M)
                sc0, sc1 = max(0, c0 - halo), min(M, c1 + halo)
                rows, cols = slice(sr0, sr1), slice(sc0, sc1)
                matrix = extract_parameter_matrix(
                    Tensor(fill[:, rows, cols]), self.consts.crop(rows, cols)
                )
                heights = self.normalizer.denormalize_array(
                    self.unet(matrix).data[:, 0]
                )
                out[:, r0:r1, c0:c1] = heights[
                    :, r0 - sr0 : r1 - sr0, c0 - sc0 : c1 - sc0
                ]
        return out

    # ------------------------------------------------------------------
    def plan_region(self, active: np.ndarray) -> EvalRegion | None:
        """Plan the crop rectangles for :meth:`evaluate_region`.

        Args:
            active: ``(N, M)`` bool mask of windows whose fill is allowed
                to change relative to the base fill.

        Returns:
            An :class:`EvalRegion` whose core contains every window within
            the receptive halo of ``active`` (heights outside the core
            provably cannot change), with both rectangles snapped outward
            to the UNet's pooling alignment; ``None`` when ``active`` is
            empty.
        """
        active = np.asarray(active, dtype=bool)
        L, N, M = self.grid_shape
        if active.shape != (N, M):
            raise ValueError(
                f"active mask must have grid shape {(N, M)}, got {active.shape}")
        rows = np.flatnonzero(active.any(axis=1))
        if rows.size == 0:
            return None
        cols = np.flatnonzero(active.any(axis=0))
        halo = self.receptive_halo()
        align = int(getattr(self.unet, "alignment", 1))
        r0 = max(0, ((int(rows[0]) - halo) // align) * align)
        r1 = min(N, -(-(int(rows[-1]) + 1 + halo) // align) * align)
        c0 = max(0, ((int(cols[0]) - halo) // align) * align)
        c1 = min(M, -(-(int(cols[-1]) + 1 + halo) // align) * align)
        return EvalRegion(
            r0=r0, r1=r1, c0=c0, c1=c1,
            sr0=max(0, r0 - halo), sr1=min(N, r1 + halo),
            sc0=max(0, c0 - halo), sc1=min(M, c1 + halo),
        )

    def evaluate_region(
        self,
        fill: np.ndarray,
        region: EvalRegion,
        base_heights: np.ndarray,
        weights: PlanarityWeights,
        want_grad: bool = True,
    ) -> PlanarityEvaluation:
        """Full-chip planarity score via ONE cropped network pass.

        The incremental (ECO) driver freezes most of the fill vector and
        optimises a small free region.  Heights outside ``region``'s core
        then provably equal ``base_heights`` (the frozen windows within
        one receptive field of them never change), so only the crop needs
        a forward pass: the recomputed core is embedded into the constant
        complement and the *global* planarity objective — which couples
        every window through layer means/variances — is evaluated on the
        composed full-chip height map.  Backward through the composition
        yields the exact ``dS_plan/dx`` for the cropped fill entries; the
        returned gradient is zero elsewhere (those entries are constants
        of this evaluation).

        Exactness contract: ``fill`` must agree with the fill that
        produced ``base_heights`` (via the monolithic
        :meth:`predict_heights`) on every window outside the core shrunk
        by the receptive halo — :meth:`plan_region` builds a region
        satisfying this for any fill that changes only inside its
        ``active`` mask.  Under that contract the result matches
        :meth:`evaluate` to floating-point round-off (same pooling phase
        and border padding as the monolithic forward; see
        :meth:`predict_heights_tiled`).

        Args:
            fill: full-chip fill areas ``(L, N, M)``.
            region: rectangles from :meth:`plan_region`.
            base_heights: monolithic heights ``(L, N, M)`` of the base
                fill; used verbatim outside the core.
            weights: the design's score coefficients.
            want_grad: run backpropagation; the gradient is exact for
                entries inside the crop and zero outside.
        """
        fill = self._checked_fill(fill)
        base_heights = np.asarray(base_heights, dtype=float)
        if base_heights.shape != fill.shape:
            raise ValueError(
                f"base_heights must have layout shape {fill.shape}, "
                f"got {base_heights.shape}")
        L, N, M = fill.shape
        rows, cols = slice(region.sr0, region.sr1), slice(region.sc0, region.sc1)
        h, w = region.crop_shape
        # Keep the core, zero the halo ring: the ring is only context for
        # the convolution and its heights come from base_heights instead.
        core = np.zeros((1, h, w))
        core[:, region.r0 - region.sr0:region.r1 - region.sr0,
             region.c0 - region.sc0:region.c1 - region.sc0] = 1.0
        frozen = base_heights.copy()
        frozen[:, region.r0:region.r1, region.c0:region.c1] = 0.0
        pad = (region.sr0, N - region.sr1, region.sc0, M - region.sc1)

        def compose(x: Tensor, frozen_t: Tensor) -> dict[str, Tensor]:
            matrix = extract_parameter_matrix(x, self.consts.crop(rows, cols))
            out = self.unet(matrix)  # (L, 1, h, w) normalised
            patch = self.normalizer.denormalize(out.reshape(L, h, w))
            heights = F.pad2d(patch * Tensor(core), pad) + frozen_t
            terms = planarity_terms(heights, weights, eta=self.eta)
            terms["heights"] = heights
            return terms

        def build(tensors: dict[str, Tensor]) -> dict[str, Tensor]:
            return compose(tensors["x"], tensors["frozen"])

        def extract(plan: CapturedGraph) -> PlanarityEvaluation:
            gradient = None
            if want_grad:
                gradient = np.zeros_like(fill)
                g = plan.grad("x")
                if g is not None:
                    gradient[:, rows, cols] = g
            return PlanarityEvaluation(
                s_plan=plan.outputs["s_plan"].item(),
                breakdown=breakdown_from_terms(plan.outputs),
                heights=plan.output("heights"),
                gradient=gradient,
            )

        captured = self._captured(
            "region", (fill.shape, astuple(region)), weights, build,
            {"x": fill[:, rows, cols], "frozen": frozen}, None, want_grad,
            extract,
        )
        if captured is not None:
            return captured

        x = Tensor(fill[:, rows, cols], requires_grad=want_grad)
        terms = compose(x, Tensor(frozen))
        s_plan = terms["s_plan"]
        gradient = None
        if want_grad:
            s_plan.backward()
            gradient = np.zeros_like(fill)
            if x.grad is not None:
                gradient[:, rows, cols] = x.grad
        return PlanarityEvaluation(
            s_plan=s_plan.item(), breakdown=breakdown_from_terms(terms),
            heights=terms["heights"].data, gradient=gradient,
        )

    def evaluate(self, fill: np.ndarray, weights: PlanarityWeights,
                 want_grad: bool = True) -> PlanarityEvaluation:
        """Planarity score (forward) and its gradient (backward).

        Args:
            fill: fill areas, shape ``(L, N, M)``.
            weights: the design's score coefficients (Table II subset).
            want_grad: run backpropagation and return ``dS_plan/dx``.
        """
        fill = np.asarray(fill, dtype=float)

        def build(tensors: dict[str, Tensor]) -> dict[str, Tensor]:
            heights = self._forward(tensors["x"])
            terms = planarity_terms(heights, weights, eta=self.eta)
            terms["heights"] = heights
            return terms

        def extract(plan: CapturedGraph) -> PlanarityEvaluation:
            gradient = None
            if want_grad:
                gradient = plan.grad("x")
                if gradient is None:
                    gradient = np.zeros_like(plan.inputs["x"].data)
            return PlanarityEvaluation(
                s_plan=plan.outputs["s_plan"].item(),
                breakdown=breakdown_from_terms(plan.outputs),
                heights=plan.output("heights"),
                gradient=gradient,
            )

        captured = self._captured("fill", (fill.shape,), weights, build,
                                  {"x": fill}, None, want_grad, extract)
        if captured is not None:
            return captured

        x = Tensor(fill, requires_grad=want_grad)
        heights = self._forward(x)
        s_plan, breakdown = planarity_score(heights, weights, eta=self.eta)
        gradient = None
        if want_grad:
            s_plan.backward()
            gradient = x.grad if x.grad is not None else np.zeros_like(x.data)
        return PlanarityEvaluation(
            s_plan=s_plan.item(), breakdown=breakdown,
            heights=heights.data, gradient=gradient,
        )

    def evaluate_batch(
        self,
        fills: np.ndarray,
        weights: PlanarityWeights,
        want_grad: bool = True,
        grad_mask: np.ndarray | None = None,
    ) -> BatchPlanarityEvaluation:
        """K independent fill vectors through ONE stacked network pass.

        The MSP-SQP framework evaluates many starting points per
        iteration; pushing them one at a time wastes the network's batch
        axis.  Here the ``(K, L, N, M)`` stack is collapsed into a single
        ``(K * L, C, N, M)`` forward pass, and one backward call (seeded
        with the per-start mask) returns every requested gradient.  The
        starts never interact (BatchNorm runs in eval mode), so row ``k``
        of the result matches :meth:`evaluate` on ``fills[k]`` to machine
        precision — the only difference is the BLAS contraction order,
        which may vary with the batch size at the last-ulp level.

        Args:
            fills: stacked fill vectors, shape ``(K, L, N, M)``.
            weights: the design's score coefficients (Table II subset).
            grad_mask: optional boolean ``(K,)`` selecting which starts
                need gradients (e.g. only the non-converged ones of a
                lockstep SQP round); masked-out rows come back zero.
                Overrides ``want_grad``.
        """
        fills = np.asarray(fills, dtype=float)
        if fills.ndim != 4:
            raise ValueError(f"fills must be (K, L, N, M), got {fills.shape}")
        K = fills.shape[0]
        if grad_mask is None:
            grad_mask = np.full(K, bool(want_grad))
        else:
            grad_mask = np.asarray(grad_mask, dtype=bool)
            if grad_mask.shape != (K,):
                raise ValueError(f"grad_mask must have shape ({K},), got {grad_mask.shape}")
        need_any = bool(grad_mask.any())
        seed = grad_mask.astype(float) if need_any else None

        def build(tensors: dict[str, Tensor]) -> dict[str, Tensor]:
            heights = self._forward(tensors["x"])
            terms = planarity_terms(heights, weights, eta=self.eta)
            terms["heights"] = heights
            return terms

        def extract(plan: CapturedGraph) -> BatchPlanarityEvaluation:
            gradient = None
            if need_any:
                gradient = plan.grad("x")
                if gradient is None:
                    gradient = np.zeros_like(fills)
            return BatchPlanarityEvaluation(
                s_plan=plan.outputs["s_plan"].data.astype(float, copy=True),
                breakdowns=breakdowns_from_terms(plan.outputs, K),
                heights=plan.output("heights"),
                gradient=gradient,
            )

        captured = self._captured("batch", (fills.shape,), weights, build,
                                  {"x": fills}, seed, need_any, extract)
        if captured is not None:
            return captured

        x = Tensor(fills, requires_grad=need_any)
        heights = self._forward(x)  # (K, L, N, M)
        s_plan, breakdowns = planarity_score_batch(heights, weights, eta=self.eta)
        gradient = None
        if need_any:
            # Seeding backward with the 0/1 mask computes all selected
            # per-start gradients in one reverse sweep.
            s_plan.backward(grad_mask.astype(float))
            gradient = x.grad if x.grad is not None else np.zeros_like(fills)
        return BatchPlanarityEvaluation(
            s_plan=s_plan.data.astype(float, copy=True), breakdowns=breakdowns,
            heights=heights.data, gradient=gradient,
        )

    # ------------------------------------------------------------------
    def _forward(self, fill: Tensor) -> Tensor:
        """Heights for an ``(L, N, M)`` fill or stacked ``(K, L, N, M)``."""
        matrix = extract_parameter_matrix(fill, self.consts)
        out = self.unet(matrix)  # (L or K*L, 1, N, M) normalised
        N, M = out.shape[2:]
        return self.normalizer.denormalize(out.reshape(*fill.shape[:-2], N, M))
