"""Objective layers on top of the predicted height profile (Eqs. 1-3, 10).

Given the UNet output ``H_n`` of shape ``(L, N, M)`` these layers compute
the three planarity objectives with differentiable torch-style ops:

* height variance ``sigma`` (Eq. 10a),
* line deviation ``sigma*`` (Eq. 10b, deviation from per-column means),
* outliers ``ol`` (Eq. 10c) — the hard hinge of Eq. 3 is non-
  differentiable, so the paper gates it with a sigmoid of gain ``eta``;
  we use the same smoothing, ``z * sigmoid(eta z) ~ max(0, z)``.

Note on the outlier threshold: Eq. 3 literally writes ``3 * sigma_l`` with
``sigma_l`` a *variance*, which is dimensionally a height only by abuse of
notation; we interpret the threshold as three standard deviations above
the layer mean (the conventional outlier rule) and expose it as a knob.

The merging layer then applies the contest score function (Eq. 6)
``f(t) = max(0, 1 - t / beta)`` and the weights ``alpha`` to produce the
planarity score ``S_plan`` (Eq. 5b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor

#: Default sigmoid gain for the smoothed outlier hinge (paper's eta).
DEFAULT_ETA: float = 0.5


def _check_heights(heights: Tensor) -> bool:
    """Validate a ``(L, N, M)`` or stacked ``(K, L, N, M)`` height tensor;
    returns True when a leading multi-start batch axis is present."""
    if len(heights.shape) not in (3, 4):
        raise ValueError(f"heights must be (L, N, M) or (K, L, N, M), got {heights.shape}")
    return len(heights.shape) == 4


def height_variance(heights: Tensor) -> Tensor:
    """Eq. 1 / Eq. 10a: sum over layers of per-layer height variance.

    ``(L, N, M)`` heights give a scalar; stacked ``(K, L, N, M)`` heights
    (K independent candidates) give a ``(K,)`` tensor.
    """
    if _check_heights(heights):
        return heights.var(axis=(2, 3)).sum(axis=1)
    return heights.var(axis=(1, 2)).sum()


def line_deviation(heights: Tensor) -> Tensor:
    """Eq. 2 / Eq. 10b: total absolute deviation from per-column means.

    ``MEAN(H_n, 1)`` in the paper averages over the row index ``i``,
    giving one mean per column ``j`` of each layer.  Accepts stacked
    ``(K, L, N, M)`` heights, returning one deviation per candidate.
    """
    if _check_heights(heights):
        column_means = heights.mean(axis=2, keepdims=True)
        return (heights - column_means).abs().sum(axis=(1, 2, 3))
    column_means = heights.mean(axis=1, keepdims=True)
    return (heights - column_means).abs().sum()


def outliers(heights: Tensor, eta: float = DEFAULT_ETA,
             threshold_sigmas: float = 3.0) -> Tensor:
    """Eq. 3 via the sigmoid smoothing of Eq. 10c.

    ``sum_l sum_ij smooth_hinge(H - mean_l - k * std_l)`` where the smooth
    hinge is ``z * sigmoid(eta * z)``.  Accepts stacked ``(K, L, N, M)``
    heights, returning one outlier total per candidate.
    """
    batched = _check_heights(heights)
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    layer_axes = (2, 3) if batched else (1, 2)
    mean = heights.mean(axis=layer_axes, keepdims=True)
    std = (heights.var(axis=layer_axes, keepdims=True) + 1e-12) ** 0.5
    excess = heights - mean - std * threshold_sigmas
    smooth = excess * F.sigmoid(excess * eta)
    return smooth.sum(axis=(1, 2, 3)) if batched else smooth.sum()


def outliers_hard(heights: np.ndarray, threshold_sigmas: float = 3.0) -> float:
    """Reference hard-hinge outliers (Eq. 3) for evaluation/reporting."""
    total = 0.0
    for layer in heights:
        mean = layer.mean()
        std = layer.std()
        total += float(np.maximum(0.0, layer - mean - threshold_sigmas * std).sum())
    return total


def score_function(value: Tensor | float, beta: float) -> Tensor | float:
    """Contest score ``f(t) = max(0, 1 - t / beta)`` (Eq. 6).

    Also capped at 1: the paper's metrics are non-negative so ``f <= 1``
    holds automatically there, but our smoothed outlier objective can dip
    slightly below zero and must not be rewarded for it.
    """
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    if isinstance(value, Tensor):
        return F.minimum(F.maximum(1.0 - value * (1.0 / beta), 0.0), 1.0)
    return min(1.0, max(0.0, 1.0 - value / beta))


@dataclass(frozen=True)
class PlanarityWeights:
    """The ``alpha``/``beta`` pairs of Eq. 5b for one benchmark design."""

    alpha_sigma: float
    beta_sigma: float
    alpha_line: float
    beta_line: float
    alpha_outlier: float
    beta_outlier: float


@dataclass
class PlanarityBreakdown:
    """Raw objective values and scores from one forward evaluation."""

    sigma: float
    line: float
    outlier: float
    score_sigma: float
    score_line: float
    score_outlier: float
    s_plan: float


def planarity_terms(heights: Tensor, weights: PlanarityWeights,
                    eta: float = DEFAULT_ETA) -> dict[str, Tensor]:
    """Merging layer as named tensors: objectives, scores and ``S_plan``.

    The tensor-level variant of :func:`planarity_score`, shared with the
    captured-graph executor, which needs the term *tensors* so replayed
    breakdowns can be re-read from the refreshed buffers instead of being
    frozen at build time.
    """
    sigma = height_variance(heights)
    line = line_deviation(heights)
    ol = outliers(heights, eta=eta)
    f_sigma = score_function(sigma, weights.beta_sigma)
    f_line = score_function(line, weights.beta_line)
    f_ol = score_function(ol, weights.beta_outlier)
    s_plan = (
        f_sigma * weights.alpha_sigma
        + f_line * weights.alpha_line
        + f_ol * weights.alpha_outlier
    )
    return {
        "sigma": sigma, "line": line, "outlier": ol,
        "score_sigma": f_sigma, "score_line": f_line, "score_outlier": f_ol,
        "s_plan": s_plan,
    }


def breakdown_from_terms(terms: dict[str, Tensor]) -> PlanarityBreakdown:
    """Scalar :class:`PlanarityBreakdown` from :func:`planarity_terms`."""
    return PlanarityBreakdown(
        sigma=terms["sigma"].item(), line=terms["line"].item(),
        outlier=terms["outlier"].item(),
        score_sigma=terms["score_sigma"].item(),
        score_line=terms["score_line"].item(),
        score_outlier=terms["score_outlier"].item(),
        s_plan=terms["s_plan"].item(),
    )


def breakdowns_from_terms(terms: dict[str, Tensor],
                          count: int) -> list[PlanarityBreakdown]:
    """Per-candidate breakdowns from batched ``(K,)`` term tensors."""
    return [
        PlanarityBreakdown(
            sigma=float(terms["sigma"].data[k]),
            line=float(terms["line"].data[k]),
            outlier=float(terms["outlier"].data[k]),
            score_sigma=float(terms["score_sigma"].data[k]),
            score_line=float(terms["score_line"].data[k]),
            score_outlier=float(terms["score_outlier"].data[k]),
            s_plan=float(terms["s_plan"].data[k]),
        )
        for k in range(count)
    ]


def planarity_score(heights: Tensor, weights: PlanarityWeights,
                    eta: float = DEFAULT_ETA) -> tuple[Tensor, PlanarityBreakdown]:
    """Merging layer: objectives -> scores -> ``S_plan`` (Eq. 5b).

    Returns the differentiable score tensor plus a float breakdown for
    reporting.
    """
    terms = planarity_terms(heights, weights, eta=eta)
    return terms["s_plan"], breakdown_from_terms(terms)


def planarity_score_batch(
    heights: Tensor, weights: PlanarityWeights, eta: float = DEFAULT_ETA,
) -> tuple[Tensor, list[PlanarityBreakdown]]:
    """Merging layer over K stacked candidates: ``(K, L, N, M)`` heights
    to a ``(K,)`` score tensor plus one breakdown per candidate.

    Candidates never interact (every reduction stays inside its slab), so
    entry ``k`` equals :func:`planarity_score` on ``heights[k]`` while the
    whole batch shares a single autodiff graph: one ``backward`` on the
    summed scores yields every candidate's gradient at once.
    """
    if len(heights.shape) != 4:
        raise ValueError(f"heights must be (K, L, N, M), got {heights.shape}")
    terms = planarity_terms(heights, weights, eta=eta)
    return terms["s_plan"], breakdowns_from_terms(terms, heights.shape[0])
