"""Persistence for pre-trained CMP surrogates (UNet + normalizer + arch)."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..layout.layout import Layout
from ..nn.serial import load_module, save_module
from ..nn.unet import UNet
from .extraction import NUM_FEATURE_CHANNELS
from .network import CmpNeuralNetwork, HeightNormalizer


def save_surrogate(directory: str | Path, unet: UNet,
                   normalizer: HeightNormalizer,
                   base_channels: int, depth: int,
                   batch_norm: bool = True) -> Path:
    """Write UNet weights + metadata into ``directory``.

    Returns the directory path.  Layout binding is *not* stored — a saved
    surrogate can be re-bound to any layout of the same process.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_module(unet, directory / "unet.npz")
    meta = {
        "normalizer": normalizer.to_dict(),
        "arch": {
            "in_channels": NUM_FEATURE_CHANNELS,
            "base_channels": base_channels,
            "depth": depth,
            "batch_norm": batch_norm,
        },
    }
    (directory / "surrogate.json").write_text(json.dumps(meta, indent=2))
    return directory


def load_surrogate(directory: str | Path,
                   layout: Layout) -> CmpNeuralNetwork:
    """Rebuild a saved surrogate and bind it to ``layout``."""
    directory = Path(directory)
    meta = json.loads((directory / "surrogate.json").read_text())
    arch = meta["arch"]
    unet = UNet(
        in_channels=int(arch["in_channels"]), out_channels=1,
        base_channels=int(arch["base_channels"]), depth=int(arch["depth"]),
        batch_norm=bool(arch.get("batch_norm", True)), rng=0,
    )
    load_module(unet, directory / "unet.npz")
    normalizer = HeightNormalizer.from_dict(meta["normalizer"])
    return CmpNeuralNetwork(layout, unet, normalizer)
