"""Persistence for pre-trained CMP surrogates (UNet + normalizer + arch).

A checkpoint directory holds two files:

* ``surrogate.json`` — architecture, height normalisation and provenance
  metadata (numpy version at save time);
* ``unet.npz`` — the UNet state dict.

Loading is split in two stages so long-lived processes (``repro serve``)
can warm-load the weights once and re-bind them to many layouts:
:func:`load_surrogate_bundle` reads the files, :func:`bind_surrogate`
attaches a bundle to a layout.  :func:`load_surrogate` composes both.

Writes are **atomic and deterministic**: each file is written to a
temporary name in the same directory, fsync'd, and ``os.replace``'d into
place, so a concurrent reader (a hot-swapping server) can never observe
a torn file; and the ``.npz`` archive is emitted with fixed zip
timestamps, so the same weights always produce the same bytes — the
lifecycle retrain path asserts byte-identical checkpoints for a fixed
seed.  Atomicity is per file; generation checkpoints written by the
lifecycle are one-directory-per-generation and never mutated, while
in-place overwrites are detected by readers via :func:`checkpoint_stamp`.
"""

from __future__ import annotations

import io
import json
import os
import warnings
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..layout.layout import Layout
from ..nn.modules import Module
from ..nn.serial import load_module
from ..nn.unet import UNet
from .extraction import NUM_FEATURE_CHANNELS
from .network import CmpNeuralNetwork, HeightNormalizer


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers see old-or-new, never torn.

    The temp file lives in the destination directory (``os.replace`` is
    only atomic within one filesystem) and is fsync'd before the rename,
    so even a crash mid-write leaves either the previous file or the
    complete new one.
    """
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def _module_npz_bytes(module: Module) -> bytes:
    """A module state dict as deterministic ``.npz`` bytes.

    ``np.savez`` stamps each zip member with the current wall-clock time,
    which breaks byte-identical checkpoints; this writer pins the member
    timestamps (and stores uncompressed, as ``np.savez`` does) so the
    bytes are a pure function of the weights.  ``np.load`` reads it back
    exactly like ``np.savez`` output.
    """
    state = module.state_dict()
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_STORED) as archive:
        for key, value in state.items():
            payload = io.BytesIO()
            np.lib.format.write_array(payload, np.asarray(value),
                                      allow_pickle=False)
            info = zipfile.ZipInfo(key + ".npy",
                                   date_time=(1980, 1, 1, 0, 0, 0))
            archive.writestr(info, payload.getvalue())
    return buffer.getvalue()


def checkpoint_stamp(directory: str | Path) -> tuple:
    """Content stamp of a checkpoint directory: (mtime_ns, size) per file.

    The serve registry keys binding caches on this (like the PR 6 layout
    LRU), so a checkpoint overwritten in place is never served stale.
    """
    directory = Path(directory)
    stamp = []
    for name in ("surrogate.json", "unet.npz"):
        stat = (directory / name).stat()
        stamp.append((name, stat.st_mtime_ns, stat.st_size))
    return tuple(stamp)


def read_checkpoint_meta(directory: str | Path) -> dict:
    """The ``surrogate.json`` metadata alone (no weight load).

    Lets the shard router learn a checkpoint's generation without paying
    a full warm load in the front-end process.
    """
    return json.loads((Path(directory) / "surrogate.json").read_text())


def save_surrogate(directory: str | Path, unet: UNet,
                   normalizer: HeightNormalizer,
                   base_channels: int, depth: int,
                   batch_norm: bool = True,
                   extra_meta: dict | None = None) -> Path:
    """Write UNet weights + metadata into ``directory``.

    Returns the directory path.  Layout binding is *not* stored — a saved
    surrogate can be re-bound to any layout of the same process.
    ``extra_meta`` entries (e.g. the lifecycle's ``generation`` tag) are
    merged into ``surrogate.json``; both files are written atomically
    (temp + fsync + rename) with deterministic bytes.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = {
        "normalizer": normalizer.to_dict(),
        "arch": {
            "in_channels": NUM_FEATURE_CHANNELS,
            "base_channels": base_channels,
            "depth": depth,
            "batch_norm": batch_norm,
        },
        "numpy": np.__version__,
    }
    if extra_meta:
        for key, value in extra_meta.items():
            if key in meta:
                raise ValueError(
                    f"extra_meta may not override reserved key {key!r}")
            meta[key] = value
    # Weights land first, metadata last: surrogate.json is the marker a
    # loader checks, so it must never describe weights that are not
    # fully on disk yet.
    _atomic_write_bytes(directory / "unet.npz", _module_npz_bytes(unet))
    _atomic_write_bytes(directory / "surrogate.json",
                        json.dumps(meta, indent=2).encode())
    return directory


@dataclass
class SurrogateBundle:
    """A loaded-but-unbound surrogate checkpoint.

    Binding to a layout (:func:`bind_surrogate`) only computes extraction
    constants, so one bundle can serve many layouts cheaply — the model
    registry in :mod:`repro.serve` relies on this split.
    """

    unet: UNet
    normalizer: HeightNormalizer
    arch: dict
    metadata: dict = field(default_factory=dict)


def load_surrogate_bundle(directory: str | Path) -> SurrogateBundle:
    """Read a checkpoint directory into a :class:`SurrogateBundle`.

    Raises:
        FileNotFoundError: when the directory, ``surrogate.json`` or
            ``unet.npz`` is missing — the message names the attempted
            path, so callers see *what* was missing, not a bare
            ``KeyError``/``OSError`` from deep inside numpy.
        ValueError: when the files exist but are corrupt or inconsistent
            with the recorded architecture.
    """
    directory = Path(directory)
    meta_path = directory / "surrogate.json"
    weights_path = directory / "unet.npz"
    if not directory.is_dir():
        raise FileNotFoundError(
            f"surrogate checkpoint directory not found: {directory}"
        )
    missing = [p.name for p in (meta_path, weights_path) if not p.is_file()]
    if missing:
        raise FileNotFoundError(
            f"partial surrogate checkpoint at {directory}: "
            f"missing {', '.join(missing)}"
        )
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt surrogate metadata {meta_path}: {exc}")
    try:
        arch = meta["arch"]
        normalizer = HeightNormalizer.from_dict(meta["normalizer"])
        unet = UNet(
            in_channels=int(arch["in_channels"]), out_channels=1,
            base_channels=int(arch["base_channels"]), depth=int(arch["depth"]),
            batch_norm=bool(arch.get("batch_norm", True)), rng=0,
        )
    except KeyError as exc:
        raise ValueError(
            f"surrogate metadata {meta_path} is missing key {exc}"
        )
    saved_numpy = meta.get("numpy")
    if saved_numpy and saved_numpy != np.__version__:
        warnings.warn(
            f"surrogate checkpoint {directory} was saved with numpy "
            f"{saved_numpy} but is being loaded with numpy {np.__version__};"
            f" results may differ at floating-point round-off level",
            RuntimeWarning,
            stacklevel=2,
        )
    try:
        load_module(unet, weights_path)
    except (KeyError, ValueError) as exc:
        raise ValueError(
            f"surrogate weights {weights_path} do not match the recorded "
            f"architecture {arch}: {exc}"
        )
    return SurrogateBundle(unet=unet, normalizer=normalizer,
                           arch=dict(arch), metadata=meta)


def bind_surrogate(bundle: SurrogateBundle, layout: Layout) -> CmpNeuralNetwork:
    """Attach a loaded bundle to ``layout`` (fully convolutional rebind)."""
    return CmpNeuralNetwork(layout, bundle.unet, bundle.normalizer)


def load_surrogate(directory: str | Path,
                   layout: Layout) -> CmpNeuralNetwork:
    """Rebuild a saved surrogate and bind it to ``layout``."""
    return bind_surrogate(load_surrogate_bundle(directory), layout)
