"""Persistence for pre-trained CMP surrogates (UNet + normalizer + arch).

A checkpoint directory holds two files:

* ``surrogate.json`` — architecture, height normalisation and provenance
  metadata (numpy version at save time);
* ``unet.npz`` — the UNet state dict.

Loading is split in two stages so long-lived processes (``repro serve``)
can warm-load the weights once and re-bind them to many layouts:
:func:`load_surrogate_bundle` reads the files, :func:`bind_surrogate`
attaches a bundle to a layout.  :func:`load_surrogate` composes both.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..layout.layout import Layout
from ..nn.serial import load_module, save_module
from ..nn.unet import UNet
from .extraction import NUM_FEATURE_CHANNELS
from .network import CmpNeuralNetwork, HeightNormalizer


def save_surrogate(directory: str | Path, unet: UNet,
                   normalizer: HeightNormalizer,
                   base_channels: int, depth: int,
                   batch_norm: bool = True) -> Path:
    """Write UNet weights + metadata into ``directory``.

    Returns the directory path.  Layout binding is *not* stored — a saved
    surrogate can be re-bound to any layout of the same process.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_module(unet, directory / "unet.npz")
    meta = {
        "normalizer": normalizer.to_dict(),
        "arch": {
            "in_channels": NUM_FEATURE_CHANNELS,
            "base_channels": base_channels,
            "depth": depth,
            "batch_norm": batch_norm,
        },
        "numpy": np.__version__,
    }
    (directory / "surrogate.json").write_text(json.dumps(meta, indent=2))
    return directory


@dataclass
class SurrogateBundle:
    """A loaded-but-unbound surrogate checkpoint.

    Binding to a layout (:func:`bind_surrogate`) only computes extraction
    constants, so one bundle can serve many layouts cheaply — the model
    registry in :mod:`repro.serve` relies on this split.
    """

    unet: UNet
    normalizer: HeightNormalizer
    arch: dict
    metadata: dict = field(default_factory=dict)


def load_surrogate_bundle(directory: str | Path) -> SurrogateBundle:
    """Read a checkpoint directory into a :class:`SurrogateBundle`.

    Raises:
        FileNotFoundError: when the directory, ``surrogate.json`` or
            ``unet.npz`` is missing — the message names the attempted
            path, so callers see *what* was missing, not a bare
            ``KeyError``/``OSError`` from deep inside numpy.
        ValueError: when the files exist but are corrupt or inconsistent
            with the recorded architecture.
    """
    directory = Path(directory)
    meta_path = directory / "surrogate.json"
    weights_path = directory / "unet.npz"
    if not directory.is_dir():
        raise FileNotFoundError(
            f"surrogate checkpoint directory not found: {directory}"
        )
    missing = [p.name for p in (meta_path, weights_path) if not p.is_file()]
    if missing:
        raise FileNotFoundError(
            f"partial surrogate checkpoint at {directory}: "
            f"missing {', '.join(missing)}"
        )
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt surrogate metadata {meta_path}: {exc}")
    try:
        arch = meta["arch"]
        normalizer = HeightNormalizer.from_dict(meta["normalizer"])
        unet = UNet(
            in_channels=int(arch["in_channels"]), out_channels=1,
            base_channels=int(arch["base_channels"]), depth=int(arch["depth"]),
            batch_norm=bool(arch.get("batch_norm", True)), rng=0,
        )
    except KeyError as exc:
        raise ValueError(
            f"surrogate metadata {meta_path} is missing key {exc}"
        )
    saved_numpy = meta.get("numpy")
    if saved_numpy and saved_numpy != np.__version__:
        warnings.warn(
            f"surrogate checkpoint {directory} was saved with numpy "
            f"{saved_numpy} but is being loaded with numpy {np.__version__};"
            f" results may differ at floating-point round-off level",
            RuntimeWarning,
            stacklevel=2,
        )
    try:
        load_module(unet, weights_path)
    except (KeyError, ValueError) as exc:
        raise ValueError(
            f"surrogate weights {weights_path} do not match the recorded "
            f"architecture {arch}: {exc}"
        )
    return SurrogateBundle(unet=unet, normalizer=normalizer,
                           arch=dict(arch), metadata=meta)


def bind_surrogate(bundle: SurrogateBundle, layout: Layout) -> CmpNeuralNetwork:
    """Attach a loaded bundle to ``layout`` (fully convolutional rebind)."""
    return CmpNeuralNetwork(layout, bundle.unet, bundle.normalizer)


def load_surrogate(directory: str | Path,
                   layout: Layout) -> CmpNeuralNetwork:
    """Rebuild a saved surrogate and bind it to ``layout``."""
    return bind_surrogate(load_surrogate_bundle(directory), layout)
