"""UNet pre-training (Eq. 20) and accuracy evaluation (Section V-A, Fig. 9)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import rng_from_seed
from ..layout.layout import Layout
from ..nn.loss import mse_loss
from ..nn.modules import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..nn.unet import UNet
from ..obs import trace as obs_trace
from .datagen import SurrogateDataset, build_dataset
from .extraction import NUM_FEATURE_CHANNELS
from .network import CmpNeuralNetwork, HeightNormalizer


@dataclass
class TrainConfig:
    """Hyper-parameters of surrogate pre-training.

    The paper trains for 20 epochs on 20 000 samples (32 GPU-hours); the
    defaults here are scaled for a CPU run — override for higher fidelity.

    ``variance_weight`` adds a per-map variance-matching term to the
    Eq. 20 MSE.  An underfit network regresses toward the mean and
    underpredicts the height variance of rough profiles — precisely the
    quantity the sigma objective needs; the extra term counteracts that
    bias at negligible cost.  Set to 0 for the literal Eq. 20 objective.
    """

    epochs: int = 20
    batch_size: int = 8
    learning_rate: float = 2e-3
    seed: int = 0
    shuffle: bool = True
    variance_weight: float = 0.5


@dataclass
class TrainHistory:
    """Per-epoch mean training loss."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no epochs recorded")
        return self.losses[-1]


def train_unet(unet: Module, dataset: SurrogateDataset,
               config: TrainConfig | None = None) -> TrainHistory:
    """Minimise the Eq. 20 MSE objective with Adam mini-batches."""
    config = config or TrainConfig()
    if config.epochs <= 0 or config.batch_size <= 0:
        raise ValueError("epochs and batch_size must be positive")
    X = dataset.flat_inputs()
    Y = dataset.flat_targets()
    n = X.shape[0]
    rng = rng_from_seed(config.seed)
    optimizer = Adam(unet.parameters(), lr=config.learning_rate)
    history = TrainHistory()
    unet.train()
    with obs_trace.span("train.fit", cat="train", samples=int(n),
                        epochs=config.epochs, batch_size=config.batch_size):
        for epoch in range(config.epochs):
            with obs_trace.span("train.epoch", cat="train", epoch=epoch):
                order = rng.permutation(n) if config.shuffle else np.arange(n)
                epoch_losses = []
                for start in range(0, n, config.batch_size):
                    idx = order[start : start + config.batch_size]
                    optimizer.zero_grad()
                    pred = unet(Tensor(X[idx]))
                    target = Tensor(Y[idx])
                    loss = mse_loss(pred, target)
                    if config.variance_weight > 0:
                        pred_var = pred.var(axis=(2, 3))
                        target_var = target.var(axis=(2, 3))
                        mismatch = pred_var - target_var
                        loss = loss + (mismatch * mismatch).mean() \
                            * config.variance_weight
                    loss.backward()
                    optimizer.step()
                    epoch_losses.append(loss.item())
                epoch_loss = float(np.mean(epoch_losses))
                history.losses.append(epoch_loss)
                obs_trace.event("train.epoch_loss", cat="train",
                                epoch=epoch, loss=epoch_loss,
                                batches=len(epoch_losses))
    unet.eval()
    return history


@dataclass
class AccuracyReport:
    """Section V-A accuracy numbers against the teacher simulator.

    Attributes:
        mean_relative_error: average of ``|pred - sim| / |sim|`` over all
            windows/samples (the paper reports 0.6% on its test set).
        max_window_relative_error: worst per-window average (paper: 1.77%).
        per_window_error: ``(N, M)`` map of per-window average relative
            error — the data behind Fig. 9.
    """

    mean_relative_error: float
    max_window_relative_error: float
    per_window_error: np.ndarray

    def error_histogram(self, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
        """Fig. 9: distribution of per-window average relative error."""
        return np.histogram(self.per_window_error.ravel(), bins=bins)

    def fraction_below(self, threshold: float) -> float:
        """E.g. the paper's 'below 1.3% in 90% of the windows'."""
        errs = self.per_window_error.ravel()
        return float(np.mean(errs < threshold))


def evaluate_accuracy(unet: Module, dataset: SurrogateDataset) -> AccuracyReport:
    """Relative height error of the surrogate on a labelled dataset."""
    unet.eval()
    X = dataset.flat_inputs()
    Y = dataset.flat_targets()
    norm = dataset.normalizer
    rel_errors = []
    for start in range(0, X.shape[0], 16):
        batch = slice(start, start + 16)
        pred = unet(Tensor(X[batch])).data
        pred_h = norm.denormalize_array(pred)
        true_h = norm.denormalize_array(Y[batch])
        rel_errors.append(np.abs(pred_h - true_h) / np.maximum(np.abs(true_h), 1e-9))
    rel = np.concatenate(rel_errors)  # (n*L, 1, N, M)
    per_window = rel.mean(axis=(0, 1))
    return AccuracyReport(
        mean_relative_error=float(rel.mean()),
        max_window_relative_error=float(per_window.max()),
        per_window_error=per_window,
    )


def pretrain_surrogate(
    sources: list[Layout],
    target_layout: Layout,
    sample_count: int = 24,
    tile_rows: int = 24,
    tile_cols: int = 24,
    base_channels: int = 8,
    depth: int = 2,
    config: TrainConfig | None = None,
    simulator=None,
    seed: int = 0,
    n_workers: int | None = None,
) -> tuple[CmpNeuralNetwork, TrainHistory, AccuracyReport]:
    """One-call pipeline: dataset -> UNet -> pre-train -> bind to a layout.

    Defaults are CPU-scale; raise ``sample_count``/``config.epochs`` for
    paper-scale fidelity.  ``n_workers`` parallelises the teacher
    simulations (see :func:`~repro.surrogate.datagen.build_dataset`)
    without changing the dataset.  Returns the bound CMP neural network,
    the training history and the held-out accuracy report.
    """
    with obs_trace.span("train.dataset", cat="train",
                        samples=sample_count,
                        tiles=[tile_rows, tile_cols]):
        dataset = build_dataset(
            sources, sample_count, tile_rows, tile_cols,
            simulator=simulator, seed=seed, n_workers=n_workers,
        )
    train_set, test_set = dataset.split(test_fraction=0.2, seed=seed)
    unet = UNet(
        in_channels=NUM_FEATURE_CHANNELS, out_channels=1,
        base_channels=base_channels, depth=depth, rng=seed,
    )
    history = train_unet(unet, train_set, config)
    with obs_trace.span("train.evaluate", cat="train"):
        report = evaluate_accuracy(unet, test_set)
    obs_trace.event("train.accuracy", cat="train",
                    mean_relative_error=report.mean_relative_error,
                    max_window_relative_error=report.max_window_relative_error)
    network = CmpNeuralNetwork(target_layout, unet, dataset.normalizer)
    return network, history, report
