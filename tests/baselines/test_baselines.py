"""Tests for the Lin, Tao and Cai baseline fillers."""

import numpy as np
import pytest

from repro.baselines import SimulatorQuality, cai_fill, lin_fill, tao_fill
from repro.core import FillProblem, ScoreCoefficients, evaluate_solution
from repro.layout import make_design_a


@pytest.fixture(scope="module")
def tiny_problem(simulator):
    layout = make_design_a(rows=6, cols=6)
    coeffs = ScoreCoefficients.calibrated(layout, simulator)
    return FillProblem(layout, coeffs)


class TestLin:
    def test_fill_feasible(self, tiny_problem):
        result = lin_fill(tiny_problem)
        assert tiny_problem.feasible(result.fill, atol=1e-6)
        assert result.method == "lin"
        assert result.fill.sum() > 0

    def test_improves_density_uniformity(self, tiny_problem):
        layout = tiny_problem.layout
        area = layout.grid.window_area
        rho0 = layout.density_stack()
        result = lin_fill(tiny_problem)
        rho1 = rho0 + result.fill / area
        assert rho1.var() < rho0.var()

    def test_quantile_controls_fill(self, tiny_problem):
        low = lin_fill(tiny_problem, quantile=0.3)
        high = lin_fill(tiny_problem, quantile=0.95)
        assert high.fill.sum() > low.fill.sum()

    def test_bad_quantile(self, tiny_problem):
        with pytest.raises(ValueError):
            lin_fill(tiny_problem, quantile=0.0)

    def test_fast(self, tiny_problem):
        result = lin_fill(tiny_problem)
        assert result.runtime_s < 5.0


class TestTao:
    def test_fill_feasible(self, tiny_problem):
        result = tao_fill(tiny_problem)
        assert tiny_problem.feasible(result.fill, atol=1e-6)
        assert result.method == "tao"
        assert result.evaluations > 0

    def test_improves_density_uniformity(self, tiny_problem):
        layout = tiny_problem.layout
        area = layout.grid.window_area
        rho0 = layout.density_stack()
        result = tao_fill(tiny_problem)
        rho1 = rho0 + result.fill / area
        var0 = np.mean([rho0[l].var() for l in range(3)])
        var1 = np.mean([rho1[l].var() for l in range(3)])
        assert var1 < var0

    def test_quality_value_finite(self, tiny_problem):
        result = tao_fill(tiny_problem)
        assert np.isfinite(result.quality)


class TestSimulatorQuality:
    def test_counts_simulations(self, tiny_problem, simulator):
        model = SimulatorQuality(tiny_problem, simulator)
        model.quality(np.zeros(tiny_problem.layout.shape))
        assert model.simulations == 1
        model.value_and_numerical_grad(
            np.zeros(tiny_problem.layout.shape), eps=500.0
        )
        # 1 (value) + 1 (FD base) + n probes
        assert model.simulations == 2 + 1 + tiny_problem.num_variables

    def test_quality_bounded(self, tiny_problem, simulator):
        model = SimulatorQuality(tiny_problem, simulator)
        q = model.quality(0.5 * tiny_problem.upper)
        assert 0.0 <= q <= tiny_problem.coefficients.quality_alpha_total + 1e-9

    def test_quality_batch_bitwise_matches_loop(self, tiny_problem, simulator):
        model = SimulatorQuality(tiny_problem, simulator)
        fills = np.stack([np.zeros(tiny_problem.layout.shape),
                          0.3 * tiny_problem.upper,
                          0.9 * tiny_problem.upper])
        batched = model.quality_batch(fills)
        assert model.simulations == len(fills)
        looped = np.array([model.quality(f) for f in fills])
        np.testing.assert_array_equal(batched, looped)

    def test_quality_batch_shape_validated(self, tiny_problem, simulator):
        model = SimulatorQuality(tiny_problem, simulator)
        with pytest.raises(ValueError):
            model.quality_batch(np.zeros(tiny_problem.layout.shape))

    def test_batched_gradient_bitwise_matches_sequential(self, tiny_problem,
                                                         simulator):
        model = SimulatorQuality(tiny_problem, simulator)
        fill = 0.4 * tiny_problem.upper
        v_seq, g_seq = model.value_and_numerical_grad(fill, eps=500.0)
        v_bat, g_bat = model.value_and_numerical_grad(fill, eps=500.0,
                                                      sim_batch=7)
        assert v_bat == v_seq
        np.testing.assert_array_equal(g_bat, g_seq)


class TestCai:
    def test_runs_and_improves(self, tiny_problem, simulator):
        result = cai_fill(tiny_problem, simulator=simulator,
                          max_sqp_iterations=2, pkb_candidates=5)
        assert result.method == "cai"
        assert tiny_problem.feasible(result.fill, atol=1e-6)
        assert result.quality >= result.extras["pkb_quality"] - 1e-9
        assert result.evaluations > tiny_problem.num_variables

    def test_beats_nofill_on_simulator(self, tiny_problem, simulator):
        result = cai_fill(tiny_problem, simulator=simulator,
                          max_sqp_iterations=2, pkb_candidates=5)
        filled = evaluate_solution(tiny_problem, result.fill, "cai", simulator)
        empty = evaluate_solution(
            tiny_problem, np.zeros(tiny_problem.layout.shape), "none", simulator
        )
        assert filled.quality > empty.quality

    def test_iteration_budget_validated(self, tiny_problem, simulator):
        with pytest.raises(ValueError):
            cai_fill(tiny_problem, simulator=simulator, max_sqp_iterations=0)

    def test_gradient_costs_dominate(self, tiny_problem, simulator):
        """The motivating observation: one Cai iteration costs ~n
        simulations while NeurFill costs one backward pass."""
        result = cai_fill(tiny_problem, simulator=simulator,
                          max_sqp_iterations=1, pkb_candidates=3)
        assert result.extras["simulations"] >= tiny_problem.num_variables
