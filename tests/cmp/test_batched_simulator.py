"""Bitwise-parity tests for the batched CMP simulator.

The batched polish contract (DESIGN.md "Batched CMP simulator") is
*bitwise* identity: ``simulate_batch`` over a ``(B, L, N, M)`` stack
must return exactly what a Python loop of solo ``simulate`` calls
returns, bit for bit, in every output array and in both the default and
``stack_topography`` modes.  These tests pin that contract, the
lift-off behaviour of the batched pressure solve, and the float32
end-to-end path.
"""

import numpy as np
import pytest

from repro.cmp import (
    CmpSimulator,
    DEFAULT_PROCESS,
    ProcessParams,
    effective_density,
    solve_pressure,
)
from repro.cmp import pad as pad_mod
from repro.layout import (
    FeatureStack,
    LayerWindows,
    Layout,
    WindowGrid,
    apply_fill,
    make_design_a,
    make_design_b,
    make_design_c,
    stack_features,
)

RESULT_FIELDS = ("height", "dishing", "erosion", "pressure", "step_height")


def varied_stacks(rows=8, cols=8, count=4, layers=None, seed=0):
    """Distinct designs + fills sharing one grid (and layer count)."""
    makers = (make_design_a, make_design_b, make_design_c)
    rng = np.random.default_rng(seed)
    stacks = []
    for k in range(count):
        layout = makers[k % len(makers)](rows=rows, cols=cols)
        fill = rng.uniform(0.0, 0.9) * layout.slack_stack()
        features = apply_fill(layout, fill)
        if layers is not None:
            features = FeatureStack(
                density=features.density[:layers],
                perimeter=features.perimeter[:layers],
                wire_width=features.wire_width[:layers],
                trench_depth=features.trench_depth[:layers],
            )
        stacks.append(features)
    return stacks


def assert_batched_bitwise(batched, solos):
    """Every result array of every entry matches its solo run exactly."""
    for name in RESULT_FIELDS:
        arr = getattr(batched, name)
        assert arr.shape == (len(solos),) + getattr(solos[0], name).shape
        for k, solo in enumerate(solos):
            np.testing.assert_array_equal(
                arr[k], getattr(solo, name),
                err_msg=f"{name} differs for batch entry {k}")


class TestSimulateBatchParity:
    @pytest.mark.parametrize("batch", [1, 4])
    def test_default_mode_bitwise(self, batch):
        stacks = varied_stacks(count=batch)
        sim = CmpSimulator()
        batched = sim.simulate_batch(stacks)
        solos = [sim.simulate(s) for s in stacks]
        assert_batched_bitwise(batched, solos)

    def test_prestacked_input_equivalent(self):
        stacks = varied_stacks(count=3)
        sim = CmpSimulator()
        from_seq = sim.simulate_batch(stacks)
        from_stack = sim.simulate_batch(stack_features(stacks))
        for name in RESULT_FIELDS:
            np.testing.assert_array_equal(
                getattr(from_seq, name), getattr(from_stack, name))

    def test_windowed_smoother_path_bitwise(self):
        """Grids beyond DENSE_SMOOTHER_MAX take the sliding-window
        smoother; the batched contract must hold there too."""
        rows = pad_mod.DENSE_SMOOTHER_MAX + 6
        stacks = varied_stacks(rows=rows, cols=6, count=2, layers=1)
        sim = CmpSimulator()
        batched = sim.simulate_batch(stacks)
        solos = [sim.simulate(s) for s in stacks]
        assert_batched_bitwise(batched, solos)

    def test_entry_slices_match(self):
        stacks = varied_stacks(count=3)
        sim = CmpSimulator()
        batched = sim.simulate_batch(stacks)
        assert batched.batch_shape == (3,)
        one = batched.entry(1)
        assert one.batch_shape == ()
        for name in RESULT_FIELDS:
            np.testing.assert_array_equal(
                getattr(one, name), getattr(batched, name)[1])

    def test_single_stack_rejected(self):
        sim = CmpSimulator()
        with pytest.raises(ValueError, match="leading batch axis"):
            sim.simulate_batch(varied_stacks(count=1)[0])

    def test_mismatched_shapes_rejected(self):
        a = varied_stacks(rows=8, cols=8, count=1)[0]
        b = varied_stacks(rows=6, cols=6, count=1)[0]
        with pytest.raises(ValueError, match="shape"):
            stack_features([a, b])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            stack_features([])


class TestStackedModeParity:
    def test_single_layer_stacked_equals_default(self):
        """With one layer there is no residual to propagate, so the
        multilevel mode must reproduce the default path exactly."""
        stacks = varied_stacks(count=2, layers=1)
        default = CmpSimulator(ProcessParams(stack_topography=False))
        stacked = CmpSimulator(ProcessParams(stack_topography=True))
        for features in stacks:
            a = default.simulate(features)
            b = stacked.simulate(features)
            for name in RESULT_FIELDS:
                np.testing.assert_array_equal(
                    getattr(a, name), getattr(b, name), err_msg=name)

    def test_batched_multilevel_bitwise(self):
        stacks = varied_stacks(count=3)
        sim = CmpSimulator(ProcessParams(stack_topography=True,
                                         stacking_attenuation=0.7))
        batched = sim.simulate_batch(stacks)
        solos = [sim.simulate(s) for s in stacks]
        assert_batched_bitwise(batched, solos)


def rough_envelopes(scales, rows=12, cols=12, layers=2, seed=7):
    """One ``(len(scales), layers, rows, cols)`` batch of envelopes whose
    per-entry roughness is set by ``scales``."""
    rng = np.random.default_rng(seed)
    return np.stack([
        rng.normal(0.0, s, size=(layers, rows, cols)) for s in scales
    ])


class TestSolvePressureBatched:
    # Stiff enough that rough entries lift off, gentle ones do not.
    PARAMS = DEFAULT_PROCESS.scaled(pad_stiffness=3.0e-3)

    def test_mixed_liftoff_batch_bitwise(self):
        """A batch mixing lifted (iterative) and non-lifted (fast path)
        entries must match per-entry solo solves exactly."""
        env = rough_envelopes(scales=(10.0, 2000.0, 50.0, 5000.0))
        batched = solve_pressure(env, 100.0, self.PARAMS, batch_ndim=1)
        lifted_seen = unlifted_seen = False
        for k in range(env.shape[0]):
            solo = solve_pressure(env[k], 100.0, self.PARAMS)
            np.testing.assert_array_equal(batched[k], solo)
            ref = pad_mod.conformed_reference(env[k], 100.0, self.PARAMS)
            base = 1.0 + self.PARAMS.pad_stiffness * (env[k] - ref)
            if np.any(base <= 0.0):
                lifted_seen = True
            else:
                unlifted_seen = True
        assert lifted_seen and unlifted_seen  # the mix actually mixes

    def test_liftoff_balances_per_layer(self):
        env = rough_envelopes(scales=(3000.0, 4000.0))
        p = solve_pressure(env, 100.0, self.PARAMS, batch_ndim=1)
        assert np.all(p >= 0.0)
        means = p.mean(axis=(-2, -1))
        np.testing.assert_allclose(means, self.PARAMS.pressure_psi,
                                   rtol=1e-6)

    def test_degenerate_uniform_load_fallback(self, monkeypatch):
        """If every window of one entry lifts off (all base <= 0 — a
        defensive case the smoothing normally forbids), that entry falls
        back to the uniform applied load without disturbing the others."""
        real_ref = pad_mod.conformed_reference
        marker = 1.0e7  # entries offset this high get a sunk reference

        def sinking_reference(envelope, window_um, params):
            ref = real_ref(envelope, window_um, params)
            sunk = np.mean(envelope, axis=(-2, -1),
                           keepdims=True) > marker / 2
            return np.where(sunk, ref + 1.0e8, ref)

        monkeypatch.setattr(pad_mod, "conformed_reference",
                            sinking_reference)
        rng = np.random.default_rng(3)
        env = np.stack([
            rng.normal(marker, 100.0, size=(2, 10, 10)),  # degenerate
            rng.normal(0.0, 2000.0, size=(2, 10, 10)),    # lifts, converges
        ])
        batched = solve_pressure(env, 100.0, self.PARAMS, batch_ndim=1)
        # The sunk entry gets the uniform fallback pressure...
        np.testing.assert_array_equal(
            batched[0], np.full((2, 10, 10), self.PARAMS.pressure_psi))
        # ...and both entries still match their solo solves bitwise.
        for k in range(2):
            np.testing.assert_array_equal(
                batched[k], solve_pressure(env[k], 100.0, self.PARAMS))

    def test_batch_ndim_validated(self):
        env = np.zeros((2, 3, 4, 4))
        with pytest.raises(ValueError, match="batch_ndim"):
            solve_pressure(env, 100.0, DEFAULT_PROCESS, batch_ndim=3)
        with pytest.raises(ValueError, match="batch_ndim"):
            solve_pressure(env, 100.0, DEFAULT_PROCESS, batch_ndim=-1)


class TestFloat32Mode:
    def test_dtype_preserved_end_to_end(self):
        features = varied_stacks(count=1)[0]
        sim32 = CmpSimulator(dtype="float32")
        res = sim32.simulate(features)
        for name in RESULT_FIELDS:
            assert getattr(res, name).dtype == np.float32, name

    def test_batched_dtype_preserved_end_to_end(self):
        stacks = varied_stacks(count=3)
        sim32 = CmpSimulator(dtype="float32")
        batched = sim32.simulate_batch(stacks)
        for name in RESULT_FIELDS:
            assert getattr(batched, name).dtype == np.float32, name

    def test_float32_inputs_drive_dtype(self):
        f = varied_stacks(count=1)[0]
        f32 = FeatureStack(
            density=f.density.astype(np.float32),
            perimeter=f.perimeter.astype(np.float32),
            wire_width=f.wire_width.astype(np.float32),
            trench_depth=f.trench_depth.astype(np.float32),
        )
        res = CmpSimulator().simulate(f32)
        for name in RESULT_FIELDS:
            assert getattr(res, name).dtype == np.float32, name

    def test_batched_float32_bitwise_vs_solo(self):
        stacks = varied_stacks(count=3)
        sim32 = CmpSimulator(dtype="float32")
        batched = sim32.simulate_batch(stacks)
        solos = [sim32.simulate(s) for s in stacks]
        assert_batched_bitwise(batched, solos)

    def test_float32_close_to_float64(self):
        features = varied_stacks(count=1)[0]
        h64 = CmpSimulator().simulate(features).height
        h32 = CmpSimulator(dtype="float32").simulate(features).height
        np.testing.assert_allclose(h32, h64, rtol=1e-4)

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            CmpSimulator(dtype="int32")


class TestMaxEffectiveDensity:
    def test_default_matches_historical_clip(self):
        assert DEFAULT_PROCESS.max_effective_density == 0.98

    def test_custom_ceiling_applied(self):
        params = DEFAULT_PROCESS.scaled(max_effective_density=0.9)
        rho = effective_density(np.array([[0.97]]), np.array([[1.0e6]]),
                                1.0e4, params)
        assert rho[0, 0] == 0.9

    @pytest.mark.parametrize("bad", [0.0, 0.01, 1.2, -0.5])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ValueError, match="max_effective_density"):
            ProcessParams(max_effective_density=bad)

    def test_must_exceed_min(self):
        with pytest.raises(ValueError, match="max_effective_density"):
            ProcessParams(min_effective_density=0.5,
                          max_effective_density=0.5)

    def test_ceiling_changes_simulation(self):
        """The promoted knob is live: a lower ceiling alters the polish
        of a near-blanket layout."""
        grid = WindowGrid(8, 8)
        d = np.full((8, 8), 0.95)
        layer = LayerWindows("M1", d, np.zeros_like(d),
                             np.full_like(d, 5.0e5),
                             np.full_like(d, 0.2), 3000.0)
        lay = Layout("dense", grid, [layer])
        hi = CmpSimulator(DEFAULT_PROCESS).simulate_layout(lay).height
        lo = CmpSimulator(
            DEFAULT_PROCESS.scaled(max_effective_density=0.96)
        ).simulate_layout(lay).height
        assert not np.array_equal(hi, lo)
