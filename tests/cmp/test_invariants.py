"""Cross-cutting physical invariants of the CMP simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp import CmpSimulator, DEFAULT_PROCESS
from repro.layout import LayerWindows, Layout, WindowGrid, make_design_a, make_design_c
from repro.layout.layout import FeatureStack


class TestLayerIndependence:
    def test_stacked_equals_per_layer(self):
        """Layers polish independently: simulating the stack at once must
        equal simulating each layer on its own."""
        lay = make_design_a(rows=10, cols=10)
        sim = CmpSimulator()
        from repro.layout import apply_fill
        feats = apply_fill(lay, 0.4 * lay.slack_stack())
        stacked = sim.simulate(feats)
        for l in range(lay.num_layers):
            single = FeatureStack(
                density=feats.density[l : l + 1],
                perimeter=feats.perimeter[l : l + 1],
                wire_width=feats.wire_width[l : l + 1],
                trench_depth=feats.trench_depth[l : l + 1],
            )
            res = sim.simulate(single)
            np.testing.assert_allclose(res.height[0], stacked.height[l],
                                       rtol=1e-12)
            np.testing.assert_allclose(res.erosion[0], stacked.erosion[l],
                                       rtol=1e-12)

    def test_layer_permutation_equivariant(self):
        lay = make_design_c(rows=8, cols=8)
        sim = CmpSimulator()
        from repro.layout import apply_fill
        feats = apply_fill(lay, None)
        res = sim.simulate(feats)
        perm = [2, 0, 1]
        feats_p = FeatureStack(
            density=feats.density[perm],
            perimeter=feats.perimeter[perm],
            wire_width=feats.wire_width[perm],
            trench_depth=feats.trench_depth[perm],
        )
        res_p = sim.simulate(feats_p)
        np.testing.assert_allclose(res_p.height, res.height[perm], rtol=1e-12)


class TestSymmetry:
    def test_mirror_layout_mirror_heights(self):
        """Mirroring the pattern mirrors the post-CMP profile."""
        lay = make_design_a(rows=10, cols=12)
        sim = CmpSimulator()
        res = sim.simulate_layout(lay)
        mirrored = Layout(
            "m", lay.grid,
            [LayerWindows(
                l.name, l.density[:, ::-1].copy(), l.slack[:, ::-1].copy(),
                l.wire_perimeter[:, ::-1].copy(), l.wire_width[:, ::-1].copy(),
                l.trench_depth,
            ) for l in lay.layers],
        )
        res_m = sim.simulate_layout(mirrored)
        np.testing.assert_allclose(res_m.height, res.height[:, :, ::-1],
                                   rtol=1e-10)

    @given(rho=st.floats(0.05, 0.85), width=st.floats(0.1, 0.5))
    @settings(max_examples=15, deadline=None)
    def test_property_uniform_pattern_uniform_height(self, rho, width):
        rows = cols = 8
        grid = WindowGrid(rows, cols)
        d = np.full((rows, cols), rho)
        layer = LayerWindows(
            "M1", d, np.zeros_like(d), 2 * d * grid.window_area / width,
            np.full_like(d, width), 3000.0,
        )
        res = CmpSimulator().simulate_layout(Layout("u", grid, [layer]))
        assert res.height.std() < 1e-9


class TestMonotonicity:
    @given(rho=st.floats(0.1, 0.6))
    @settings(max_examples=10, deadline=None)
    def test_property_denser_region_taller(self, rho):
        """A denser half finishes taller (less total removal) — the
        response dummy filling exploits."""
        rows = cols = 12
        grid = WindowGrid(rows, cols)
        d = np.full((rows, cols), rho)
        d[:, cols // 2:] = rho + 0.25
        width = 0.2
        layer = LayerWindows(
            "M1", d, np.zeros_like(d), 2 * d * grid.window_area / width,
            np.full_like(d, width), 3000.0,
        )
        res = CmpSimulator().simulate_layout(Layout("s", grid, [layer]))
        h = res.height[0]
        assert h[:, cols - 1].mean() > h[:, 0].mean()

    def test_longer_polish_lower_height(self):
        lay = make_design_a(rows=8, cols=8)
        heights = []
        for t in (20.0, 40.0, 80.0):
            sim = CmpSimulator(DEFAULT_PROCESS.scaled(polish_time_s=t))
            heights.append(sim.simulate_layout(lay).height.mean())
        assert heights[0] > heights[1] > heights[2]
