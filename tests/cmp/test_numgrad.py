"""Tests for finite-difference gradients through black-box objectives."""

import numpy as np
import pytest

from repro.cmp import (
    CmpSimulator,
    central_difference_gradient,
    count_simulator_calls,
    forward_difference_gradient,
    forward_difference_gradient_batched,
)
from repro.layout import make_design_a


class TestOnQuadratic:
    """Validate the differencing machinery on a known analytic function."""

    @staticmethod
    def quad(x):
        return float(np.sum(x**2) + 3.0 * x.ravel()[0])

    def test_forward_matches_analytic(self):
        x = np.array([1.0, -2.0, 0.5])
        g = forward_difference_gradient(self.quad, x, eps=1e-5)
        expected = 2 * x + np.array([3.0, 0.0, 0.0])
        np.testing.assert_allclose(g, expected, atol=1e-3)

    def test_central_matches_analytic(self):
        x = np.array([1.0, -2.0, 0.5])
        g = central_difference_gradient(self.quad, x, eps=1e-4)
        expected = 2 * x + np.array([3.0, 0.0, 0.0])
        np.testing.assert_allclose(g, expected, atol=1e-6)

    def test_shaped_input_preserved(self):
        x = np.ones((2, 3))
        g = forward_difference_gradient(self.quad, x, eps=1e-5)
        assert g.shape == (2, 3)

    def test_indices_subset(self):
        x = np.array([1.0, 1.0, 1.0, 1.0])
        g = forward_difference_gradient(self.quad, x, eps=1e-5, indices=np.array([0, 2]))
        assert g[1] == 0.0 and g[3] == 0.0
        assert g[0] != 0.0 and g[2] != 0.0

    def test_upper_bound_respected(self):
        """At the bound the probe steps backwards and stays feasible."""
        seen = []

        def watched(x):
            seen.append(x.copy())
            return self.quad(x)

        x = np.array([1.0, 2.0])
        upper = np.array([1.0, 5.0])
        g = forward_difference_gradient(watched, x, eps=0.5, upper=upper)
        for probe in seen:
            assert np.all(probe <= upper + 1e-12)
        # Backward step still approximates the gradient.
        assert g[0] == pytest.approx(2 * 1.0 + 3.0, rel=0.3)

    def test_bad_eps_rejected(self):
        with pytest.raises(ValueError):
            forward_difference_gradient(self.quad, np.ones(2), eps=0.0)
        with pytest.raises(ValueError):
            central_difference_gradient(self.quad, np.ones(2), eps=-1.0)


class TestBatchedForwardDifference:
    """The batched pass must be bitwise equal to the sequential one
    whenever the batched objective matches a loop of scalar calls."""

    @staticmethod
    def quad(x):
        return float(np.sum(x**2) + 3.0 * x.ravel()[0])

    @classmethod
    def quad_batch(cls, stack):
        return np.array([cls.quad(p) for p in stack])

    @pytest.mark.parametrize("batch_size", [1, 2, 64])
    def test_bitwise_matches_sequential(self, batch_size):
        x = np.arange(6.0).reshape(2, 3) - 2.0
        seq = forward_difference_gradient(self.quad, x, eps=0.5)
        bat = forward_difference_gradient_batched(
            self.quad_batch, x, eps=0.5, batch_size=batch_size)
        np.testing.assert_array_equal(bat, seq)

    def test_upper_bound_flips_match(self):
        x = np.array([1.0, 2.0, 3.0])
        upper = np.array([1.0, 5.0, 3.0])
        seq = forward_difference_gradient(self.quad, x, eps=0.5,
                                          upper=upper)
        bat = forward_difference_gradient_batched(
            self.quad_batch, x, eps=0.5, upper=upper, batch_size=2)
        np.testing.assert_array_equal(bat, seq)

    def test_indices_subset_matches(self):
        x = np.array([1.0, 1.0, 1.0, 1.0])
        idx = np.array([0, 2])
        seq = forward_difference_gradient(self.quad, x, eps=1e-5,
                                          indices=idx)
        bat = forward_difference_gradient_batched(
            self.quad_batch, x, eps=1e-5, indices=idx, batch_size=2)
        np.testing.assert_array_equal(bat, seq)

    def test_base_reuse_skips_one_evaluation(self):
        calls = []

        def counting_batch(stack):
            calls.append(stack.shape[0])
            return self.quad_batch(stack)

        x = np.ones(3)
        forward_difference_gradient_batched(counting_batch, x, eps=0.5,
                                            batch_size=8)
        assert sum(calls) == x.size + 1  # base as a singleton batch
        calls.clear()
        forward_difference_gradient_batched(counting_batch, x, eps=0.5,
                                            batch_size=8,
                                            base=self.quad(x))
        assert sum(calls) == x.size  # caller-supplied base reused

    def test_bad_objective_shape_rejected(self):
        x = np.ones(3)
        with pytest.raises(ValueError, match="shape"):
            forward_difference_gradient_batched(
                lambda stack: np.zeros((stack.shape[0], 2)), x, eps=0.5)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            forward_difference_gradient_batched(
                self.quad_batch, np.ones(2), eps=0.0)
        with pytest.raises(ValueError):
            forward_difference_gradient_batched(
                self.quad_batch, np.ones(2), eps=1.0, batch_size=0)


class TestCallCounts:
    def test_forward(self):
        assert count_simulator_calls(100, "forward") == 101

    def test_central(self):
        assert count_simulator_calls(100, "central") == 200

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            count_simulator_calls(10, "magic")


class TestThroughSimulator:
    def test_gradient_sign_of_variance(self):
        """Filling the sparsest window of a contrasted layout should reduce
        per-layer height variance: the numerical gradient must say so."""
        lay = make_design_a(rows=6, cols=6)
        sim = CmpSimulator()
        slack = lay.slack_stack()

        def variance(fill):
            h = sim.simulate_layout(lay, fill).height
            return float(np.mean([h[l].var() for l in range(h.shape[0])]))

        x0 = np.zeros(lay.shape)
        rho = lay.density_stack()
        # Index of the sparsest fillable window on layer 0.
        masked = np.where(slack[0] > 0, rho[0], np.inf)
        i, j = np.unravel_index(np.argmin(masked), masked.shape)
        k = np.ravel_multi_index((0, i, j), lay.shape)
        g = forward_difference_gradient(
            variance, x0, eps=1000.0, upper=slack, indices=np.array([k])
        )
        assert g.ravel()[k] < 0.0
