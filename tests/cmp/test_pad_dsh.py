"""Tests for the pad contact-mechanics solver and the DSH removal model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp import (
    DEFAULT_PROCESS,
    ProcessParams,
    contact_fraction,
    removal_rates,
    solve_pressure,
)


class TestSolvePressure:
    def test_flat_envelope_uniform_pressure(self):
        env = np.full((10, 10), 1234.0)
        p = solve_pressure(env, 100.0, DEFAULT_PROCESS)
        np.testing.assert_allclose(p, DEFAULT_PROCESS.pressure_psi)

    def test_load_balance(self):
        rng = np.random.default_rng(0)
        env = rng.normal(0, 500, size=(20, 20))
        p = solve_pressure(env, 100.0, DEFAULT_PROCESS)
        assert p.mean() == pytest.approx(DEFAULT_PROCESS.pressure_psi, rel=1e-6)

    def test_pressure_nonnegative(self):
        rng = np.random.default_rng(1)
        env = rng.normal(0, 1e5, size=(15, 15))  # extreme topography
        p = solve_pressure(env, 100.0, DEFAULT_PROCESS)
        assert np.all(p >= 0)

    def test_high_spots_draw_more_pressure(self):
        env = np.zeros((21, 21))
        env[10, 10] = 2000.0
        p = solve_pressure(env, 100.0, DEFAULT_PROCESS)
        assert p[10, 10] > p[0, 0]

    def test_long_wavelength_tilt_ignored(self):
        """The pad conforms to topography longer than the planarization
        length, so a gentle full-chip tilt produces near-uniform pressure."""
        n = 30
        tilt = np.linspace(0, 300, n)[None, :] * np.ones((n, 1))
        params = DEFAULT_PROCESS.scaled(planarization_length_um=200.0)
        p = solve_pressure(tilt, 100.0, params)
        assert p.std() / p.mean() < 0.01

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            solve_pressure(np.zeros(5), 100.0, DEFAULT_PROCESS)

    @given(seed=st.integers(0, 100), scale=st.floats(1.0, 5e4))
    @settings(max_examples=20, deadline=None)
    def test_property_balance_and_positivity(self, seed, scale):
        rng = np.random.default_rng(seed)
        env = rng.normal(0, scale, size=(12, 12))
        p = solve_pressure(env, 100.0, DEFAULT_PROCESS)
        assert np.all(p >= 0)
        assert p.mean() == pytest.approx(DEFAULT_PROCESS.pressure_psi, rel=1e-4)


class TestContactFraction:
    def test_clipping(self):
        params = ProcessParams(contact_height_a=500.0)
        s = np.array([-10.0, 0.0, 250.0, 500.0, 5000.0])
        phi = contact_fraction(s, params)
        np.testing.assert_allclose(phi, [0.0, 0.0, 0.5, 1.0, 1.0])


class TestRemovalRates:
    def test_blanket_limit_at_zero_step(self):
        """s = 0: both rates equal the Preston blanket rate."""
        params = DEFAULT_PROCESS
        rho = np.array([0.3])
        up, down = removal_rates(rho, np.array([0.0]), np.array([params.pressure_psi]), params)
        assert up[0] == pytest.approx(params.blanket_rate)
        assert down[0] == pytest.approx(params.blanket_rate)

    def test_full_concentration_at_large_step(self):
        """s >= h_c: all load on up areas, down areas untouched."""
        params = DEFAULT_PROCESS
        rho = np.array([0.25])
        up, down = removal_rates(rho, np.array([1e4]), np.array([params.pressure_psi]), params)
        assert up[0] == pytest.approx(params.blanket_rate / 0.25)
        assert down[0] == 0.0

    def test_up_rate_decreases_with_density(self):
        params = DEFAULT_PROCESS
        step = np.array([1e4, 1e4])
        p = np.full(2, params.pressure_psi)
        up, _ = removal_rates(np.array([0.2, 0.8]), step, p, params)
        assert up[0] > up[1]

    def test_rates_scale_with_pressure(self):
        params = DEFAULT_PROCESS
        rho = np.array([0.5])
        s = np.array([200.0])
        up1, down1 = removal_rates(rho, s, np.array([1.0]), params)
        up2, down2 = removal_rates(rho, s, np.array([2.0]), params)
        assert up2[0] == pytest.approx(2 * up1[0])
        assert down2[0] == pytest.approx(2 * down1[0])

    def test_tiny_density_clamped(self):
        params = DEFAULT_PROCESS
        up, _ = removal_rates(np.array([0.0]), np.array([1e4]),
                              np.array([params.pressure_psi]), params)
        assert np.isfinite(up[0])
        assert up[0] == pytest.approx(params.blanket_rate / params.min_effective_density)

    @given(
        rho=st.floats(0.01, 0.99),
        step=st.floats(0.0, 3000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_down_never_exceeds_up(self, rho, step):
        params = DEFAULT_PROCESS
        up, down = removal_rates(
            np.array([rho]), np.array([step]), np.array([params.pressure_psi]), params
        )
        assert 0.0 <= down[0] <= up[0] + 1e-12

    @given(rho=st.floats(0.05, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_property_mass_conservation_envelope(self, rho):
        """Area-weighted removal never exceeds the blanket rate (the pad
        can only deliver the applied load)."""
        params = DEFAULT_PROCESS
        for s in (0.0, 100.0, 250.0, 499.0, 2000.0):
            up, down = removal_rates(
                np.array([rho]), np.array([s]), np.array([params.pressure_psi]), params
            )
            weighted = rho * up[0] + (1 - rho) * down[0]
            assert weighted <= params.blanket_rate * (1 + 1e-9)
