"""Cached separable Gaussian smoother vs scipy, and the solve_pressure
fast path vs the fixed-point iteration.

The smoother replaces ``scipy.ndimage.gaussian_filter`` on the hot path
(one call per simulator step, thousands per dataset); both the dense
(n <= DENSE_SMOOTHER_MAX) and windowed (n > DENSE_SMOOTHER_MAX) variants
must reproduce scipy's ``mode="nearest"`` output to machine precision.
"""

import numpy as np
import pytest

from repro.cmp import DEFAULT_PROCESS, solve_pressure
from repro.cmp.pad import (
    DENSE_SMOOTHER_MAX,
    _smoothers,
    clear_smoother_cache,
    conformed_reference,
)


@pytest.fixture(autouse=True)
def _cold_cache():
    clear_smoother_cache()
    yield
    clear_smoother_cache()


def _scipy_reference(envelope, window_um, params):
    gaussian_filter = pytest.importorskip("scipy.ndimage").gaussian_filter
    sigma = max(params.planarization_length_um / window_um, 1e-6)
    envelope = np.asarray(envelope, dtype=float)
    if envelope.ndim == 2:
        return gaussian_filter(envelope, sigma, mode="nearest")
    return np.stack(
        [gaussian_filter(layer, sigma, mode="nearest") for layer in envelope]
    )


class TestConformedReferenceVsScipy:
    @pytest.mark.parametrize("shape", [
        (10, 10),            # dense path, tiny
        (64, 48),            # dense path, rectangular
        (3, 30, 20),         # dense path, stacked layers
        (DENSE_SMOOTHER_MAX + 40, 50),   # windowed rows, dense cols
        (2, 200, DENSE_SMOOTHER_MAX + 72),  # windowed cols, stacked
    ])
    @pytest.mark.parametrize("window_um", [100.0, 40.0])
    def test_matches_gaussian_filter_nearest(self, shape, window_um):
        rng = np.random.default_rng(hash(shape) % (2**32))
        env = rng.normal(0, 500, size=shape)
        got = conformed_reference(env, window_um, DEFAULT_PROCESS)
        want = _scipy_reference(env, window_um, DEFAULT_PROCESS)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-9)

    def test_constant_preserved_both_paths(self):
        # A normalised kernel with nearest-edge handling maps constants
        # to themselves exactly — on the dense and the windowed path.
        for n in (32, DENSE_SMOOTHER_MAX + 16):
            env = np.full((n, n), 777.0)
            ref = conformed_reference(env, 100.0, DEFAULT_PROCESS)
            np.testing.assert_allclose(ref, 777.0, rtol=0, atol=1e-9)


class TestSmootherCache:
    def test_entries_reused_across_calls(self):
        env = np.random.default_rng(0).normal(size=(20, 24))
        conformed_reference(env, 100.0, DEFAULT_PROCESS)
        assert len(_smoothers) == 2  # one per distinct axis length
        first = conformed_reference(env, 100.0, DEFAULT_PROCESS)
        assert len(_smoothers) == 2
        np.testing.assert_array_equal(
            first, conformed_reference(env, 100.0, DEFAULT_PROCESS)
        )

    def test_square_grid_shares_one_entry(self):
        env = np.zeros((16, 16))
        conformed_reference(env, 100.0, DEFAULT_PROCESS)
        assert len(_smoothers) == 1

    def test_cache_bounded(self):
        for n in range(10, 50):
            conformed_reference(np.zeros((n, n)), 100.0, DEFAULT_PROCESS)
        from repro.cmp.pad import _MAX_CACHED_SMOOTHERS
        assert len(_smoothers) <= _MAX_CACHED_SMOOTHERS


class TestSolvePressureFastPath:
    def test_fast_path_matches_iteration_no_liftoff(self):
        # Gentle topography: base > 0 everywhere, the closed-form rescale
        # must land on the same fixed point the loop converges to.
        rng = np.random.default_rng(3)
        env = rng.normal(0, 300, size=(24, 24))
        fast = solve_pressure(env, 100.0, DEFAULT_PROCESS)

        # Force the iterative branch by recomputing its ingredients.
        from repro.cmp.pad import conformed_reference as cr
        reference = cr(env, 100.0, DEFAULT_PROCESS)
        base = 1.0 + DEFAULT_PROCESS.pad_stiffness * (env - reference)
        assert np.all(base > 0), "test premise: no lift-off"
        p0 = DEFAULT_PROCESS.pressure_psi
        scale = 1.0
        for _ in range(25):
            pressure = np.maximum(base * scale, 0.0) * p0
            mean = pressure.mean()
            if abs(mean - p0) <= 1e-10 * p0:
                break
            scale = scale * (p0 / mean)
        np.testing.assert_allclose(fast, pressure, rtol=1e-12)
        assert fast.mean() == pytest.approx(p0, rel=1e-10)

    def test_liftoff_still_uses_iteration(self):
        # Extreme topography clips windows to zero; the loop must engage
        # and still balance the load.
        rng = np.random.default_rng(1)
        env = rng.normal(0, 1e5, size=(15, 15))
        p = solve_pressure(env, 100.0, DEFAULT_PROCESS)
        assert np.any(p == 0.0)
        assert p.mean() == pytest.approx(DEFAULT_PROCESS.pressure_psi, rel=1e-6)

    def test_stacked_layers_fast_path(self):
        rng = np.random.default_rng(7)
        env = rng.normal(0, 200, size=(3, 16, 16))
        p = solve_pressure(env, 100.0, DEFAULT_PROCESS)
        for layer in p:
            assert layer.mean() == pytest.approx(
                DEFAULT_PROCESS.pressure_psi, rel=1e-9)
