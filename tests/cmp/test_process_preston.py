"""Tests for process parameters and the Preston equation."""

import numpy as np
import pytest

from repro.cmp import DEFAULT_PROCESS, ProcessParams, preston_rate, removed_amount


class TestProcessParams:
    def test_blanket_rate(self):
        p = ProcessParams(preston_coefficient=10, pressure_psi=2, velocity_mps=3)
        assert p.blanket_rate == 60

    def test_num_steps(self):
        p = ProcessParams(polish_time_s=10, time_step_s=2)
        assert p.num_steps == 5

    def test_invalid_times_rejected(self):
        with pytest.raises(ValueError):
            ProcessParams(polish_time_s=-1)
        with pytest.raises(ValueError):
            ProcessParams(polish_time_s=1, time_step_s=2)

    def test_invalid_density_clamp_rejected(self):
        with pytest.raises(ValueError):
            ProcessParams(min_effective_density=0.0)
        with pytest.raises(ValueError):
            ProcessParams(min_effective_density=1.5)

    def test_invalid_contact_height_rejected(self):
        with pytest.raises(ValueError):
            ProcessParams(contact_height_a=0)

    def test_scaled_override(self):
        p = DEFAULT_PROCESS.scaled(polish_time_s=30.0)
        assert p.polish_time_s == 30.0
        assert p.preston_coefficient == DEFAULT_PROCESS.preston_coefficient
        # Frozen original untouched.
        assert DEFAULT_PROCESS.polish_time_s != 30.0


class TestPreston:
    def test_rate_linear_in_pressure(self):
        p = DEFAULT_PROCESS
        r1 = preston_rate(1.0, p)
        r2 = preston_rate(2.0, p)
        assert r2 == pytest.approx(2 * r1)

    def test_rate_array_input(self):
        p = DEFAULT_PROCESS
        pres = np.array([1.0, 2.0, 0.0])
        rates = preston_rate(pres, p)
        assert rates.shape == (3,)
        assert rates[2] == 0.0

    def test_removed_amount(self):
        p = ProcessParams(preston_coefficient=10, pressure_psi=1, velocity_mps=1)
        assert removed_amount(2.0, 3.0, p) == pytest.approx(60.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            removed_amount(1.0, -1.0, DEFAULT_PROCESS)
