"""Tests for the time-stepping full-chip CMP simulator."""

import numpy as np
import pytest

from repro.cmp import CmpSimulator, DEFAULT_PROCESS, effective_density
from repro.layout import LayerWindows, Layout, WindowGrid, make_design_a


def uniform_layout(density=0.4, rows=12, cols=12, width=0.2, depth=3000.0):
    grid = WindowGrid(rows, cols)
    d = np.full((rows, cols), density)
    layer = LayerWindows(
        "M1", d, np.zeros_like(d), 2 * d * grid.window_area / width,
        np.full_like(d, width), depth,
    )
    return Layout("uniform", grid, [layer])


def split_layout(rho_left=0.2, rho_right=0.6, rows=16, cols=16, width=0.2):
    grid = WindowGrid(rows, cols)
    d = np.full((rows, cols), rho_left)
    d[:, cols // 2:] = rho_right
    layer = LayerWindows(
        "M1", d, np.zeros_like(d), 2 * d * grid.window_area / width,
        np.full_like(d, width), 3000.0,
    )
    return Layout("split", grid, [layer])


class TestEffectiveDensity:
    def test_gain_formula(self):
        params = DEFAULT_PROCESS
        d = np.array([[0.4]])
        per = np.array([[10000.0]])
        rho = effective_density(d, per, 1e4, params)
        expected = 0.4 + 10000.0 * params.deposition_bias_um / 2.0 / 1e4
        assert rho[0, 0] == pytest.approx(expected)

    def test_clamped(self):
        params = DEFAULT_PROCESS
        rho = effective_density(np.array([[0.0]]), np.array([[0.0]]), 1e4, params)
        assert rho[0, 0] == params.min_effective_density
        rho = effective_density(np.array([[0.97]]), np.array([[1e6]]), 1e4, params)
        assert rho[0, 0] == 0.98


class TestSimulator:
    def test_output_shapes(self):
        lay = make_design_a(rows=10, cols=8)
        res = CmpSimulator().simulate_layout(lay)
        assert res.height.shape == (3, 10, 8)
        assert res.dishing.shape == (3, 10, 8)
        assert res.erosion.shape == (3, 10, 8)
        assert res.pressure.shape == (3, 10, 8)
        assert res.step_height.shape == (3, 10, 8)

    def test_uniform_layout_is_flat(self):
        res = CmpSimulator().simulate_layout(uniform_layout())
        h = res.height[0]
        assert h.max() - h.min() < 1e-6

    def test_step_clears_for_default_polish(self):
        res = CmpSimulator().simulate_layout(uniform_layout())
        assert np.all(res.step_height < DEFAULT_PROCESS.contact_height_a)

    def test_short_polish_leaves_step(self):
        params = DEFAULT_PROCESS.scaled(polish_time_s=2.0)
        res = CmpSimulator(params).simulate_layout(uniform_layout(density=0.8))
        assert np.all(res.step_height > 0)

    def test_more_polish_removes_more(self):
        lay = uniform_layout()
        short = CmpSimulator(DEFAULT_PROCESS.scaled(polish_time_s=30.0))
        long = CmpSimulator(DEFAULT_PROCESS.scaled(polish_time_s=60.0))
        h_short = short.simulate_layout(lay).height.mean()
        h_long = long.simulate_layout(lay).height.mean()
        assert h_long < h_short

    def test_density_contrast_creates_topography(self):
        res = CmpSimulator().simulate_layout(split_layout())
        h = res.height[0]
        assert h.max() - h.min() > 10.0

    def test_denser_region_more_erosion(self):
        res = CmpSimulator().simulate_layout(split_layout())
        ero = res.erosion[0]
        cols = ero.shape[1]
        assert ero[:, cols - 1].mean() > ero[:, 0].mean()

    def test_uniformizing_fill_flattens(self):
        """The core premise of fill synthesis: density-equalising fill
        reduces per-layer height variance."""
        lay = make_design_a(rows=16, cols=16)
        rho = lay.density_stack()
        slack = lay.slack_stack()
        fill = np.clip((0.75 - rho) * lay.grid.window_area, 0, slack)
        sim = CmpSimulator()
        before = sim.simulate_layout(lay).height
        after = sim.simulate_layout(lay, fill).height
        var_before = np.mean([before[l].var() for l in range(3)])
        var_after = np.mean([after[l].var() for l in range(3)])
        assert var_after < var_before

    def test_height_range_property(self):
        res = CmpSimulator().simulate_layout(split_layout())
        assert res.height_range == pytest.approx(
            float(res.height.max() - res.height.min())
        )

    def test_deterministic(self):
        lay = make_design_a(rows=8, cols=8)
        sim = CmpSimulator()
        a = sim.simulate_layout(lay).height
        b = sim.simulate_layout(lay).height
        np.testing.assert_array_equal(a, b)

    def test_fill_validated(self):
        lay = make_design_a(rows=6, cols=6)
        with pytest.raises(ValueError):
            CmpSimulator().simulate_layout(lay, np.full(lay.shape, 1e9))
