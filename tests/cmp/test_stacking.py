"""Tests for the multilevel stacked-topography simulator mode."""

import numpy as np
import pytest

from repro.cmp import CmpSimulator, ProcessParams
from repro.layout import LayerWindows, Layout, WindowGrid, make_design_a


def contrast_layout(rows=12, cols=12):
    """Layer 0 has a density step; upper layers are uniform."""
    grid = WindowGrid(rows, cols)
    width = 0.2
    layers = []
    for l, base in enumerate((0.2, 0.4, 0.4)):
        d = np.full((rows, cols), base)
        if l == 0:
            d[:, cols // 2:] = 0.65
        layers.append(LayerWindows(
            f"M{l+1}", d, np.zeros_like(d),
            2 * d * grid.window_area / width, np.full_like(d, width), 3000.0,
        ))
    return Layout("stack", grid, layers)


class TestStackedMode:
    def test_flag_off_matches_default(self):
        lay = make_design_a(rows=8, cols=8)
        a = CmpSimulator(ProcessParams()).simulate_layout(lay)
        b = CmpSimulator(ProcessParams(stack_topography=False)).simulate_layout(lay)
        np.testing.assert_array_equal(a.height, b.height)

    def test_uniform_layers_unaffected_by_stacking(self):
        lay = contrast_layout()
        # Make layer 0 uniform too -> no residual to propagate.
        lay.layers[0].density[:, :] = 0.4
        lay.layers[0].wire_perimeter[:, :] = lay.layers[1].wire_perimeter
        off = CmpSimulator(ProcessParams(stack_topography=False)).simulate_layout(lay)
        on = CmpSimulator(ProcessParams(stack_topography=True)).simulate_layout(lay)
        np.testing.assert_allclose(on.height, off.height, rtol=1e-10)

    def test_lower_layer_topography_propagates_up(self):
        lay = contrast_layout()
        off = CmpSimulator(ProcessParams(stack_topography=False)).simulate_layout(lay)
        on = CmpSimulator(ProcessParams(stack_topography=True)).simulate_layout(lay)
        # Without stacking the uniform upper layers are dead flat; with
        # stacking they inherit part of layer 0's step.
        assert off.height[1].std() < 1e-9
        assert on.height[1].std() > 1.0
        # Layer 0 itself is identical in both modes.
        np.testing.assert_allclose(on.height[0], off.height[0], rtol=1e-12)

    def test_attenuation_controls_coupling(self):
        lay = contrast_layout()
        weak = CmpSimulator(ProcessParams(stack_topography=True,
                                          stacking_attenuation=0.2)).simulate_layout(lay)
        strong = CmpSimulator(ProcessParams(stack_topography=True,
                                            stacking_attenuation=0.9)).simulate_layout(lay)
        assert strong.height[1].std() > weak.height[1].std()

    def test_polish_attenuates_inherited_step(self):
        """CMP planarises: the inherited step on layer 1 is smaller than
        the residual layer 0 left behind."""
        lay = contrast_layout()
        params = ProcessParams(stack_topography=True, stacking_attenuation=1.0)
        res = CmpSimulator(params).simulate_layout(lay)
        assert res.height[1].std() < res.height[0].std()

    def test_invalid_attenuation(self):
        with pytest.raises(ValueError):
            ProcessParams(stacking_attenuation=1.5)
