"""Shared fixtures: a small design with a once-trained CMP surrogate.

Training even a tiny UNet takes seconds, so the surrogate is session-
scoped and shared by the core / baselines / evaluation test modules.
"""

import pytest

from repro.cmp import CmpSimulator
from repro.core import FillProblem, ScoreCoefficients
from repro.layout import make_design_a
from repro.surrogate import TrainConfig, pretrain_surrogate


@pytest.fixture(scope="session")
def small_layout():
    return make_design_a(rows=10, cols=10)


@pytest.fixture(scope="session")
def simulator():
    return CmpSimulator()


@pytest.fixture(scope="session")
def small_coeffs(small_layout, simulator):
    return ScoreCoefficients.calibrated(small_layout, simulator)


@pytest.fixture(scope="session")
def small_problem(small_layout, small_coeffs):
    return FillProblem(small_layout, small_coeffs)


@pytest.fixture(scope="session")
def trained_surrogate(small_layout, simulator):
    """A briefly pre-trained CMP neural network bound to small_layout."""
    network, history, report = pretrain_surrogate(
        [small_layout], small_layout,
        sample_count=20, tile_rows=10, tile_cols=10,
        base_channels=6, depth=2,
        config=TrainConfig(epochs=12, batch_size=4),
        simulator=simulator, seed=0,
    )
    return network
