"""Tests for performance-degradation estimation (Eqs. 4, 12-17)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PerformanceDegradation, ScoreCoefficients, overlay_area
from repro.core.degradation import fill_amount, overlay_gradient, overlay_gradient_paper
from repro.layout import compute_slack_regions, make_design_a
from repro.layout.fill_regions import SlackRegions


@pytest.fixture(scope="module")
def layout():
    return make_design_a(rows=8, cols=8)


@pytest.fixture(scope="module")
def regions(layout):
    return compute_slack_regions(layout)


class TestFillAmount:
    def test_eq4(self):
        fill = np.arange(12.0).reshape(3, 2, 2)
        assert fill_amount(fill) == pytest.approx(66.0)


class TestOverlayArea:
    def test_zero_fill_zero_overlay(self, layout, regions):
        ov, dw, dd = overlay_area(np.zeros(layout.shape), regions)
        assert ov == dw == dd == 0.0

    def test_type1_only_fill_no_wire_overlay(self, layout, regions):
        fill = np.minimum(regions.type1, 0.5 * regions.type1)
        ov, dw, dd = overlay_area(fill, regions)
        assert dw == 0.0  # type-1 dummies overlap no wires

    def test_full_fill_overlaps(self, layout, regions):
        fill = layout.slack_stack()
        ov, dw, dd = overlay_area(fill, regions)
        assert dw > 0
        assert ov == pytest.approx(dw + dd)

    def test_eq13_weights(self, layout, regions):
        """Dummy-to-wire overlay counts type 2/3 once and type 4 twice."""
        fill = layout.slack_stack()
        _, dw, _ = overlay_area(fill, regions)
        expected = float(
            (regions.type2 + regions.type3 + 2 * regions.type4).sum()
        )
        assert dw == pytest.approx(expected)

    def test_single_layer_no_dummy_dummy(self):
        lay = make_design_a(rows=6, cols=6)
        single = type(lay)("s", lay.grid, [lay.layers[0]])
        regs = compute_slack_regions(single)
        ov, dw, dd = overlay_area(single.slack_stack(), regs)
        assert dd == 0.0


class TestOverlayGradient:
    def test_matches_finite_difference(self, layout, regions):
        rng = np.random.default_rng(0)
        fill = 0.5 * rng.random(layout.shape) * layout.slack_stack()
        grad = overlay_gradient(fill, regions)
        eps = 1e-4
        for _ in range(12):
            l = rng.integers(0, layout.num_layers)
            i = rng.integers(0, 8)
            j = rng.integers(0, 8)
            hi = fill.copy()
            hi[l, i, j] += eps
            lo = fill.copy()
            lo[l, i, j] -= eps
            fd = (overlay_area(hi, regions)[0] - overlay_area(lo, regions)[0]) / (2 * eps)
            assert grad[l, i, j] == pytest.approx(fd, abs=1e-6)

    def test_gradient_values_in_range(self, layout, regions):
        rng = np.random.default_rng(1)
        fill = rng.random(layout.shape) * layout.slack_stack()
        grad = overlay_gradient(fill, regions)
        assert np.all(grad >= 0)
        assert np.all(grad <= 2.0 + 1e-12)

    def test_paper_gradient_cases(self, layout, regions):
        """Eq. 16 reference: values in {0, 1, 2}."""
        rng = np.random.default_rng(2)
        fill = rng.random(layout.shape) * layout.slack_stack()
        grad = overlay_gradient_paper(fill, regions)
        assert set(np.unique(grad)) <= {0.0, 1.0, 2.0}

    @given(frac=st.floats(0.0, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_property_overlay_monotone_in_fill(self, frac):
        lay = make_design_a(rows=6, cols=6)
        regs = compute_slack_regions(lay)
        slack = lay.slack_stack()
        ov_lo, _, _ = overlay_area(frac * 0.5 * slack, regs)
        ov_hi, _, _ = overlay_area(frac * 0.5 * slack + 0.1 * slack, regs)
        assert ov_hi >= ov_lo - 1e-9


class TestPerformanceDegradation:
    def test_zero_fill_full_score(self, layout):
        coeffs = ScoreCoefficients()
        pd = PerformanceDegradation(layout, coeffs)
        breakdown, grad = pd.evaluate(np.zeros(layout.shape))
        assert breakdown.score_fill == 1.0
        assert breakdown.score_overlay == 1.0
        assert breakdown.s_pd == pytest.approx(
            coeffs.alpha_fill + coeffs.alpha_overlay
        )

    def test_gradient_negative_inside_band(self, layout):
        coeffs = ScoreCoefficients(beta_fill=1e9, beta_overlay=1e9)
        pd = PerformanceDegradation(layout, coeffs)
        fill = 0.3 * layout.slack_stack()
        _, grad = pd.evaluate(fill)
        assert np.all(grad <= 0)
        assert np.any(grad < 0)

    def test_gradient_respects_saturation(self, layout):
        """Tiny betas: every score saturates at 0, gradient must vanish."""
        coeffs = ScoreCoefficients(beta_fill=1e-3, beta_overlay=1e-3)
        pd = PerformanceDegradation(layout, coeffs)
        fill = 0.5 * layout.slack_stack()
        breakdown, grad = pd.evaluate(fill)
        assert breakdown.score_fill == 0.0
        np.testing.assert_allclose(grad, 0.0)

    def test_gradient_matches_fd_on_spd(self, layout):
        coeffs = ScoreCoefficients(beta_fill=5e6, beta_overlay=5e6)
        pd = PerformanceDegradation(layout, coeffs)
        rng = np.random.default_rng(3)
        fill = 0.4 * rng.random(layout.shape) * layout.slack_stack()
        _, grad = pd.evaluate(fill)
        eps = 1e-3
        for _ in range(8):
            l = rng.integers(0, layout.num_layers)
            i = rng.integers(0, 8)
            j = rng.integers(0, 8)
            hi = fill.copy()
            hi[l, i, j] += eps
            lo = fill.copy()
            lo[l, i, j] -= eps
            fd = (pd.evaluate(hi, want_grad=False)[0].s_pd
                  - pd.evaluate(lo, want_grad=False)[0].s_pd) / (2 * eps)
            assert grad[l, i, j] == pytest.approx(fd, abs=1e-9)

    def test_want_grad_false(self, layout):
        pd = PerformanceDegradation(layout, ScoreCoefficients())
        breakdown, grad = pd.evaluate(np.zeros(layout.shape), want_grad=False)
        assert grad is None
