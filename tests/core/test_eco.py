"""Tests for incremental (ECO) refill: exactness, freezing, cache hits.

The networks here carry random weights: every guarantee under test
(region-evaluation equivalence, bitwise-frozen exterior, cache-hit
identity) is weight-independent, and random weights keep the tests fast.
"""

import numpy as np
import pytest

from repro.cmp import CmpSimulator
from repro.core import (
    FillProblem,
    FillResult,
    ScoreCoefficients,
    eco_refill,
)
from repro.core.eco import EcoQualityModel
from repro.core.msp_sqp import QualityModel
from repro.layout import (connected_components, diff_layouts,
                          dilate_mask, edit_layout)
from repro.layout.designs import DESIGN_BUILDERS
from repro.nn import UNet
from repro.optimize import SqpOptimizer
from repro.surrogate import NUM_FEATURE_CHANNELS
from repro.surrogate.network import CmpNeuralNetwork, HeightNormalizer
from repro.surrogate.objectives import PlanarityWeights

GRID = 36


def bind(layout) -> CmpNeuralNetwork:
    unet = UNet(NUM_FEATURE_CHANNELS, 1, base_channels=4, depth=1, rng=0)
    return CmpNeuralNetwork(layout, unet, HeightNormalizer(2500.0, 300.0))


@pytest.fixture(scope="module")
def layout():
    return DESIGN_BUILDERS["A"](rows=GRID, cols=GRID, seed=3)


@pytest.fixture(scope="module")
def problem(layout):
    coefficients = ScoreCoefficients.calibrated(
        layout, CmpSimulator(), beta_runtime=60.0)
    return FillProblem(layout, coefficients)


@pytest.fixture(scope="module")
def network(layout):
    return bind(layout)


@pytest.fixture(scope="module")
def parent_fill(problem):
    # Any feasible fill works as a parent: the guarantees are about what
    # eco_refill does relative to it, not about its optimality.
    rng = np.random.default_rng(7)
    span = problem.upper - problem.lower
    return problem.lower + 0.37 * span + 0.1 * span * rng.random(span.shape)


@pytest.fixture(scope="module")
def parent_result(problem, network, parent_fill):
    ev = QualityModel(problem, network).evaluate(parent_fill, want_grad=False)
    return FillResult(method="neurfill-pkb", fill=parent_fill.copy(),
                      quality=ev.quality, planarity=ev.planarity,
                      degradation=ev.degradation, evaluations=1, starts=1)


def edited_setup(layout, block):
    r0 = GRID // 3
    edited = edit_layout(layout, 1, slice(r0, r0 + block),
                         slice(r0, r0 + block))
    coefficients = ScoreCoefficients.calibrated(
        edited, CmpSimulator(), beta_runtime=60.0)
    return FillProblem(edited, coefficients), bind(edited)


class TestRegionEvaluationExactness:
    def test_evaluate_region_matches_monolithic(self, network, problem,
                                                parent_fill):
        # Unsaturated weights so gradients are non-zero and the equality
        # check is meaningful, not a trivial 0 == 0.
        weights = PlanarityWeights(1.0, 20000.0, 1.0, 20000.0, 1.0, 20000.0)
        active = np.zeros((GRID, GRID), dtype=bool)
        active[12:15, 20:24] = True
        region = network.plan_region(active)

        base_heights = network.predict_heights(parent_fill)
        trial = parent_fill.copy()
        trial[:, 12:15, 20:24] *= 0.9

        mono = network.evaluate(trial, weights, want_grad=True)
        part = network.evaluate_region(trial, region, base_heights, weights,
                                       want_grad=True)
        assert part.s_plan == pytest.approx(mono.s_plan, abs=1e-9)
        np.testing.assert_allclose(part.heights, mono.heights,
                                   rtol=1e-9, atol=1e-6)
        active3d = np.broadcast_to(active, trial.shape)
        assert np.abs(mono.gradient[active3d]).max() > 0
        np.testing.assert_allclose(part.gradient[active3d],
                                   mono.gradient[active3d],
                                   rtol=1e-9, atol=1e-12)

    def test_eco_model_matches_quality_model_on_free_coords(
            self, problem, network, parent_fill):
        free = np.zeros((GRID, GRID), dtype=bool)
        free[10:16, 10:16] = True
        model = EcoQualityModel(problem, network, parent_fill, free)
        trial = parent_fill.copy()
        free3d = np.broadcast_to(free, trial.shape)
        trial[free3d] = np.clip(trial[free3d] * 1.1,
                                problem.lower[free3d],
                                problem.upper[free3d])

        eco_ev = model.evaluate(trial, want_grad=True)
        mono_ev = QualityModel(problem, network).evaluate(trial,
                                                          want_grad=True)
        assert eco_ev.quality == pytest.approx(mono_ev.quality, abs=1e-9)
        np.testing.assert_allclose(eco_ev.gradient[free3d],
                                   mono_ev.gradient[free3d],
                                   rtol=1e-9, atol=1e-12)
        assert not eco_ev.gradient[~free3d].any()

    def test_empty_free_mask_raises(self, problem, network, parent_fill):
        with pytest.raises(ValueError, match="empty"):
            EcoQualityModel(problem, network, parent_fill,
                            np.zeros((GRID, GRID), dtype=bool))


class TestEcoRefill:
    @pytest.mark.parametrize("block", [1, 3, 6])
    def test_bitwise_identical_outside_halo(self, layout, parent_result,
                                            block):
        problem2, network2 = edited_setup(layout, block)
        result = eco_refill(problem2, network2, layout, parent_result,
                            optimizer=SqpOptimizer(max_iter=8, tol=1e-9),
                            coupling_radius=0)
        assert result.method == "neurfill-eco"
        extras = result.extras["eco"]
        assert not extras["cache_hit"]
        assert extras["dirty_windows"] == block * block
        assert extras["coupling_radius"] == 0

        halo = network2.receptive_halo()
        diff = diff_layouts(layout, problem2.layout)
        free = dilate_mask(diff.dirty, halo)
        frozen = ~free
        np.testing.assert_array_equal(result.fill[:, frozen],
                                      parent_result.fill[:, frozen])
        assert extras["free_windows"] == int(free.sum())
        # The re-optimised region stays inside the edited problem's box.
        free3d = np.broadcast_to(free, result.fill.shape)
        assert np.all(result.fill[free3d] >= problem2.lower[free3d] - 1e-12)
        assert np.all(result.fill[free3d] <= problem2.upper[free3d] + 1e-12)

    def test_matches_full_refill_within_tolerance(self, layout,
                                                  parent_result):
        problem2, network2 = edited_setup(layout, 4)
        optimizer = SqpOptimizer(max_iter=40, tol=1e-9)
        eco = eco_refill(problem2, network2, layout, parent_result,
                         optimizer=optimizer)

        model = QualityModel(problem2, network2)
        x0 = problem2.clip(parent_result.fill)
        full = optimizer.maximize(model.value_and_grad, x0,
                                  problem2.lower, problem2.upper,
                                  fun_value=model.quality)
        assert eco.quality == pytest.approx(full.value, abs=5e-3)

    def test_empty_edit_is_a_pure_cache_hit(self, problem, network,
                                            layout, parent_result):
        result = eco_refill(problem, network, layout, parent_result)
        extras = result.extras["eco"]
        assert extras["cache_hit"]
        assert result.evaluations == 0
        assert result.starts == 0
        assert result.method == "neurfill-eco"
        assert result.quality == parent_result.quality
        np.testing.assert_array_equal(result.fill, parent_result.fill)

    def test_empty_edit_with_bare_array_parent(self, problem, network,
                                               layout, parent_fill):
        result = eco_refill(problem, network, layout, parent_fill)
        assert result.extras["eco"]["cache_hit"]
        # No parent quality to reuse: one monolithic evaluation scores it.
        assert result.evaluations == 1
        assert np.isfinite(result.quality)
        np.testing.assert_array_equal(result.fill, parent_fill)


class TestEcoRefillValidation:
    def test_network_bound_to_parent_layout_raises(self, layout,
                                                   parent_result, network):
        problem2, _ = edited_setup(layout, 3)
        with pytest.raises(ValueError, match="edited layout"):
            eco_refill(problem2, network, layout, parent_result)

    def test_wrong_parent_fill_shape_raises(self, layout):
        problem2, network2 = edited_setup(layout, 3)
        with pytest.raises(ValueError, match="parent fill shape"):
            eco_refill(problem2, network2, layout,
                       np.zeros((1, 4, 4)))

    def test_negative_coupling_radius_raises(self, layout, parent_result):
        problem2, network2 = edited_setup(layout, 3)
        with pytest.raises(ValueError, match="coupling_radius"):
            eco_refill(problem2, network2, layout, parent_result,
                       coupling_radius=-1)

    def test_regridded_layout_is_not_an_edit(self, layout, parent_result):
        other = DESIGN_BUILDERS["A"](rows=GRID // 2, cols=GRID, seed=3)
        coefficients = ScoreCoefficients.calibrated(
            other, CmpSimulator(), beta_runtime=60.0)
        problem2 = FillProblem(other, coefficients)
        with pytest.raises(ValueError, match="window grid"):
            eco_refill(problem2, bind(other), layout, parent_result)


def two_site_setup(layout):
    """Two 2x2 edits far enough apart that their dilated halos stay
    disjoint (Chebyshev gap > 2 * halo with coupling_radius=0)."""
    edited = edit_layout(layout, 1, slice(3, 5), slice(3, 5))
    edited = edit_layout(edited, 1, slice(30, 32), slice(30, 32),
                         name_suffix="")
    coefficients = ScoreCoefficients.calibrated(
        edited, CmpSimulator(), beta_runtime=60.0)
    return FillProblem(edited, coefficients), bind(edited)


class TestEcoMultiSite:
    def test_distant_edits_split_into_sites(self, layout, parent_result):
        problem2, network2 = two_site_setup(layout)
        result = eco_refill(problem2, network2, layout, parent_result,
                            optimizer=SqpOptimizer(max_iter=6, tol=1e-9),
                            coupling_radius=0)
        extras = result.extras["eco"]
        halo = network2.receptive_halo()
        free = dilate_mask(diff_layouts(layout, problem2.layout).dirty, halo)
        sites = connected_components(free)
        assert len(sites) == 2
        assert extras["num_sites"] == 2
        assert len(extras["sites"]) == 2
        assert result.starts == 2
        assert sum(s["free_windows"] for s in extras["sites"]) == \
            int(free.sum())
        assert extras["free_windows"] == int(free.sum())

    def test_bitwise_outside_each_site(self, layout, parent_result):
        problem2, network2 = two_site_setup(layout)
        result = eco_refill(problem2, network2, layout, parent_result,
                            optimizer=SqpOptimizer(max_iter=6, tol=1e-9),
                            coupling_radius=0)
        halo = network2.receptive_halo()
        free = dilate_mask(diff_layouts(layout, problem2.layout).dirty, halo)
        for site in connected_components(free):
            outside = ~site
            np.testing.assert_array_equal(
                result.fill[:, outside & ~free],
                parent_result.fill[:, outside & ~free])
        # Global identity outside the whole free set, bit for bit.
        np.testing.assert_array_equal(result.fill[:, ~free],
                                      parent_result.fill[:, ~free])

    def test_site_crops_are_smaller_than_union_bbox(self, layout,
                                                    parent_result):
        problem2, network2 = two_site_setup(layout)
        result = eco_refill(problem2, network2, layout, parent_result,
                            optimizer=SqpOptimizer(max_iter=4, tol=1e-9),
                            coupling_radius=0)
        halo = network2.receptive_halo()
        free = dilate_mask(diff_layouts(layout, problem2.layout).dirty, halo)
        union = network2.plan_region(free)
        union_area = ((union.r1 - union.r0) * (union.c1 - union.c0))
        # On this small grid the halo pads every crop out to the full
        # chip, but the recomputed *cores* stay per-site: each is a
        # proper subset of the union bounding box a single-region pass
        # would have re-solved.
        for site in result.extras["eco"]["sites"]:
            r0, r1, c0, c1 = site["core"]
            assert (r1 - r0) * (c1 - c0) < union_area

    def test_single_site_edit_reports_one_site(self, layout, parent_result):
        problem2, network2 = edited_setup(layout, 3)
        result = eco_refill(problem2, network2, layout, parent_result,
                            optimizer=SqpOptimizer(max_iter=4, tol=1e-9),
                            coupling_radius=0)
        extras = result.extras["eco"]
        assert extras["num_sites"] == 1
        assert result.starts == 1

    def test_shared_base_heights_match_per_model(self, problem, network,
                                                 parent_fill):
        free = np.zeros((GRID, GRID), dtype=bool)
        free[10:13, 10:13] = True
        base = network.predict_heights(parent_fill)
        shared = EcoQualityModel(problem, network, parent_fill, free,
                                 base_heights=base)
        owned = EcoQualityModel(problem, network, parent_fill, free)
        assert shared.evaluations == 0 and owned.evaluations == 1
        np.testing.assert_array_equal(shared.base_heights,
                                      owned.base_heights)
        trial = parent_fill.copy()
        trial[:, 10:13, 10:13] *= 0.9
        a = shared.evaluate(trial)
        b = owned.evaluate(trial)
        assert a.quality == b.quality
        np.testing.assert_array_equal(a.gradient, b.gradient)

    def test_bad_base_heights_shape_raises(self, problem, network,
                                           parent_fill):
        free = np.zeros((GRID, GRID), dtype=bool)
        free[5, 5] = True
        with pytest.raises(ValueError, match="base_heights"):
            EcoQualityModel(problem, network, parent_fill, free,
                            base_heights=np.zeros((1, 2, 3)))
